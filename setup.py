"""Legacy setup shim: this offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `pip install -e .` falls back to
`--no-use-pep517` which needs a setup.py.  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
