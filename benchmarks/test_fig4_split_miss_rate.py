"""Figure 4: dbt2 miss rate, unified vs split read/write disk cache."""

from __future__ import annotations

from repro.experiments.fig4_split import run_split_sweep


def test_fig4_split_vs_unified(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: run_split_sweep(
            flash_sizes_mb=(128, 384, 640),
            scale_divisor=bench_scale["scale_divisor"],
            num_records=bench_scale["num_records"] * 5),
        rounds=1, iterations=1)

    print("\nFigure 4: dbt2 Flash miss rate")
    for point in points:
        print(f"  {point.flash_mb_paper_scale:4d}MB: "
              f"unified={point.unified_miss_rate:7.3%} "
              f"split={point.split_miss_rate:7.3%}")

    # Shape: miss rates fall with cache size for both organisations; the
    # split cache wins at the larger sizes and its advantage grows with
    # cache size ("particularly as disk caches get larger").
    assert points[0].unified_miss_rate > points[-1].unified_miss_rate
    assert points[0].split_miss_rate > points[-1].split_miss_rate
    assert points[-1].split_miss_rate < points[-1].unified_miss_rate
    assert points[-1].improvement > points[0].improvement
