"""Tables 1-4: constants and benchmark-suite regeneration.

These benches print the paper's data tables from the library's constants
and generators, asserting the values the rest of the reproduction builds
on.
"""

from __future__ import annotations

import pytest

from repro.flash.timing import (
    ITRS_ROADMAP,
    DEFAULT_DISK_TIMING,
    DEFAULT_DRAM_POWER,
    DEFAULT_DRAM_TIMING,
    DEFAULT_FLASH_POWER,
    DEFAULT_FLASH_TIMING,
    MLC_ENDURANCE_CYCLES,
    SLC_ENDURANCE_CYCLES,
)
from repro.sim.config import TABLE3_PLATFORM
from repro.workloads.macro import ALL_WORKLOAD_NAMES, build_workload
from repro.workloads.trace import summarize


def test_table1_itrs_roadmap(benchmark):
    """Table 1: ITRS 2007 roadmap rows."""
    def regenerate():
        rows = []
        for year, entry in sorted(ITRS_ROADMAP.items()):
            rows.append((year, entry.nand_slc_um2_per_bit,
                         entry.nand_mlc_um2_per_bit, entry.dram_um2_per_bit))
        return rows

    rows = benchmark(regenerate)
    assert [year for year, *_ in rows] == [2007, 2009, 2011, 2013, 2015]
    # Headline: MLC NAND reaches ~8x DRAM density by 2015 (section 2.1).
    assert ITRS_ROADMAP[2015].mlc_density_advantage_over_dram >= 7.0
    # SLC/MLC endurance gap is 10x in the platform years.
    assert SLC_ENDURANCE_CYCLES == 10 * MLC_ENDURANCE_CYCLES
    print("\nTable 1 (um^2/bit):")
    for year, slc, mlc, dram in rows:
        print(f"  {year}: SLC={slc} MLC={mlc} DRAM={dram}")


def test_table2_device_characteristics(benchmark):
    """Table 2: latency/power of DRAM, SLC/MLC NAND, and the disk."""
    def regenerate():
        return {
            "dram_active_w": DEFAULT_DRAM_POWER.active_w,
            "dram_idle_w": DEFAULT_DRAM_POWER.idle_active_w,
            "dram_access_ns": DEFAULT_DRAM_TIMING.access_ns,
            "slc_read_us": DEFAULT_FLASH_TIMING.slc_read_us,
            "slc_write_us": DEFAULT_FLASH_TIMING.slc_write_us,
            "slc_erase_us": DEFAULT_FLASH_TIMING.slc_erase_us,
            "mlc_read_us": DEFAULT_FLASH_TIMING.mlc_read_us,
            "mlc_write_us": DEFAULT_FLASH_TIMING.mlc_write_us,
            "mlc_erase_us": DEFAULT_FLASH_TIMING.mlc_erase_us,
            "flash_active_w": DEFAULT_FLASH_POWER.active_w,
        }

    table = benchmark(regenerate)
    assert table["dram_active_w"] == 0.878
    assert table["dram_access_ns"] == 55.0
    assert (table["slc_read_us"], table["slc_write_us"],
            table["slc_erase_us"]) == (25.0, 200.0, 1500.0)
    assert (table["mlc_read_us"], table["mlc_write_us"],
            table["mlc_erase_us"]) == (50.0, 680.0, 3300.0)
    assert table["flash_active_w"] == 0.027
    print("\nTable 2:", table)


def test_table3_platform_configuration(benchmark):
    """Table 3: the simulated platform."""
    platform = benchmark(lambda: TABLE3_PLATFORM)
    assert platform.processor_cores == 8
    assert platform.dram_bytes_min == 128 << 20
    assert platform.flash_bytes_min == 256 << 20
    assert platform.disk.average_access_ms == 4.2
    print(f"\nTable 3: cores={platform.processor_cores} "
          f"dram={platform.dram_bytes_min >> 20}-"
          f"{platform.dram_bytes_max >> 20}MB "
          f"flash={platform.flash_bytes_min >> 20}MB-"
          f"{platform.flash_bytes_max >> 30}GB "
          f"bch={platform.bch_latency_min_us}-"
          f"{platform.bch_latency_max_us}us")


def test_table4_benchmark_suite(benchmark):
    """Table 4: every workload instantiates with its published profile."""
    def regenerate():
        rows = []
        for name in ALL_WORKLOAD_NAMES:
            records = build_workload(name, num_records=2000,
                                     footprint_pages=8192, seed=1)
            stats = summarize(records)
            rows.append((name, stats.read_fraction, stats.footprint_pages))
        return rows

    rows = benchmark(regenerate)
    assert len(rows) == 12
    by_name = {name: read_fraction for name, read_fraction, _ in rows}
    assert by_name["specweb99"] > 0.95      # web serving is read-dominated
    assert by_name["financial1"] < 0.4      # Financial1 is write-heavy
    assert 0.5 < by_name["dbt2"] < 0.8      # OLTP mix
    print("\nTable 4:")
    for name, read_fraction, footprint in rows:
        print(f"  {name:12s} reads={read_fraction:5.1%} "
              f"touched={footprint} pages")
