"""Figure 6(b): maximum tolerable W/E cycles vs ECC code strength."""

from __future__ import annotations

from repro.experiments.fig6_ecc import run_tolerable_cycles_series


def test_fig6b_tolerable_cycles(benchmark):
    series = benchmark(run_tolerable_cycles_series)

    print("\nFigure 6(b): max tolerable W/E cycles")
    for frac, points in series.items():
        marks = " ".join(f"t{t}={cycles:.2e}" for t, cycles in points
                         if t in (0, 5, 10))
        print(f"  stdev={frac:4.0%}: {marks}")

    # Every curve anchors at the 100k-cycle spec (t=0, paper's "first
    # point of failure").
    for points in series.values():
        assert abs(points[0][1] - 1e5) / 1e5 < 1e-6
    # Each curve is monotone increasing in t.
    for points in series.values():
        cycles = [c for _, c in points]
        assert cycles == sorted(cycles)
    # Zero variation: ECC buys nothing (flat line); more variation means
    # steeper ECC gains; the extreme curve reaches multi-million cycles
    # (the paper's axis tops at 8e6).
    assert series[0.0][-1][1] == series[0.0][0][1]
    gains = {frac: points[-1][1] / points[0][1]
             for frac, points in series.items()}
    assert gains[0.05] < gains[0.10] < gains[0.20]
    assert series[0.20][-1][1] > 1e6
