"""Parallel sweep runner: parallel==serial equivalence and speedup.

Regenerates a real figure grid through :func:`repro.parallel.sweep` at
several worker counts, asserts the combined series are bit-identical to
the serial run, and — on machines with enough cores — that the
process-pool fan-out actually buys wall-clock time.  The full-scale
Figure 10 grid rides behind REPRO_BENCH_FULL=1 like the other heavy
benchmarks.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import fig6_ecc, fig10_ecc_throughput
from repro.experiments.report import ReportScale
from repro.experiments.sweeps import run_sweep
from repro.parallel import sweep


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def test_fig6_grid_parallel_matches_serial(benchmark):
    tasks = fig6_ecc.tasks()
    serial = fig6_ecc.combine(sweep(tasks, workers=1))
    parallel = fig6_ecc.combine(benchmark(sweep, tasks, workers=4))

    print(f"\nparallel sweep: {len(tasks)} fig6 tasks at 4 workers")
    assert parallel == serial
    assert [p.t for p in parallel["decode_latency"]] == list(range(2, 12))


def test_quick_sweep_document_identical_across_workers():
    scale = ReportScale.quick()
    figures = ["fig6", "fig1b", "fig11"]
    serial = run_sweep(figures=figures, scale=scale, workers=1)
    parallel = run_sweep(figures=figures, scale=scale, workers=4)

    print(f"\nquick sweep: {serial['meta']['tasks']} tasks "
          f"(serial {serial['meta']['elapsed_s']}s, "
          f"4 workers {parallel['meta']['elapsed_s']}s)")
    assert serial["meta"]["errors"] == {}
    assert parallel["meta"]["errors"] == {}
    assert serial["figures"] == parallel["figures"]


def test_resume_replay_is_near_free(tmp_path):
    """Resuming a fully journaled sweep replays instead of recomputing:
    the figures are identical and the replay costs a small fraction of
    the original run."""
    scale = ReportScale.quick()
    figures = ["fig6", "fig1b"]
    journal = str(tmp_path / "sweep.jsonl")

    started = time.perf_counter()
    fresh = run_sweep(figures=figures, scale=scale, workers=2,
                      journal_path=journal)
    fresh_s = time.perf_counter() - started

    started = time.perf_counter()
    resumed = run_sweep(figures=figures, scale=scale, workers=2,
                        journal_path=journal, resume=True)
    resumed_s = time.perf_counter() - started

    print(f"\nresume replay: fresh {fresh_s:.2f}s, "
          f"resumed {resumed_s:.2f}s "
          f"({resumed['meta']['resumed_tasks']} tasks replayed)")
    assert resumed["figures"] == fresh["figures"]
    assert resumed["meta"]["resumed_tasks"] == fresh["meta"]["tasks"]
    assert resumed_s < max(fresh_s * 0.5, 1.0)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 physical cores; "
                           f"this machine has {os.cpu_count()}")
def test_sweep_speedup_at_four_workers():
    """>= 1.5x wall-clock speedup on a CPU-bound grid at 4 workers."""
    workload = "specweb99"
    strengths = (0, 5, 15, 50)
    num_records = 60_000 if full_scale() else 20_000
    tasks = fig10_ecc_throughput.tasks(
        workload, strengths=strengths, num_records=num_records)

    started = time.perf_counter()
    serial = sweep(tasks, workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = sweep(tasks, workers=4)
    parallel_s = time.perf_counter() - started

    speedup = serial_s / parallel_s
    print(f"\nfig10 grid ({len(tasks)} tasks): serial {serial_s:.1f}s, "
          f"4 workers {parallel_s:.1f}s -> {speedup:.2f}x")
    assert [r.unwrap() for r in parallel] == [r.unwrap() for r in serial]
    assert speedup >= 1.5


def test_full_fig10_grid_parallel(bench_scale):
    """The heavier trace-driven grid, parallel vs serial (full scale
    behind REPRO_BENCH_FULL=1)."""
    if not full_scale():
        pytest.skip("heavy grid: set REPRO_BENCH_FULL=1")
    points = fig10_ecc_throughput.run_ecc_throughput_sweep(
        "dbt2", scale_divisor=bench_scale["scale_divisor"],
        num_records=bench_scale["num_records"], workers=4)
    serial = fig10_ecc_throughput.run_ecc_throughput_sweep(
        "dbt2", scale_divisor=bench_scale["scale_divisor"],
        num_records=bench_scale["num_records"], workers=1)
    assert points == serial
