"""Figure 6(a): BCH decode latency vs correctable errors.

Also times the *functional* software decoder on a real corrupted page to
document why the paper needed the hardware accelerator in the first place
(their software decoder took 0.1-1 s per page).
"""

from __future__ import annotations

import random

from repro.ecc.bch import design_code_for_page
from repro.experiments.fig6_ecc import run_decode_latency_series


def test_fig6a_accelerator_latency(benchmark):
    series = benchmark(run_decode_latency_series)

    print("\nFigure 6(a): accelerator decode latency (us)")
    for point in series:
        print(f"  t={point.t:2d}: syndrome={point.syndrome_us:6.1f} "
              f"chien={point.chien_us:6.1f} total={point.total_us:6.1f}")

    totals = [p.total_us for p in series]
    # Shape: near-linear growth, Chien-dominated, inside the paper's
    # 58-400us envelope.
    assert totals == sorted(totals)
    assert all(40.0 <= total <= 400.0 for total in totals)
    assert series[-1].chien_us > series[-1].syndrome_us


def test_fig6a_functional_decode_cost(benchmark):
    """The software codec this library ships is the paper's 'too slow'
    baseline: time one real 2KB-page decode with injected errors."""
    code = design_code_for_page(2048, t=4)
    rng = random.Random(3)
    payload = bytes(rng.randrange(256) for _ in range(2048))
    _, parity = code.encode(payload)
    corrupted = bytearray(payload)
    for index in rng.sample(range(2048), 4):
        corrupted[index] ^= 1 << rng.randrange(8)
    corrupted = bytes(corrupted)

    decoded, corrected = benchmark(code.decode, corrupted, parity)
    assert decoded == payload
    assert corrected == 4
