"""Figure 10: server throughput vs BCH code strength."""

from __future__ import annotations

from repro.experiments.fig10_ecc_throughput import run_ecc_throughput_sweep

STRENGTHS = (0, 1, 5, 15, 30, 50)


def _run(workload, bench_scale):
    return run_ecc_throughput_sweep(
        workload,
        strengths=STRENGTHS,
        scale_divisor=bench_scale["scale_divisor"],
        num_records=max(bench_scale["num_records"] // 3, 20_000),
    )


def test_fig10_both_workloads(benchmark, bench_scale):
    def sweep():
        return {name: _run(name, bench_scale)
                for name in ("specweb99", "dbt2")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for name, points in results.items():
        print(f"\nFigure 10 ({name}): relative bandwidth vs BCH strength")
        for point in points:
            print(f"  t={point.strength:2d}: {point.relative_bandwidth:.3f}")

    for name, points in results.items():
        bandwidths = [p.relative_bandwidth for p in points]
        # Graceful monotone degradation from the t=0 reference.
        assert bandwidths[0] == 1.0
        assert all(b <= a + 1e-9 for a, b in zip(bandwidths, bandwidths[1:]))
        # "Throughput degrades slowly with ECC strength": modest by t=5.
        assert bandwidths[2] > 0.85
    # "dbt2 suffers a greater performance loss than SPECWeb99 after 15
    # bits per page" — the disk-bound workload is more sensitive.
    dbt2_tail = results["dbt2"][-1].relative_bandwidth
    specweb_tail = results["specweb99"][-1].relative_bandwidth
    assert dbt2_tail < specweb_tail
