"""Benchmark-suite configuration.

Each module regenerates one of the paper's tables or figures via the
``repro.experiments`` runners, prints the same rows/series the paper
reports, asserts the qualitative *shape* (who wins, roughly by how much,
where crossovers fall), and times the run with pytest-benchmark.

Heavy sweeps run at reduced scale by default; set REPRO_BENCH_FULL=1 in
the environment for paper-scale parameters.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Shared scale knobs for the heavy trace-driven figures."""
    if full_scale():
        return {"scale_divisor": 32, "num_records": 600_000,
                "aging_blocks": 16, "aging_frames": 8}
    return {"scale_divisor": 64, "num_records": 120_000,
            "aging_blocks": 8, "aging_frames": 4}
