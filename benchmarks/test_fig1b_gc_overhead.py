"""Figure 1(b): garbage-collection overhead vs occupied Flash space."""

from __future__ import annotations

from repro.experiments.fig1b_gc import run_gc_overhead_sweep


def test_fig1b_gc_overhead(benchmark):
    points = benchmark.pedantic(
        lambda: run_gc_overhead_sweep(
            occupancies=(0.10, 0.30, 0.50, 0.70, 0.80, 0.90, 0.95),
            flash_blocks=32),
        rounds=1, iterations=1)

    print("\nFigure 1(b): normalized GC overhead vs used Flash space")
    for point in points:
        print(f"  {point.used_fraction:4.0%}: {point.normalized_overhead:8.2f}"
              f"  (gc/fg={point.gc_overhead:.3f}, runs={point.gc_runs})")

    overhead = {p.used_fraction: p.normalized_overhead for p in points}
    # Shape: negligible at low occupancy, hockey-stick past ~80% — the
    # paper's point that "GC becomes overwhelming well before all of the
    # memory is used" (the eNVy study stopped at 80%).
    assert overhead[0.10] < 1.0
    assert overhead[0.50] < overhead[0.80] < overhead[0.95]
    assert overhead[0.95] > 5 * overhead[0.80] / 2
    assert overhead[0.95] > 25.0
