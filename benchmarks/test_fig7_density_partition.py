"""Figure 7: optimal SLC/MLC partition and access latency vs die area."""

from __future__ import annotations

from repro.experiments.fig7_density import run_density_partition


def test_fig7_financial2(benchmark):
    series = benchmark.pedantic(
        lambda: run_density_partition("financial2"), rounds=1, iterations=1)

    print(f"\nFigure 7(a) financial2 (WSS {series.working_set_mb:.1f}MB):")
    for point in series.points:
        print(f"  {point.die_area_mm2:7.1f}mm^2: "
              f"SLC={point.optimal_slc_fraction:4.0%} "
              f"latency={point.average_latency_us:8.1f}us")

    latencies = [p.average_latency_us for p in series.points]
    assert latencies == sorted(latencies, reverse=True)
    # Paper: ~70% SLC optimal at roughly half the working set.
    half = series.points[3]  # area fraction 0.50
    assert half.optimal_slc_fraction > 0.5
    # Latency bottoms out at the 25us SLC floor once the die is large.
    assert latencies[-1] < 26.0


def test_fig7_websearch1(benchmark):
    series = benchmark.pedantic(
        lambda: run_density_partition("websearch1"), rounds=1, iterations=1)

    print(f"\nFigure 7(b) websearch1 (WSS {series.working_set_mb:.1f}MB):")
    for point in series.points:
        print(f"  {point.die_area_mm2:7.1f}mm^2: "
              f"SLC={point.optimal_slc_fraction:4.0%} "
              f"latency={point.average_latency_us:8.1f}us")

    # Paper: "almost all the cells are MLC for a Flash size that is
    # approximately half the working set size".
    half = series.points[3]
    assert half.optimal_slc_fraction < 0.15
    # With the die covering the full working set in SLC terms, the optimum
    # flips to (nearly) pure SLC at the latency floor.
    biggest = series.points[-2]  # area fraction 2.0
    assert biggest.average_latency_us < 26.0
    assert biggest.optimal_slc_fraction > 0.8
