"""Fault injection: graceful degradation of the Flash disk cache.

Not a paper figure — the robustness companion to the performance suite.
Asserts the availability contract (every faulted run completes), the
degradation shape (capacity shrinks and misses rise with the fault rate,
down to the DRAM+disk bypass), the retry ladder's benefit on transient
faults, and that a zero-rate run is bit-identical to the fault-free
baseline.
"""

from __future__ import annotations

from repro.experiments.fault_degradation import run_fault_sweep


def _scaled_kwargs(bench_scale):
    return {
        "num_records": max(4000, bench_scale["num_records"] // 20),
        "flash_bytes": 8 << 20,
        "dram_bytes": 2 << 20,
        "footprint_pages": 8192,
    }


def test_fault_degradation_sweep(benchmark, bench_scale):
    kwargs = _scaled_kwargs(bench_scale)
    points = benchmark.pedantic(
        lambda: run_fault_sweep(
            fault_rates=(0.0, 0.02, 0.2), retry_depths=(0, 2), **kwargs),
        rounds=1, iterations=1)

    print("\nFault degradation sweep")
    for p in points:
        print(f"  rate={p.fault_rate:5.3f} retry={p.read_retry_max}: "
              f"miss={p.miss_rate:7.3%} live={p.live_capacity:5.3f} "
              f"degraded={p.degraded} lost={p.unrecovered_faults}")

    by_key = {(p.fault_rate, p.read_retry_max): p for p in points}
    base = by_key[(0.0, 0)]
    mid = by_key[(0.02, 0)]
    heavy = by_key[(0.2, 0)]

    # Availability: every configuration produced a finished report.
    assert len(points) == 6

    # Fault-free baseline: full capacity, no fault activity, no bypass.
    assert base.live_capacity == 1.0
    assert not base.degraded
    assert base.injected_faults == 0
    assert base.recovered_faults == 0 and base.unrecovered_faults == 0

    # Degradation shape: faults cost capacity and hit rate, monotonically
    # in the rate; the heavy rate drives the cache into the bypass.
    assert mid.injected_faults > 0
    assert mid.live_capacity <= base.live_capacity
    assert heavy.live_capacity < mid.live_capacity
    assert heavy.miss_rate > base.miss_rate
    assert heavy.degraded
    assert heavy.retired_blocks > 0

    # Recovery accounting: clean drops dominate dirty losses (the read
    # region outnumbers the write region 9:1).
    assert mid.recovered_faults > 0
    assert mid.recovered_faults >= mid.unrecovered_faults

    # Retry ladder: re-sensing rides out transient bursts, cutting
    # uncorrectable reads at the moderate rate.
    mid_retry = by_key[(0.02, 2)]
    assert mid_retry.retry_recovered_reads > 0
    assert mid_retry.uncorrectable_reads < mid.uncorrectable_reads


def test_zero_rate_is_bit_identical(bench_scale):
    """A zero-rate sweep point must reproduce the fault-free baseline
    exactly — same seeds in, same numbers out."""
    kwargs = _scaled_kwargs(bench_scale)
    runs = [run_fault_sweep(fault_rates=(0.0,), retry_depths=(0,),
                            **kwargs)[0]
            for _ in range(2)]
    assert runs[0] == runs[1]
    assert runs[0].miss_rate == runs[1].miss_rate
    assert runs[0].live_capacity == 1.0
