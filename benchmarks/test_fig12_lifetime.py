"""Figure 12: Flash lifetime, programmable controller vs fixed BCH-1."""

from __future__ import annotations

from repro.experiments.fig12_lifetime import (
    FIG12_WORKLOADS,
    average_improvement,
    run_lifetime_comparison,
)


def test_fig12_lifetime(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_lifetime_comparison(
            workloads=FIG12_WORKLOADS,
            num_blocks=bench_scale["aging_blocks"],
            frames_per_block=bench_scale["aging_frames"]),
        rounds=1, iterations=1)

    print("\nFigure 12: normalized lifetime")
    for row in rows:
        print(f"  {row.workload:12s} programmable="
              f"{row.normalized_programmable:8.4f} "
              f"bch1={row.normalized_bch1:9.6f} "
              f"gain={row.improvement:5.1f}x")
    mean_gain = average_improvement(rows)
    print(f"  average improvement: {mean_gain:.1f}x "
          f"(paper: 'a factor of 20 on average')")

    # The programmable controller wins on every workload, by an order of
    # magnitude on average (paper reports ~20x; the shape target here is
    # a consistent >=10x-class gap, not the absolute factor).
    assert all(row.improvement > 3.0 for row in rows)
    assert mean_gain > 8.0
    # Normalisation: the best programmable run defines 1.0, and every
    # BCH-1 bar sits far below its programmable partner.
    assert max(row.normalized_programmable for row in rows) == 1.0
    for row in rows:
        assert row.normalized_bch1 < row.normalized_programmable
