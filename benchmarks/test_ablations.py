"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation sweeps one policy knob of the Flash disk cache and reports
the metric it trades, confirming the paper's chosen defaults sit in a
sensible spot.
"""

from __future__ import annotations

from repro.core.cache import FlashCacheConfig, FlashDiskCache
from repro.core.controller import ControllerConfig, \
    ProgrammableFlashController
from repro.core.tables import FlashCacheHashTable
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry
from repro.workloads.macro import build_workload
from repro.workloads.postpdc import derive_disk_trace


def _make_cache(**config_kwargs) -> FlashDiskCache:
    geometry = FlashGeometry(frames_per_block=8, num_blocks=64)
    device = FlashDevice(geometry=geometry)
    controller = ProgrammableFlashController(device)
    config_kwargs.setdefault("hot_promotion", False)
    return FlashDiskCache(controller, FlashCacheConfig(**config_kwargs))


def _disk_trace(num_records=120_000, seed=31):
    raw = build_workload("dbt2", num_records=num_records, seed=seed,
                         footprint_pages=16_384)
    return derive_disk_trace(raw, pdc_pages=2048)


def _replay(cache, records):
    for record in records:
        for page in record.expand():
            if record.is_read:
                if cache.read(page) is None:
                    cache.insert_clean(page)
            else:
                cache.write(page)


def test_ablation_split_fraction(benchmark):
    """Sweep the read/write split around the paper's 90/10 choice."""
    records = _disk_trace()

    def sweep():
        results = {}
        for fraction in (0.5, 0.7, 0.9, 0.97):
            cache = _make_cache(split=True, read_fraction=fraction)
            _replay(cache, records)
            results[fraction] = cache.stats.miss_rate
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: read-region fraction -> miss rate")
    for fraction, miss in sorted(results.items()):
        print(f"  {fraction:4.0%}: {miss:7.3%}")
    # The paper's 90% sits at or near the sweep's best.
    best = min(results.values())
    assert results[0.9] <= best * 1.15


def test_ablation_wear_threshold(benchmark):
    """Lower swap thresholds spread erases more evenly but cost extra
    migrations (section 3.6's trade)."""
    records = _disk_trace(num_records=60_000)

    def sweep():
        results = {}
        for threshold in (2.0, 64.0, 1e9):
            cache = _make_cache(split=True, wear_threshold=threshold)
            _replay(cache, records)
            device = cache.controller.device
            counts = [device.erase_count(block) for block in range(64)]
            spread = max(counts) - min(counts)
            results[threshold] = (cache.stats.wear_swaps, spread)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: wear threshold -> (swaps, erase spread)")
    for threshold, (swaps, spread) in sorted(results.items()):
        print(f"  {threshold:10.0f}: swaps={swaps:5d} spread={spread}")
    # Disabling wear-leveling (huge threshold) performs zero swaps.
    assert results[1e9][0] == 0
    # Aggressive leveling swaps at least as often as the default.
    assert results[2.0][0] >= results[64.0][0]


def test_ablation_fcht_buckets(benchmark):
    """Section 3.1: ~100 indexable entries reach maximum throughput —
    beyond that, bigger tables stop helping lookup latency much."""

    def sweep():
        results = {}
        for buckets in (1, 16, 128, 1024, 8192):
            table = FlashCacheHashTable(buckets=buckets)
            from repro.flash.geometry import PageAddress
            for lba in range(8192):
                table.insert(lba, PageAddress(0, 0, 0))
            results[buckets] = table.lookup_cost_us()
        return results

    results = benchmark(sweep)
    print("\nAblation: FCHT buckets -> lookup cost (us)")
    for buckets, cost in sorted(results.items()):
        print(f"  {buckets:5d}: {cost:.3f}")
    costs = [results[b] for b in sorted(results)]
    assert costs == sorted(costs, reverse=True)
    # Diminishing returns: the 128 -> 8192 step saves far less than 1 -> 128.
    assert (results[1] - results[128]) > 10 * (results[128] - results[8192])


def test_ablation_hot_promotion(benchmark):
    """SLC promotion trades capacity for hit latency on skewed reads."""
    # Raw (not PDC-filtered) trace: hot promotion triggers on repeated
    # *Flash* reads, so the cache must see the skewed read stream itself.
    records = build_workload("exp2", num_records=30_000, seed=9,
                             footprint_pages=16_384, read_fraction=0.98)

    def run(promote):
        config = ControllerConfig(counter_max=8)
        geometry = FlashGeometry(frames_per_block=8, num_blocks=64)
        device = FlashDevice(geometry=geometry)
        controller = ProgrammableFlashController(device, config=config)
        cache = FlashDiskCache(controller, FlashCacheConfig(
            hot_promotion=promote))
        _replay(cache, records)
        hits = cache.stats.read_hits
        latency = (cache.controller.fgst.avg_hit_latency_us, hits,
                   cache.stats.slc_promotions)
        return latency

    def sweep():
        return {"off": run(False), "on": run(True)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: hot promotion -> (avg hit latency us, hits, promos)")
    for key, (latency, hits, promos) in results.items():
        print(f"  {key:3s}: latency={latency:7.2f} hits={hits} "
              f"promotions={promos}")
    off_latency, _, off_promos = results["off"]
    on_latency, _, on_promos = results["on"]
    assert off_promos == 0
    assert on_promos > 0
    # Promoted hot pages read at SLC speed: average hit latency drops.
    assert on_latency < off_latency


def test_ablation_gc_budget(benchmark):
    """The GC bandwidth budget trades copy traffic for eviction losses."""
    records = _disk_trace(num_records=60_000)

    def sweep():
        results = {}
        for budget in (0.0, 1.0, None):
            cache = _make_cache(split=True, gc_move_budget=budget)
            _replay(cache, records)
            key = "inf" if budget is None else str(budget)
            results[key] = (cache.stats.gc_page_moves,
                            cache.stats.miss_rate)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: GC budget -> (page moves, miss rate)")
    for key, (moves, miss) in results.items():
        print(f"  {key:4s}: moves={moves:7d} miss={miss:7.3%}")
    assert results["0.0"][0] == 0
    assert results["inf"][0] >= results["1.0"][0]
