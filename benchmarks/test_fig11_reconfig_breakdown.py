"""Figure 11: descriptor-update breakdown across the Table 4 suite."""

from __future__ import annotations

from repro.experiments.fig11_reconfig import (
    FIG11_WORKLOADS,
    run_reconfig_breakdown,
)


def test_fig11_reconfig_breakdown(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_reconfig_breakdown(
            workloads=FIG11_WORKLOADS,
            num_blocks=bench_scale["aging_blocks"],
            frames_per_block=bench_scale["aging_frames"]),
        rounds=1, iterations=1)

    print("\nFigure 11: page reconfiguration events")
    for row in rows:
        print(f"  {row.workload:12s} code strength="
              f"{row.code_strength_fraction:4.0%} "
              f"density={row.density_fraction:4.0%}")

    by_name = {row.workload: row for row in rows}
    # Fractions are a partition.
    for row in rows:
        assert abs(row.code_strength_fraction + row.density_fraction - 1.0) \
            < 1e-9 or row.total_updates == 0
    # The paper's tail-length law: uniform (longest tail) -> almost all
    # ECC-strength updates; exponential (shortest tail) -> almost all
    # density switches; Zipf in between, ordered by alpha.
    assert by_name["uniform"].code_strength_fraction > 0.9
    assert by_name["exp1"].density_fraction > 0.8
    assert by_name["exp2"].density_fraction > 0.8
    assert (by_name["alpha1"].density_fraction
            <= by_name["alpha2"].density_fraction
            <= by_name["alpha3"].density_fraction)
    # Macro traces behave like their tail class (websearch ~ zipf).
    assert 0.0 < by_name["websearch1"].density_fraction < 1.0
