"""Telemetry overhead contract: near-zero cost, zero perturbation.

The observability layer promises (see ``repro/telemetry/__init__.py``)
that attaching a :class:`Telemetry` handle to the fault-degradation
workload costs at most 10% wall-clock over the un-instrumented run, and
that it never changes a single simulated number.  This benchmark asserts
both halves of the contract.

Wall-clock on a shared machine wobbles by more than the effect being
measured (CPU frequency scaling and co-tenant interference are both
multiplicative and drift over seconds), so the overhead is estimated
from *paired* runs: each round times an un-instrumented run and an
instrumented run back-to-back — close enough together that the slowly
varying noise multiplies both sides of the ratio equally and cancels —
and the estimate is the median ratio across rounds, which rejects the
occasional round that caught an interference spike.  Garbage collection
is forced between runs and disabled while timing so collection debt
accrued by one run is never billed to the other.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.experiments.fault_degradation import _run_one
from repro.telemetry import Telemetry

OVERHEAD_CEILING = 1.10
PAIRS = 17
SAMPLE_INTERVAL = 500


def _scaled_kwargs(bench_scale):
    return {
        "num_records": max(4000, bench_scale["num_records"] // 20),
        "flash_bytes": 8 << 20,
        "dram_bytes": 2 << 20,
        "footprint_pages": 8192,
        "seed": 3,
    }


def _timed_run(telemetry, kwargs):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        report = _run_one(0.08, 2, telemetry=telemetry, **kwargs)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, report


def test_instrumented_run_within_overhead_ceiling(benchmark, bench_scale):
    kwargs = _scaled_kwargs(bench_scale)

    def measure():
        # Warm-up pair absorbs import/alloc cold starts.
        _timed_run(None, kwargs)
        _timed_run(Telemetry(sample_interval=SAMPLE_INTERVAL), kwargs)
        ratios = []
        for _ in range(PAIRS):
            plain, _ = _timed_run(None, kwargs)
            instrumented, _ = _timed_run(
                Telemetry(sample_interval=SAMPLE_INTERVAL), kwargs)
            ratios.append(instrumented / plain)
        return statistics.median(ratios), ratios

    ratio, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nTelemetry overhead: median ratio={ratio:.3f} over "
          f"{len(ratios)} pairs "
          f"(min={min(ratios):.3f} max={max(ratios):.3f})")
    assert ratio <= OVERHEAD_CEILING, (
        f"instrumented run {ratio:.3f}x the un-instrumented median, "
        f"contract allows {OVERHEAD_CEILING}x")


def test_telemetry_never_perturbs_the_simulation(bench_scale):
    """Bit-identical results with and without the handle attached."""
    kwargs = _scaled_kwargs(bench_scale)
    _, plain = _timed_run(None, kwargs)
    telemetry = Telemetry(sample_interval=SAMPLE_INTERVAL)
    _, instrumented = _timed_run(telemetry, kwargs)

    assert instrumented.requests == plain.requests
    assert instrumented.average_latency_us == plain.average_latency_us
    assert instrumented.wall_clock_us == plain.wall_clock_us
    assert instrumented.pdc == plain.pdc
    assert instrumented.flash == plain.flash
    assert instrumented.controller == plain.controller
    assert instrumented.faults == plain.faults
    assert instrumented.flash_live_capacity == plain.flash_live_capacity
    assert instrumented.disk_reads == plain.disk_reads
    assert instrumented.disk_writes == plain.disk_writes
    assert instrumented.power == plain.power

    # And the instrumented run actually observed the workload.
    assert telemetry.metrics.counters["request.reads"].value \
        == plain.reads
    assert len(telemetry.timeseries["live_capacity"]) >= 2
