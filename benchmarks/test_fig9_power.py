"""Figure 9: memory + disk power breakdown and network bandwidth."""

from __future__ import annotations

from repro.experiments.fig9_power import run_power_comparison


def _print_panel(result):
    print(f"\nFigure 9 ({result.workload}):")
    for label, power in (("DRAM-only ", result.baseline),
                         ("DRAM+Flash", result.flash)):
        print(f"  {label}: rd={power.mem_read_w:6.3f} "
              f"wr={power.mem_write_w:6.3f} idle={power.mem_idle_w:6.3f} "
              f"disk={power.disk_w:6.3f} total={power.total_w:6.3f}W")
    print(f"  power ratio={result.power_ratio:.2f}x "
          f"relative bandwidth={result.relative_bandwidth:.2f}")


def test_fig9_dbt2(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_power_comparison(
            "dbt2", scale_divisor=bench_scale["scale_divisor"],
            num_records=bench_scale["num_records"]),
        rounds=1, iterations=1)
    _print_panel(result)
    # Shape: the Flash configuration saves memory+disk power while
    # maintaining bandwidth (paper: savings "up to 3 times").
    assert result.power_ratio > 1.0
    assert result.relative_bandwidth > 0.9
    # Memory idle power halves with the smaller DRAM (512MB -> 256MB).
    assert result.flash.mem_idle_w < result.baseline.mem_idle_w


def test_fig9_specweb99(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_power_comparison(
            "specweb99", scale_divisor=bench_scale["scale_divisor"],
            num_records=bench_scale["num_records"]),
        rounds=1, iterations=1)
    _print_panel(result)
    assert result.power_ratio > 1.2
    assert result.relative_bandwidth > 1.0   # flash config serves faster
    assert result.flash.disk_w < result.baseline.disk_w
