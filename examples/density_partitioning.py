#!/usr/bin/env python
"""Density partitioning: how much of a Flash die should run in SLC mode?

For a workload you describe by footprint and popularity skew, sweeps the
Flash die area and reports the latency-optimal SLC/MLC partition at each
point (the Figure 7 analysis as a reusable tool).  Try editing WORKLOADS
to model your own cache: a short-tailed OLTP workload wants SLC early; a
huge flat working set wants MLC capacity until the die covers it.

Run:
    python examples/density_partitioning.py
"""

from __future__ import annotations

from repro import DensityPartitionOptimizer
from repro.workloads.synthetic import (
    ExponentialPopularity,
    UniformPopularity,
    ZipfPopularity,
)

FOOTPRINT_PAGES = 1 << 16  # 128MB of 2KB pages

WORKLOADS = {
    "oltp-hotset (exp, lam=1e-3)": ExponentialPopularity(
        FOOTPRINT_PAGES, lam=1e-3),
    "web (zipf, alpha=1.1)": ZipfPopularity(FOOTPRINT_PAGES, alpha=1.1),
    "scan-heavy (uniform)": UniformPopularity(FOOTPRINT_PAGES),
}

AREA_FRACTIONS = (0.1, 0.25, 0.5, 1.0, 2.0)


def main() -> None:
    for name, distribution in WORKLOADS.items():
        optimizer = DensityPartitionOptimizer(distribution)
        full_area = optimizer.working_set_area_mm2
        print(f"\n{name}  (working set = {full_area:.1f} mm^2 as pure MLC)")
        print(f"  {'die area':>10} {'optimal SLC':>12} {'latency':>10}")
        for fraction in AREA_FRACTIONS:
            point = optimizer.optimize(full_area * fraction, grid_points=41)
            print(f"  {point.die_area_mm2:>8.1f}mm2 "
                  f"{point.optimal_slc_fraction:>11.0%} "
                  f"{point.average_latency_us:>8.1f}us")
    print("\nReading the sweep: SLC halves read latency but doubles area "
          "per bit, so the optimizer only buys it once capacity stops "
          "paying — early for hot-set workloads, at full working-set "
          "coverage for flat ones.")


if __name__ == "__main__":
    main()
