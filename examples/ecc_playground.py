#!/usr/bin/env python
"""ECC playground: the controller's coding pipeline on real bytes.

Encodes a Flash page with a BCH code of your chosen strength, smashes bits,
and walks through the exact recovery pipeline the programmable controller
runs: BCH correction, CRC32 validation, and the escalation decision when
the error count reaches the code's limit.

Run:
    python examples/ecc_playground.py [t] [errors]
"""

from __future__ import annotations

import random
import sys

from repro import Crc32, design_code_for_page
from repro.ecc.bch import BCHDecodeFailure
from repro.ecc.latency import BCHLatencyModel

PAGE_BYTES = 512  # small page so the functional decode is instant


def main(t: int = 4, errors: int = 4) -> None:
    rng = random.Random(2024)
    code = design_code_for_page(PAGE_BYTES, t)
    model = BCHLatencyModel()
    print(f"code: BCH(n={code.params.n}, k={code.params.k}, t={t}) "
          f"over GF(2^{code.params.m}); "
          f"{code.params.parity_bytes} parity bytes + 4 CRC bytes in the "
          f"spare area")
    print(f"accelerator decode latency at t={t}: "
          f"{model.decode_us(t):.0f} us\n")

    payload = bytes(rng.randrange(256) for _ in range(PAGE_BYTES))
    _, parity = code.encode(payload)
    crc = Crc32().update(payload).digest()

    corrupted = bytearray(payload)
    for index in rng.sample(range(PAGE_BYTES), errors):
        corrupted[index] ^= 1 << rng.randrange(8)
    print(f"injected {errors} bit errors into the {PAGE_BYTES}-byte page")

    try:
        decoded, corrected = code.decode(bytes(corrupted), parity)
    except BCHDecodeFailure as failure:
        print(f"BCH decode FAILED outright: {failure}")
        print("-> controller refetches from disk and retires/reconfigures")
        return

    if Crc32.check(decoded, crc):
        print(f"BCH corrected {corrected} errors; CRC32 confirms the page")
        if corrected >= t:
            print(f"-> at the correction limit (t={t}): the controller "
                  "pends a reconfiguration — stronger ECC or MLC->SLC, "
                  "whichever costs less latency (section 5.2.1)")
    else:
        print("BCH returned a plausible codeword but CRC32 REJECTED it "
              "(false positive) -> data refetched from disk")


if __name__ == "__main__":
    t = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    errors = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(t, errors)
