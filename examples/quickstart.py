#!/usr/bin/env python
"""Quickstart: put a Flash disk cache under a DRAM page cache and measure.

Builds the paper's two platforms (Figure 2) at laptop scale, runs the same
OLTP trace through both, and prints the side-by-side latency, miss-rate,
and power comparison — the one-minute version of the paper's argument.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DramOnlySystem,
    SystemConfig,
    build_flash_system,
    build_workload,
    run_trace,
)

# Scaled-down capacities (the paper's 512MB/256MB+1GB pair, divided by 64
# so the run finishes in seconds).
SCALE = 64
DRAM_ONLY_BYTES = (512 << 20) // SCALE
FLASH_DRAM_BYTES = (256 << 20) // SCALE
FLASH_BYTES = (1 << 30) // SCALE
FOOTPRINT_PAGES = (2 << 30) // SCALE // 2048  # dbt2's 2GB database


def main() -> None:
    trace = build_workload("dbt2", num_records=100_000,
                           footprint_pages=FOOTPRINT_PAGES, seed=42)

    print("Running DRAM-only baseline ...")
    baseline = DramOnlySystem(SystemConfig(
        dram_bytes=DRAM_ONLY_BYTES,
        power_model_dram_bytes=512 << 20))
    baseline_report = run_trace(baseline, trace)

    print("Running DRAM + Flash disk cache ...")
    flash_system = build_flash_system(
        dram_bytes=FLASH_DRAM_BYTES,
        flash_bytes=FLASH_BYTES,
        power_model_dram_bytes=256 << 20)
    flash_report = run_trace(flash_system, trace)

    print()
    print(f"{'metric':<28}{'DRAM-only':>14}{'DRAM+Flash':>14}")
    rows = [
        ("avg request latency (us)",
         f"{baseline_report.average_latency_us:.1f}",
         f"{flash_report.average_latency_us:.1f}"),
        ("PDC miss rate",
         f"{baseline_report.pdc.miss_rate:.1%}",
         f"{flash_report.pdc.miss_rate:.1%}"),
        ("Flash cache miss rate", "-",
         f"{flash_report.flash_miss_rate:.1%}"),
        ("disk reads",
         str(baseline_report.disk_reads), str(flash_report.disk_reads)),
        ("memory+disk power (W)",
         f"{baseline_report.power.total_w:.2f}",
         f"{flash_report.power.total_w:.2f}"),
        ("throughput (req/s)",
         f"{baseline_report.throughput_rps:.0f}",
         f"{flash_report.throughput_rps:.0f}"),
    ]
    for label, base, flash in rows:
        print(f"{label:<28}{base:>14}{flash:>14}")

    stats = flash_system.flash.stats
    print()
    print("Flash cache internals: "
          f"{stats.read_hits} hits, {stats.gc_runs} GC passes, "
          f"{stats.read_evictions + stats.write_evictions} block evictions, "
          f"{stats.wear_swaps} wear-level swaps")


if __name__ == "__main__":
    main()
