#!/usr/bin/env python
"""Aging study: how the programmable controller stretches Flash lifetime.

Ages a Flash disk cache to total failure under several Table 4 workloads,
once with the paper's programmable controller (variable BCH strength +
MLC->SLC density reduction) and once with a conventional fixed BCH-1
controller, then reports the lifetime extension and which repair the
programmable policy favoured per workload — Figures 11 and 12 as a script.

Run:
    python examples/flash_aging_study.py
"""

from __future__ import annotations

from statistics import mean

from repro import simulate_lifetime

WORKLOADS = ("uniform", "alpha2", "exp1", "websearch1", "financial2")


def main() -> None:
    print(f"{'workload':<12}{'BCH-1 accesses':>16}{'programmable':>16}"
          f"{'gain':>8}   repair mix (near first failures)")
    gains = []
    for workload in WORKLOADS:
        fixed = simulate_lifetime(workload, "bch1")
        programmable = simulate_lifetime(workload, "programmable")
        gain = (programmable.host_accesses_to_failure
                / fixed.host_accesses_to_failure)
        gains.append(gain)
        mix = programmable.early_reconfig_breakdown
        print(f"{workload:<12}"
              f"{fixed.host_accesses_to_failure:>16.2e}"
              f"{programmable.host_accesses_to_failure:>16.2e}"
              f"{gain:>7.1f}x"
              f"   ECC {mix['code_strength']:4.0%} / "
              f"density {mix['density']:4.0%}")
    print(f"\naverage lifetime extension: {mean(gains):.1f}x "
          "(paper: 'a factor of 20 on average')")
    print("Long-tailed workloads lean on stronger ECC (capacity is "
          "precious); short-tailed ones switch hot pages to SLC.")


if __name__ == "__main__":
    main()
