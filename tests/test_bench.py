"""Bench output-file semantics: append, migrate, refuse, force.

ISSUE 8 satellite: ``repro bench`` used to clobber ``BENCH_<date>.json``
on a same-day rerun, destroying the morning's baseline the moment the
afternoon's optimisation was measured.  The file is now a runs-list
document — reruns append, each run stamped with the git commit — and a
file the command does not recognise is refused rather than overwritten.

The benchmark itself is wall-clock by nature, so these tests run it at
a tiny record count; only the file-handling contract is asserted, never
the timing numbers.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.bench import BENCH_FORMAT, load_bench_document, \
    run_bench_command


def _args(out, num_records=300, force=False):
    return argparse.Namespace(out=str(out), num_records=num_records,
                              force=force)


class TestLoadBenchDocument:
    def test_current_format_round_trips(self, tmp_path):
        path = tmp_path / "bench.json"
        document = {"format": BENCH_FORMAT, "date": "2026-08-08",
                    "runs": [{"num_records": 1, "modes": []}]}
        path.write_text(json.dumps(document), encoding="utf-8")
        assert load_bench_document(str(path)) == document

    def test_legacy_single_run_migrates(self, tmp_path):
        path = tmp_path / "bench.json"
        legacy = {"num_records": 40_000, "modes": [{"name": "serial"}],
                  "profile_shares": [], "date": "2026-08-07"}
        path.write_text(json.dumps(legacy), encoding="utf-8")
        document = load_bench_document(str(path))
        assert document["format"] == BENCH_FORMAT
        assert document["date"] == "2026-08-07"
        assert len(document["runs"]) == 1
        assert document["runs"][0]["num_records"] == 40_000
        assert "date" not in document["runs"][0]

    @pytest.mark.parametrize("payload", [
        "not json at all {",
        json.dumps(["a", "list"]),
        json.dumps({"something": "else"}),
        json.dumps({"format": BENCH_FORMAT, "runs": "not-a-list"}),
    ])
    def test_unrecognised_files_are_refused(self, tmp_path, payload):
        path = tmp_path / "bench.json"
        path.write_text(payload, encoding="utf-8")
        with pytest.raises(ValueError, match="refusing|no runs list"):
            load_bench_document(str(path))


class TestRunBenchCommand:
    def test_fresh_file_gets_one_stamped_run(self, tmp_path):
        out = tmp_path / "bench.json"
        assert run_bench_command(_args(out)) == 0
        document = json.loads(out.read_text())
        assert document["format"] == BENCH_FORMAT
        assert len(document["runs"]) == 1
        run = document["runs"][0]
        assert run["num_records"] == 300
        # Stamped with the commit under test (the repo is a checkout).
        assert "git_commit" in run
        assert {"serial", "concurrent_qd16_ch4"} == \
            {mode["name"] for mode in run["modes"]}

    def test_same_day_rerun_appends_not_clobbers(self, tmp_path):
        out = tmp_path / "bench.json"
        run_bench_command(_args(out))
        first = json.loads(out.read_text())["runs"][0]
        run_bench_command(_args(out, num_records=400))
        document = json.loads(out.read_text())
        assert len(document["runs"]) == 2
        # The morning's baseline survives the afternoon's rerun.
        assert document["runs"][0] == first
        assert document["runs"][1]["num_records"] == 400

    def test_legacy_file_is_migrated_then_appended(self, tmp_path):
        out = tmp_path / "bench.json"
        legacy = {"num_records": 40_000, "modes": [],
                  "profile_shares": [], "date": "2026-08-07"}
        out.write_text(json.dumps(legacy), encoding="utf-8")
        assert run_bench_command(_args(out)) == 0
        document = json.loads(out.read_text())
        assert document["format"] == BENCH_FORMAT
        assert len(document["runs"]) == 2
        assert document["runs"][0]["num_records"] == 40_000

    def test_garbage_file_is_refused_without_force(self, tmp_path,
                                                   capsys):
        out = tmp_path / "bench.json"
        out.write_text("precious notes, not json", encoding="utf-8")
        assert run_bench_command(_args(out)) == 2
        assert out.read_text() == "precious notes, not json"
        assert "refusing" in capsys.readouterr().out

    def test_force_starts_fresh(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text("garbage", encoding="utf-8")
        assert run_bench_command(_args(out, force=True)) == 0
        document = json.loads(out.read_text())
        assert document["format"] == BENCH_FORMAT
        assert len(document["runs"]) == 1
