"""Event-loop subsystem tests: determinism, NAND scheduling, op
capture, compat-mode byte-identity, and fig14 invariances."""

from __future__ import annotations

import pickle
from dataclasses import asdict

import pytest

from repro.core.hierarchy import build_flash_system
from repro.experiments import fig14_concurrency
from repro.flash.channels import ChannelConfig, NandScheduler
from repro.flash.device import FlashDevice
from repro.flash.geometry import PageAddress
from repro.parallel import sweep
from repro.sim.concurrent import run_trace_concurrent
from repro.sim.engine import QueueingStats, run_trace
from repro.sim.events import Event, EventLoop, EventType
from repro.telemetry import LatencyHistogram
from repro.workloads.macro import build_workload
from repro.workloads.postpdc import derive_disk_trace


class TestEventLoop:
    def test_orders_by_time(self):
        loop = EventLoop()
        seen = []
        loop.register(EventType.ARRIVE, lambda e: seen.append(e.payload))
        loop.post(5.0, Event(EventType.ARRIVE, "late"))
        loop.post(1.0, Event(EventType.ARRIVE, "early"))
        loop.run()
        assert seen == ["early", "late"]

    def test_ties_break_in_post_order(self):
        loop = EventLoop()
        seen = []
        loop.register(EventType.ARRIVE, lambda e: seen.append(e.payload))
        for i in range(20):
            loop.post(3.0, Event(EventType.ARRIVE, i))
        loop.run()
        assert seen == list(range(20))

    def test_now_advances_only_on_pop(self):
        loop = EventLoop()
        times = []
        loop.register(EventType.ARRIVE, lambda e: times.append(loop.now_us))
        loop.post(2.0, Event(EventType.ARRIVE, None))
        loop.post(7.0, Event(EventType.ARRIVE, None))
        assert loop.now_us == 0.0
        end = loop.run()
        assert times == [2.0, 7.0]
        assert end == 7.0

    def test_posting_into_the_past_raises(self):
        loop = EventLoop()
        loop.register(EventType.ARRIVE, lambda e: None)
        loop.post(5.0, Event(EventType.ARRIVE, None))
        while loop.step() is not None:
            pass
        with pytest.raises(ValueError):
            loop.post_at(1.0, Event(EventType.ARRIVE, None))
        with pytest.raises(ValueError):
            loop.post(-1.0, Event(EventType.ARRIVE, None))

    def test_duplicate_registration_rejected(self):
        loop = EventLoop()
        loop.register(EventType.GC, lambda e: None)
        with pytest.raises(ValueError):
            loop.register(EventType.GC, lambda e: None)

    def test_unhandled_event_type_raises(self):
        loop = EventLoop()
        loop.post(0.0, Event(EventType.SCRUB, None))
        with pytest.raises(KeyError):
            loop.run()

    def test_dispatch_counts(self):
        loop = EventLoop()
        loop.register(EventType.ARRIVE, lambda e: None)
        loop.register(EventType.COMPLETE, lambda e: None)
        loop.post(0.0, Event(EventType.ARRIVE, None))
        loop.post(1.0, Event(EventType.ARRIVE, None))
        loop.post(2.0, Event(EventType.COMPLETE, None))
        loop.run()
        assert loop.dispatched[EventType.ARRIVE] == 2
        assert loop.dispatched[EventType.COMPLETE] == 1


class TestNandScheduler:
    def test_serial_fabric_is_a_single_queue(self):
        sched = NandScheduler(ChannelConfig(channels=1, planes=1))
        first = sched.schedule(0.0, 100.0)
        second = sched.schedule(0.0, 50.0)
        assert first.wait_us == 0.0
        assert second.start_us == 100.0 and second.wait_us == 100.0

    def test_least_loaded_lowest_index(self):
        sched = NandScheduler(ChannelConfig(channels=2, planes=1))
        a = sched.schedule(0.0, 100.0)
        b = sched.schedule(0.0, 100.0)
        assert (a.channel, b.channel) == (0, 1)
        assert b.wait_us == 0.0
        c = sched.schedule(10.0, 10.0)  # both busy until 100
        assert c.channel == 0 and c.start_us == 100.0

    def test_plane_indexing(self):
        sched = NandScheduler(ChannelConfig(channels=2, planes=2))
        placements = [sched.schedule(0.0, 10.0) for _ in range(4)]
        assert [(p.channel, p.plane) for p in placements] == [
            (0, 0), (0, 1), (1, 0), (1, 1)]

    def test_utilization_bounded_by_one(self):
        sched = NandScheduler(ChannelConfig(channels=1, planes=2))
        for _ in range(10):
            sched.schedule(0.0, 100.0)
        span = sched.horizon_us()
        assert span == 500.0
        (util,) = sched.utilization(span)
        assert util == pytest.approx(1.0)

    def test_rejects_negative_latency(self):
        sched = NandScheduler(ChannelConfig())
        with pytest.raises(ValueError):
            sched.schedule(0.0, -1.0)

    def test_utilization_at_zero_span_is_all_zeros(self):
        # Degenerate window (no simulated time elapsed): the fraction
        # must not divide by zero, and one row per channel survives.
        sched = NandScheduler(ChannelConfig(channels=3, planes=2))
        assert sched.utilization(0.0) == [0.0, 0.0, 0.0]
        assert sched.utilization(-1.0) == [0.0, 0.0, 0.0]
        sched.schedule(0.0, 25.0)
        assert sched.utilization(0.0) == [0.0, 0.0, 0.0]

    def test_multi_plane_saturation(self):
        # 40 ops of 25us on a 2x2 fabric: 10 per plane, every plane
        # busy end to end -> span 250us and both channels pegged at 1.0.
        sched = NandScheduler(ChannelConfig(channels=2, planes=2))
        for _ in range(40):
            sched.schedule(0.0, 25.0)
        span = sched.horizon_us()
        assert span == 250.0
        assert sched.utilization(span) == pytest.approx([1.0, 1.0])
        # Doubling the window halves the busy fraction, per channel.
        assert sched.utilization(2 * span) == pytest.approx([0.5, 0.5])


class TestQueueingStatsSerialization:
    def _empty_stats(self):
        return QueueingStats(
            queue_depth=4, channels=2, planes=2, span_us=0.0,
            queue_delay=LatencyHistogram("queue_delay_us"),
            service_latency=LatencyHistogram("service_latency_us"),
            channel_busy_us=[0.0, 0.0])

    def test_pickle_round_trip_with_empty_histograms(self):
        # A worker that admitted zero requests still pickles its stats
        # back to the parent; empty histograms must survive the trip.
        stats = self._empty_stats()
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.queue_depth == 4
        assert clone.span_us == 0.0
        assert clone.queue_delay.count == 0
        assert clone.queue_delay.percentile(99.0) == 0.0
        assert clone.mean_queue_delay_us == 0.0
        assert clone.channel_utilization() == [0.0, 0.0]

    def test_merge_empty_into_populated_is_identity(self):
        populated = LatencyHistogram("queue_delay_us")
        for value in (10.0, 200.0, 3000.0):
            populated.observe(value)
        before = populated.__getstate__()
        populated.merge(LatencyHistogram("queue_delay_us"))
        assert populated.__getstate__() == before

    def test_merge_populated_into_empty_adopts_everything(self):
        populated = LatencyHistogram("queue_delay_us")
        for value in (10.0, 200.0, 3000.0):
            populated.observe(value)
        empty = LatencyHistogram("queue_delay_us")
        empty.merge(populated)
        assert empty.count == populated.count
        assert empty.mean == populated.mean
        assert empty.percentile(99.0) == populated.percentile(99.0)

    def test_merge_rejects_mismatched_edges(self):
        ours = LatencyHistogram("a", edges=(1.0, 2.0))
        theirs = LatencyHistogram("a", edges=(1.0, 4.0))
        with pytest.raises(ValueError):
            ours.merge(theirs)


class TestOpCapture:
    def test_capture_reads_programs_erases(self):
        device = FlashDevice()
        first = PageAddress(block=0, frame=0)
        second = PageAddress(block=0, frame=1)
        device.program_page(first)
        ops = []
        with device.capture_ops(ops):
            device.read_page(first)
            device.program_page(second)
        kinds = [op.kind for op in ops]
        assert kinds == ["read", "program"]
        assert all(op.latency_us > 0 for op in ops)
        # outside the context nothing is captured
        device.read_page(first)
        assert len(ops) == 2

    def test_nested_capture_forwards_to_outer(self):
        device = FlashDevice()
        address = PageAddress(block=0, frame=0)
        device.program_page(address)
        outer, inner = [], []
        with device.capture_ops(outer):
            device.read_page(address)
            with device.capture_ops(inner):
                device.read_page(address)
        assert len(inner) == 1
        assert len(outer) == 2


class TestHierarchySubmit:
    def test_submit_matches_serial_latency(self):
        system = build_flash_system(dram_bytes=1 << 20,
                                    flash_bytes=4 << 20)
        pending = system.submit_read(1234)
        assert pending.page == 1234 and pending.is_read
        assert pending.service_us > 0
        pending.dispatch_us = 10.0
        pending.finish_us = 10.0 + pending.service_us
        assert system.complete_request(pending) == pytest.approx(
            pending.service_us)
        assert pending.queue_delay_us == 0.0

    def test_complete_before_dispatch_rejected(self):
        system = build_flash_system(dram_bytes=1 << 20,
                                    flash_bytes=4 << 20)
        pending = system.submit_write(1)
        pending.dispatch_us = 5.0
        pending.finish_us = 1.0
        with pytest.raises(ValueError):
            system.complete_request(pending)


def _system():
    return build_flash_system(dram_bytes=2 << 20, flash_bytes=8 << 20)


def _trace(workload="specweb99", n=3000, seed=21):
    return build_workload(workload, num_records=n, footprint_pages=8192,
                          seed=seed)


class TestCompatMode:
    """queue_depth=1, channels=1, planes=1 is byte-identical to the
    legacy serial engine (the fig1b..fig13 guarantee)."""

    @pytest.mark.parametrize("workload", ["specweb99", "dbt2"])
    def test_byte_identical_report(self, workload):
        serial = run_trace(_system(), _trace(workload))
        compat = run_trace_concurrent(_system(), _trace(workload),
                                      queue_depth=1, channels=1, planes=1)
        assert asdict(serial) == asdict(compat)
        assert compat.queueing is None

    def test_byte_identical_on_post_pdc_disk_trace(self):
        # Third workload shape: the post-PDC disk-level stream (reads
        # that missed the page cache plus dirty write-backs) has a very
        # different read/write mix than the application traces, and is
        # exactly what the Flash tier sees in the paper's hierarchy.
        disk_trace = derive_disk_trace(_trace("dbt2"), pdc_pages=512)
        assert disk_trace  # the filter must leave a real stream behind
        serial = run_trace(_system(), disk_trace)
        compat = run_trace_concurrent(_system(), disk_trace,
                                      queue_depth=1, channels=1, planes=1)
        assert asdict(serial) == asdict(compat)
        assert compat.queueing is None

    def test_functional_metrics_invariant_under_concurrency(self):
        serial = run_trace(_system(), _trace())
        concurrent = run_trace_concurrent(_system(), _trace(),
                                          queue_depth=8, channels=2,
                                          planes=2)
        assert concurrent.queueing is not None
        for field in ("requests", "reads", "writes",
                      "average_latency_us", "disk_reads", "disk_writes",
                      "flash_miss_rate", "flash_live_capacity"):
            assert getattr(concurrent, field) == getattr(serial, field)
        assert asdict(serial.pdc) == asdict(concurrent.pdc)
        assert asdict(serial.flash) == asdict(concurrent.flash)
        # concurrency compresses the makespan
        assert concurrent.wall_clock_us < serial.wall_clock_us
        assert concurrent.throughput_rps > serial.throughput_rps

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(ValueError):
            run_trace_concurrent(_system(), _trace(n=10), queue_depth=0)


def _fig14_grid():
    return fig14_concurrency.tasks(queue_depths=(1, 4, 8),
                                   channel_counts=(1, 2),
                                   scale_divisor=256, num_records=4000)


class TestFig14:
    def test_worker_count_invariance(self):
        rows_one = fig14_concurrency.combine(sweep(_fig14_grid(),
                                                   workers=1))
        rows_two = fig14_concurrency.combine(sweep(_fig14_grid(),
                                                   workers=2))
        assert ([asdict(row) for row in rows_one]
                == [asdict(row) for row in rows_two])

    def test_throughput_monotone_on_both_axes(self):
        rows = fig14_concurrency.combine(sweep(_fig14_grid(), workers=2))
        cells = {(r.queue_depth, r.channels): r.throughput_rps
                 for r in rows}
        for depths, channels in (((1, 4, 8), (1, 2)),):
            for ch in channels:
                series = [cells[(qd, ch)] for qd in depths]
                assert series == sorted(series)
            for qd in depths:
                series = [cells[(qd, ch)] for ch in channels]
                assert series == sorted(series)

    def test_latency_split_reported(self):
        rows = fig14_concurrency.combine(sweep(_fig14_grid(), workers=1))
        deep = next(r for r in rows
                    if r.queue_depth == 8 and r.channels == 1)
        assert deep.service_p99_us > 0
        assert deep.queue_delay_p99_us >= deep.queue_delay_p50_us
        assert all(0.0 <= u <= 1.0 + 1e-9
                   for u in deep.channel_utilization)
        assert deep.speedup > 1.0
