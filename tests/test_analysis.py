"""simlint tests: the engine, each SIM rule (fire / near-miss / pragma),
baseline round-trips, and the meta-invariant that the committed tree
lints clean.

Fixture modules are written under a synthetic ``repro/...`` directory so
the scope-sensitive rules (SIM001's hard core, SIM006, SIM008) see the
same package names they key on in the real tree — the engine derives a
module's dotted name from its path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_BASELINE,
    Finding,
    LintEngine,
    RULES,
    all_rules,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import module_name_for_path

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_fixture(tmp_path: Path, relname: str, source: str,
                 extra: dict | None = None) -> list[Finding]:
    """Write fixture module(s) under tmp_path and lint the whole tree."""
    files = {relname: source}
    files.update(extra or {})
    for name, text in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    engine = LintEngine(all_rules(), root=tmp_path)
    return engine.run([tmp_path]).findings


def codes(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------


class TestEngine:
    def test_module_name_derivation(self):
        assert module_name_for_path(
            Path("src/repro/core/cache.py")) == "repro.core.cache"
        assert module_name_for_path(
            Path("/tmp/x/repro/sim/engine.py")) == "repro.sim.engine"
        assert module_name_for_path(
            Path("src/repro/analysis/__init__.py")) == "repro.analysis"
        assert module_name_for_path(Path("scratch.py")) == "scratch"

    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/broken.py",
                                "def f(:\n")
        assert codes(findings) == ["SIM000"]
        assert "syntax error" in findings[0].message

    def test_relative_import_resolution(self, tmp_path):
        # ``from ..parallel import derive_seed`` inside repro.faults.x
        # must resolve to repro.parallel.derive_seed (an approved seed
        # source for SIM002).
        findings = lint_fixture(tmp_path, "repro/faults/inj.py", """
            from random import Random
            from ..parallel import derive_seed

            def make(seed: int):
                return Random(derive_seed(seed, "stream"))
            """)
        assert findings == []

    def test_rule_registry_is_complete(self):
        assert sorted(RULES) == [f"SIM{n:03d}" for n in range(1, 14)]
        for code, cls in RULES.items():
            assert cls.description, code
            assert cls.severity in ("error", "warning")

    def test_skip_file_pragma(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/gen.py", """
            # simlint: skip-file
            import time

            def f():
                return time.time()
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM001 — wall clock
# ---------------------------------------------------------------------------


class TestSim001WallClock:
    def test_fires_in_simulation_package(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/clock.py", """
            import time

            def now():
                return time.time()
            """)
        assert codes(findings) == ["SIM001"]
        assert "simulated time" in findings[0].message

    def test_fires_on_from_import_alias(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/timer.py", """
            from time import perf_counter as pc

            def elapsed():
                return pc()
            """)
        assert codes(findings) == ["SIM001"]

    def test_fires_on_datetime_now(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/stamp.py", """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """)
        assert codes(findings) == ["SIM001"]

    def test_near_miss_method_named_time(self, tmp_path):
        # A .time() method on a local object is not the wall clock.
        findings = lint_fixture(tmp_path, "repro/sim/ok.py", """
            def f(simclock):
                return simclock.time()
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/rep.py", """
            import time

            def footnote():
                return time.perf_counter()  # simlint: ignore[SIM001] -- orchestration
            """)
        assert findings == []

    def test_standalone_pragma_line_covers_next_line(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/rep2.py", """
            import time

            def footnote():
                # simlint: ignore[SIM001] -- orchestration
                return time.perf_counter()
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM002 — RNG seeding discipline
# ---------------------------------------------------------------------------


class TestSim002RngSeed:
    def test_fires_on_unseeded_random(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/gen.py", """
            from random import Random

            def make():
                return Random()
            """)
        assert codes(findings) == ["SIM002"]
        assert "unseeded" in findings[0].message

    def test_fires_on_global_random_function(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/gen2.py", """
            import random

            def draw():
                return random.random()
            """)
        assert codes(findings) == ["SIM002"]
        assert "process-global" in findings[0].message

    def test_fires_on_module_level_rng(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/gen3.py", """
            from random import Random

            RNG = Random(1234)
            """)
        assert codes(findings) == ["SIM002"]
        assert "module-level" in findings[0].message

    def test_fires_on_seed_arithmetic(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/faults/gen4.py", """
            from random import Random

            def make(seed: int):
                return Random((seed << 2) | 1)
            """)
        assert codes(findings) == ["SIM002"]
        assert "derive_seed" in findings[0].message

    def test_fires_on_numpy_global(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/gen5.py", """
            import numpy as np

            def draw(n: int):
                return np.random.rand(n)
            """)
        assert codes(findings) == ["SIM002"]

    def test_near_miss_explicit_seed_forms(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/ok.py", """
            from random import Random
            from repro.parallel import derive_seed

            def a(seed: int):
                return Random(seed)

            def b(config):
                return Random(config.seed)

            def c(seed: int):
                return Random(derive_seed(seed, "stream"))

            def d():
                return Random(1234)

            def e(rng):
                return rng.random()  # method on a local RNG, not global
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/leg.py", """
            from random import Random

            def make(seed: int):
                return Random(seed * 31)  # simlint: ignore[SIM002] -- legacy stream
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM003 — hash/order hazards
# ---------------------------------------------------------------------------


class TestSim003HashOrder:
    def test_fires_on_hash_outside_dunder(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/workloads/h.py", """
            def key(name: str) -> int:
                return hash(name)
            """)
        assert codes(findings) == ["SIM003"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_fires_on_set_iteration(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/s.py", """
            def walk(xs):
                for x in set(xs):
                    yield x
            """)
        assert codes(findings) == ["SIM003"]

    def test_fires_on_list_of_set(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/s2.py", """
            def order(xs):
                return list(set(xs))
            """)
        assert codes(findings) == ["SIM003"]

    def test_fires_on_id(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/telemetry/k.py", """
            def key(obj):
                return id(obj)
            """)
        assert codes(findings) == ["SIM003"]

    def test_near_miss_dunder_hash_and_sorted(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/ok.py", """
            class Key:
                def __hash__(self) -> int:
                    return hash((self.a, self.b))

            def order(xs):
                return sorted(set(xs))

            def member(xs, x):
                return x in set(xs)  # membership, not iteration
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/p.py", """
            def key(name: str) -> int:
                return hash(name)  # simlint: ignore[SIM003] -- non-sim debug aid
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM004 — picklable sweep tasks
# ---------------------------------------------------------------------------


class TestSim004PicklableTask:
    def test_fires_on_lambda_fn(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/t.py", """
            from repro.parallel import SweepTask

            def tasks():
                return [SweepTask(key="a", fn=lambda: 1)]
            """)
        assert codes(findings) == ["SIM004"]
        assert "lambda" in findings[0].message

    def test_fires_on_closure_fn(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/t2.py", """
            from repro.parallel import SweepTask

            def tasks():
                def run_one(seed: int) -> int:
                    return seed
                return [SweepTask(key="a", fn=run_one)]
            """)
        assert codes(findings) == ["SIM004"]
        assert "nested" in findings[0].message

    def test_fires_on_bound_method_fn(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/t3.py", """
            from repro.parallel import SweepTask

            class Grid:
                def run(self) -> int:
                    return 1

                def tasks(self):
                    return [SweepTask(key="a", fn=self.run)]
            """)
        assert codes(findings) == ["SIM004"]

    def test_fires_on_lambda_in_kwargs(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/t4.py", """
            from repro.parallel import SweepTask

            def run_one(**kw):
                return 0

            def tasks():
                return [SweepTask(key="a", fn=run_one,
                                  kwargs={"hook": lambda v: v})]
            """)
        assert codes(findings) == ["SIM004"]

    def test_near_miss_module_level_fn(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/ok.py", """
            from repro.parallel import SweepTask
            from repro.experiments import fig6_ecc

            def run_one(seed: int) -> int:
                return seed

            def tasks():
                return [
                    SweepTask(key="a", fn=run_one, kwargs={"x": 1}),
                    SweepTask(key="b", fn=fig6_ecc.main),
                ]
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/p.py", """
            from repro.parallel import SweepTask

            def tasks():
                return [SweepTask(key="a", fn=lambda: 1)]  # simlint: ignore[SIM004] -- serial-only grid
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM005 — unit discipline
# ---------------------------------------------------------------------------


class TestSim005UnitMix:
    def test_fires_on_addition_across_units(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/u.py", """
            def total(latency_us: float, stall_ms: float) -> float:
                return latency_us + stall_ms
            """)
        assert codes(findings) == ["SIM005"]
        assert "_us" in findings[0].message and "_ms" in findings[0].message

    def test_fires_on_comparison_across_units(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/u2.py", """
            def slow(latency_us: float, budget_s: float) -> bool:
                return latency_us > budget_s
            """)
        assert codes(findings) == ["SIM005"]

    def test_fires_on_assignment_across_units(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/u3.py", """
            def convert(total_us: float) -> float:
                total_ms = total_us
                return total_ms
            """)
        assert codes(findings) == ["SIM005"]

    def test_fires_on_keyword_across_units(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/u4.py", """
            def record(hist, elapsed_ms: float):
                hist.observe(latency_us=elapsed_ms)
            """)
        assert codes(findings) == ["SIM005"]

    def test_near_miss_same_unit_and_conversions(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/ok.py", """
            def f(a_us: float, b_us: float) -> float:
                return a_us + b_us

            def g(a_us: float, b_s: float) -> float:
                return a_us + b_s * 1e6  # factor clears the unit

            def h(x_ms: float) -> float:
                total_us = ms_to_us(x_ms)  # conversion call carries unit
                return total_us

            def ms_to_us(v: float) -> float:
                return v * 1e3
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/p.py", """
            def f(a_us: float, b_ms: float) -> float:
                return a_us + b_ms  # simlint: ignore[SIM005] -- unit checked upstream
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM006 — telemetry guards
# ---------------------------------------------------------------------------


class TestSim006TelemetryGuard:
    def test_fires_on_unguarded_attribute_call(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/hot.py", """
            class Cache:
                def read(self, lba: int) -> None:
                    self.telemetry.flash_read(1.0, 0, False)
            """)
        assert codes(findings) == ["SIM006"]
        assert "unguarded" in findings[0].message

    def test_fires_on_unguarded_local_call(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/flash/hot2.py", """
            class Device:
                def read(self) -> None:
                    telemetry = self.telemetry
                    telemetry.page_read(0)
            """)
        assert codes(findings) == ["SIM006"]

    def test_near_miss_guarded_patterns(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/ok.py", """
            class Cache:
                def read(self, lba: int) -> None:
                    telemetry = self.telemetry
                    if telemetry is not None:
                        telemetry.flash_read(1.0, 0, False)

                def reconfig(self, kind: str) -> None:
                    if self.telemetry is not None:
                        self.telemetry.reconfig(kind)

                def gc(self) -> None:
                    t = self.telemetry
                    telemetry = t
                    telemetry is not None and telemetry.gc(1)
            """)
        assert findings == []

    def test_near_miss_inverted_guard(self, tmp_path):
        # ``if telemetry is None: ... else: telemetry.attach(...)`` — the
        # run_trace shape: the orelse branch is the guarded one.
        findings = lint_fixture(tmp_path, "repro/sim/run.py", """
            def run(system, telemetry=None):
                if telemetry is None:
                    system.run()
                else:
                    telemetry.attach(system)
                    system.run()
            """)
        assert findings == []

    def test_near_miss_outside_hot_packages(self, tmp_path):
        # Experiments aggregate telemetry after the run; no guard needed.
        findings = lint_fixture(tmp_path, "repro/experiments/agg.py", """
            def collect(handle):
                handle.telemetry.export()
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/p.py", """
            class Cache:
                def read(self) -> None:
                    self.telemetry.flash_read(1.0)  # simlint: ignore[SIM006] -- cold path
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM007 — dead counters
# ---------------------------------------------------------------------------


class TestSim007DeadCounter:
    def test_fires_on_never_written_field(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/stats.py", """
            from dataclasses import dataclass

            @dataclass
            class ControllerStats:
                reads: int = 0
                phantom_counter: int = 0

            class Controller:
                def read(self) -> None:
                    self.stats.reads += 1
            """)
        assert codes(findings) == ["SIM007"]
        assert "phantom_counter" in findings[0].message
        assert findings[0].severity == "warning"

    def test_near_miss_written_in_other_module(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/stats.py", """
            from dataclasses import dataclass

            @dataclass
            class CacheStats:
                remote_hits: int = 0
            """, extra={"repro/sim/driver.py": """
            def drive(cache) -> None:
                cache.stats.remote_hits += 1
            """})
        assert findings == []

    def test_near_miss_written_via_constructor_kwarg(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/rep.py", """
            from dataclasses import dataclass

            @dataclass
            class SimulationReport:
                requests: int = 0

            def build() -> SimulationReport:
                return SimulationReport(requests=7)
            """)
        assert findings == []

    def test_non_stats_classes_ignored(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/cfg.py", """
            from dataclasses import dataclass

            @dataclass
            class SomeConfig:
                never_written_anywhere: int = 0
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM008 — exception discipline
# ---------------------------------------------------------------------------


class TestSim008ExceptionDiscipline:
    def test_fires_on_bare_except(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/x.py", """
            def f():
                try:
                    risky()
                except:
                    return None
            """)
        assert codes(findings) == ["SIM008"]
        assert "bare" in findings[0].message

    def test_fires_on_swallowed_core_error(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/x2.py", """
            from repro.core.errors import CacheDegradedError

            def f(cache):
                try:
                    cache.read(0)
                except CacheDegradedError:
                    pass
            """)
        assert codes(findings) == ["SIM008"]
        assert "swallowed" in findings[0].message

    def test_fires_on_except_exception_pass(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/x3.py", """
            def f():
                try:
                    risky()
                except Exception:
                    pass
            """)
        assert codes(findings) == ["SIM008"]

    def test_near_miss_handled_core_error(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/ok.py", """
            from .errors import CacheDegradedError

            def f(cache):
                try:
                    cache.read(0)
                except CacheDegradedError:
                    cache.stats.degraded_events += 1
                except ValueError:
                    pass
            """)
        assert findings == []

    def test_near_miss_outside_core_packages(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/x.py", """
            def f():
                try:
                    risky()
                except Exception:
                    pass
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/p.py", """
            def f():
                try:
                    risky()
                except Exception:  # simlint: ignore[SIM008] -- boundary shim
                    pass
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM009 — atomic artifact writes
# ---------------------------------------------------------------------------


class TestSim009AtomicWrite:
    def test_fires_on_truncating_open(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/w.py", """
            def dump(path, text):
                with open(path, "w") as stream:
                    stream.write(text)
            """)
        assert codes(findings) == ["SIM009"]
        assert "atomic_write_text" in findings[0].message

    def test_fires_on_binary_and_mode_keyword(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/telemetry/w2.py", """
            def dump(path, blob, text):
                with open(path, mode="wb") as stream:
                    stream.write(blob)
                with open(path, mode="x") as stream:
                    stream.write(text)
            """)
        assert codes(findings) == ["SIM009", "SIM009"]

    def test_fires_on_path_write_text(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/analysis/w3.py", """
            from pathlib import Path

            def dump(path, text):
                Path(path).write_text(text, encoding="utf-8")
            """)
        assert codes(findings) == ["SIM009"]
        assert ".write_text()" in findings[0].message

    def test_near_miss_read_and_append(self, tmp_path):
        # Reads, appends (the journal's own durability design), and
        # dynamic modes the rule cannot judge are all exempt.
        findings = lint_fixture(tmp_path, "repro/experiments/ok9.py", """
            def roundtrip(path, text, mode):
                with open(path) as stream:
                    stream.read()
                with open(path, "r", encoding="utf-8") as stream:
                    stream.read()
                with open(path, "a") as stream:
                    stream.write(text)
                with open(path, mode) as stream:
                    stream.write(text)
            """)
        assert findings == []

    def test_near_miss_atomicio_module_itself(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/atomicio.py", """
            import os

            def atomic_write_text(path, content):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w") as stream:
                    stream.write(content)
                os.replace(tmp, path)
            """)
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/p9.py", """
            def scratch(path, text):
                with open(path, "w") as stream:  # simlint: ignore[SIM009] -- throwaway scratch file
                    stream.write(text)
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM010 — event-handler time discipline
# ---------------------------------------------------------------------------


class TestSim010EventHandlerTime:
    def test_fires_on_advance_clock_in_handler(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/h1.py",
                                """
            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"
                COMPLETE = "complete"

            class Engine:
                def __init__(self, loop, device):
                    self.loop = loop
                    self.device = device
                    loop.register(EventType.ARRIVE, self._on_arrive)

                def _on_arrive(self, event):
                    self.device.advance_clock(10.0)
            """)
        assert codes(findings) == ["SIM010"]
        assert "advance_clock" in findings[0].message

    def test_fires_on_clock_attribute_write(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/h2.py",
                                """
            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"
                COMPLETE = "complete"

            class Engine:
                def __init__(self, loop, device):
                    self.loop = loop
                    self.device = device
                    loop.register(EventType.COMPLETE, self._on_complete)

                def _on_complete(self, event):
                    self.device.clock_us = self.loop.now_us
                    self.device.now_us += 5.0
            """)
        assert codes(findings) == ["SIM010", "SIM010"]
        assert "post an event" in findings[0].message

    def test_fires_on_wall_clock_in_handler(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/h3.py",
                                """
            import time

            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"
                COMPLETE = "complete"

            class Engine:
                def __init__(self, loop):
                    loop.register(EventType.ARRIVE, self._on_arrive)

                def _on_arrive(self, event):
                    return time.perf_counter()
            """)
        # SIM001 (wall clock in a sim package) fires alongside the
        # handler-discipline finding.
        assert sorted(set(codes(findings))) == ["SIM001", "SIM010"]

    def test_near_miss_clean_handler_and_non_handler(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/ok10.py",
                                """
            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"
                COMPLETE = "complete"

            class Engine:
                def __init__(self, loop, device):
                    self.loop = loop
                    self.device = device
                    loop.register(EventType.ARRIVE, self._on_arrive)

                def _on_arrive(self, event):
                    event.payload.arrive_us = self.loop.now_us
                    self.loop.post(1.0, event)

                def reset(self):
                    # not a registered handler: free to manage clocks
                    self.device.advance_clock(1.0)
            """)
        assert "SIM010" not in codes(findings)

    def test_near_miss_outside_sim_package(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/h4.py",
                                """
            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"
                COMPLETE = "complete"

            class Driver:
                def __init__(self, loop, device):
                    self.device = device
                    loop.register(EventType.ARRIVE, self._on_arrive)

                def _on_arrive(self, event):
                    self.device.advance_clock(10.0)
            """)
        assert "SIM010" not in codes(findings)

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/p10.py",
                                """
            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"
                COMPLETE = "complete"

            class Engine:
                def __init__(self, loop, device):
                    self.loop = loop
                    self.device = device
                    loop.register(EventType.ARRIVE, self._on_arrive)

                def _on_arrive(self, event):
                    self.device.advance_clock(1.0)  # simlint: ignore[SIM010] -- legacy bridge, reviewed
            """)
        assert "SIM010" not in codes(findings)


# ---------------------------------------------------------------------------
# SIM011 — blocking calls reachable from async defs
# ---------------------------------------------------------------------------


class TestSim011AsyncBlocking:
    def test_fires_transitively(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/svc.py", """
            import time

            def step():
                time.sleep(0.5)

            async def serve():
                step()
            """)
        sim011 = [f for f in findings if f.rule == "SIM011"]
        assert len(sim011) == 1
        finding = sim011[0]
        assert "time.sleep" in finding.message
        assert "serve" in finding.message
        assert finding.severity == "error"
        # The chain walks entry -> callee -> source.
        assert any("calls" in hop for hop in finding.chain)
        assert "time.sleep" in finding.chain[-1]

    def test_near_miss_executor_lambda(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/svc2.py", """
            import asyncio
            import time

            def step():
                time.sleep(0.5)

            async def serve():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, lambda: step())
            """)
        assert "SIM011" not in codes(findings)

    def test_near_miss_sync_def(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/svc3.py", """
            import time

            def step():
                time.sleep(0.5)

            def serve():
                step()
            """)
        assert "SIM011" not in codes(findings)

    def test_near_miss_outside_cluster(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/svc4.py", """
            import time

            async def serve():
                time.sleep(0.5)
            """)
        assert "SIM011" not in codes(findings)

    def test_pragma_at_source_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/svc5.py", """
            import time

            def step():
                time.sleep(0.5)  # simlint: ignore[SIM011] -- startup backoff, reviewed

            async def serve():
                step()
            """)
        assert "SIM011" not in codes(findings)


# ---------------------------------------------------------------------------
# SIM012 — set iteration order escaping into output paths
# ---------------------------------------------------------------------------


class TestSim012SetOrderEscape:
    def test_fires_on_sink_iterating_helper_set(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/telemetry/export.py", """
            def hot_keys():
                return {1, 2, 3}

            def write_keys(out):
                for key in hot_keys():
                    out.write(str(key))
            """)
        sim012 = [f for f in findings if f.rule == "SIM012"]
        assert len(sim012) == 1
        assert "hot_keys" in sim012[0].message
        assert "sorted" in sim012[0].message
        assert sim012[0].chain

    def test_fires_through_local_variable(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/feed.py", """
            def live_shards():
                return set([1, 2])

            def render_feed(out):
                shards = live_shards()
                return [str(s) for s in shards]
            """)
        assert "SIM012" in codes(findings)

    def test_near_miss_sorted_clears(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/telemetry/export.py", """
            def hot_keys():
                return {1, 2, 3}

            def write_keys(out):
                for key in sorted(hot_keys()):
                    out.write(str(key))
            """)
        assert "SIM012" not in codes(findings)

    def test_near_miss_non_output_path(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/core/scan.py", """
            def hot_keys():
                return {1, 2, 3}

            def total(out):
                acc = 0
                for key in hot_keys():
                    acc += key
                return acc
            """)
        assert "SIM012" not in codes(findings)

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/telemetry/export.py", """
            def hot_keys():
                return {1, 2, 3}

            def write_keys(out):
                for key in hot_keys():  # simlint: ignore[SIM012] -- summed, order-free
                    out.write(str(key))
            """)
        assert "SIM012" not in codes(findings)


# ---------------------------------------------------------------------------
# SIM013 — module-level mutables written by worker-side code
# ---------------------------------------------------------------------------


class TestSim013SharedMutableGlobal:
    def test_fires_on_direct_write(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/wrk.py", """
            CACHE = {}

            def run_shard(config):
                CACHE[config] = 1
                return config
            """)
        sim013 = [f for f in findings if f.rule == "SIM013"]
        assert len(sim013) == 1
        assert "CACHE" in sim013[0].message
        assert "run_shard" in sim013[0].message

    def test_fires_transitively_across_modules(self, tmp_path):
        findings = lint_fixture(
            tmp_path, "repro/experiments/wrk2.py", """
            from repro.experiments.state import remember

            def run_shard(config):
                remember(config)
                return config
            """,
            extra={"repro/experiments/state.py": """
            SEEN = []

            def remember(x):
                SEEN.append(x)
            """})
        sim013 = [f for f in findings if f.rule == "SIM013"]
        assert len(sim013) == 1
        assert "SEEN" in sim013[0].message
        assert "reached from worker entry run_shard()" in sim013[0].message
        assert sim013[0].path == "repro/experiments/state.py"
        assert sim013[0].chain

    def test_near_miss_local_shadow_and_reads(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/wrk3.py", """
            CACHE = {}
            LIMITS = {"max": 4}

            def run_shard(config):
                CACHE = {}
                CACHE[config] = 1
                return LIMITS.get("max")
            """)
        assert "SIM013" not in codes(findings)

    def test_near_miss_not_worker_side(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/wrk4.py", """
            CACHE = {}

            def orchestrate(config):
                CACHE[config] = 1
                return config
            """)
        assert "SIM013" not in codes(findings)

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/wrk5.py", """
            CACHE = {}

            def run_shard(config):
                CACHE[config] = 1  # simlint: ignore[SIM013] -- memo, rebuilt per process
                return config
            """)
        assert "SIM013" not in codes(findings)


# ---------------------------------------------------------------------------
# Whole-program (transitive) extensions of SIM001/SIM002/SIM004/SIM010
# ---------------------------------------------------------------------------


class TestTransitiveTaint:
    ENTRY_FIXTURE = {
        "repro/cluster/entry.py": """
            from repro.cluster.stamp import stamp

            def run_shard(config):
                return stamp(config)
            """,
        "repro/cluster/stamp.py": """
            import time

            def stamp(config):
                return time.time()
            """,
    }

    def test_sim001_entry_point_reaches_clock(self, tmp_path):
        fixture = dict(self.ENTRY_FIXTURE)
        first = fixture.pop("repro/cluster/entry.py")
        findings = lint_fixture(tmp_path, "repro/cluster/entry.py",
                                first, extra=fixture)
        sim001 = [f for f in findings if f.rule == "SIM001"]
        # file-local finding at the read + transitive finding at the entry
        assert len(sim001) == 2
        entry = [f for f in sim001
                 if f.path == "repro/cluster/entry.py"]
        assert len(entry) == 1
        assert "run_shard() reaches time.time()" in entry[0].message
        assert "stamp" in entry[0].message
        assert any("time.time" in hop for hop in entry[0].chain)

    def test_sim001_pragma_at_source_kills_taint(self, tmp_path):
        findings = lint_fixture(
            tmp_path, "repro/cluster/entry.py",
            self.ENTRY_FIXTURE["repro/cluster/entry.py"],
            extra={"repro/cluster/stamp.py": """
            import time

            def stamp(config):
                return time.time()  # simlint: ignore[SIM001] -- interval timing, reviewed
            """})
        assert "SIM001" not in codes(findings)

    def test_sim002_cross_module_seed_arith(self, tmp_path):
        findings = lint_fixture(
            tmp_path, "repro/faults/use.py", """
            from random import Random

            from repro.faults.seeds import shifted

            def make(seed: int):
                return Random(shifted(seed))
            """,
            extra={"repro/faults/seeds.py": """
            def shifted(seed):
                return seed * 2 + 1
            """})
        sim002 = [f for f in findings if f.rule == "SIM002"]
        assert len(sim002) == 1
        assert "shifted" in sim002[0].message
        assert "derive_seed" in sim002[0].message
        assert sim002[0].path == "repro/faults/use.py"

    def test_sim002_near_miss_plain_forwarder(self, tmp_path):
        findings = lint_fixture(
            tmp_path, "repro/faults/use2.py", """
            from random import Random

            from repro.faults.fwd import same

            def make(seed: int):
                return Random(same(seed))
            """,
            extra={"repro/faults/fwd.py": """
            def same(seed):
                return seed
            """})
        assert "SIM002" not in codes(findings)

    def test_sim004_payload_calls_lambda_factory(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/tk.py", """
            def work(x):
                return x

            def make_cb():
                return lambda x: x + 1

            def build():
                return SweepTask("k", work, {"cb": make_cb()})
            """)
        sim004 = [f for f in findings if f.rule == "SIM004"]
        assert len(sim004) == 1
        assert "make_cb" in sim004[0].message
        assert "returns a lambda" in sim004[0].message

    def test_sim004_forwarding_factory_is_transitive(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/tk2.py", """
            def work(x):
                return x

            def make_cb():
                return lambda x: x + 1

            def wrap_cb():
                return make_cb()

            def build():
                return SweepTask("k", work, {"cb": wrap_cb()})
            """)
        assert "SIM004" in codes(findings)

    def test_sim004_near_miss_data_factory(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/tk3.py", """
            def work(x):
                return x

            def make_cfg():
                return {"a": 1}

            def build():
                return SweepTask("k", work, {"cfg": make_cfg()})
            """)
        assert "SIM004" not in codes(findings)

    def test_sim010_handler_reaches_advance_clock_via_helper(
            self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/hx.py", """
            from enum import Enum

            class EventType(Enum):
                ARRIVE = "arrive"

            class Engine:
                def __init__(self, loop, device):
                    self.loop = loop
                    self.device = device
                    loop.register(EventType.ARRIVE, self._on_arrive)

                def _on_arrive(self, event):
                    self._bump()

                def _bump(self):
                    self.device.advance_clock(5.0)
            """)
        sim010 = [f for f in findings if f.rule == "SIM010"]
        assert len(sim010) == 1
        assert "_on_arrive" in sim010[0].message
        assert "_bump" in sim010[0].message
        assert any("advance_clock" in hop for hop in sim010[0].chain)


# ---------------------------------------------------------------------------
# Pragma edge cases
# ---------------------------------------------------------------------------


class TestPragmaEdgeCases:
    def test_pragma_above_decorated_def(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/dec.py", """
            import functools
            import time

            def step():
                time.sleep(0.1)

            # simlint: ignore[SIM011] -- bridge coroutine, reviewed
            @functools.wraps(step)
            async def serve():
                step()
            """)
        assert "SIM011" not in codes(findings)

    def test_pragma_on_decorated_def_line(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/cluster/dec2.py", """
            import functools
            import time

            def step():
                time.sleep(0.1)

            @functools.wraps(step)
            async def serve():  # simlint: ignore[SIM011] -- bridge coroutine, reviewed
                step()
            """)
        assert "SIM011" not in codes(findings)

    def test_pragma_inside_multi_line_call_span(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/experiments/ml.py", """
            import time

            def interval():
                return time.perf_counter(
                )  # simlint: ignore[SIM001] -- interval timing, reviewed
            """)
        assert "SIM001" not in codes(findings)

    def test_unknown_rule_id_warns(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/sim/badp.py", """
            def f():
                return 1  # simlint: ignore[SIM999] -- no such rule
            """)
        assert codes(findings) == ["SIM000"]
        assert "SIM999" in findings[0].message
        assert "unknown rule id" in findings[0].message
        assert findings[0].severity == "warning"


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------


class TestBaseline:
    def _dirty_tree(self, tmp_path: Path) -> list[Finding]:
        return lint_fixture(tmp_path, "repro/sim/dirty.py", """
            import time

            def a():
                return time.time()

            def b():
                return time.time()
            """)

    def test_round_trip_suppresses_recorded_findings(self, tmp_path):
        findings = self._dirty_tree(tmp_path)
        assert codes(findings) == ["SIM001", "SIM001"]
        baseline_path = tmp_path / "baseline.json"
        entries = write_baseline(baseline_path, findings)
        assert entries == 1  # two identical findings fold into one entry
        baseline = load_baseline(baseline_path)
        fresh, suppressed = apply_baseline(findings, baseline)
        assert fresh == [] and suppressed == 2

    def test_new_finding_escapes_baseline(self, tmp_path):
        findings = self._dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings[:1])
        # Baseline recorded count=1; the second identical finding is new.
        baseline = load_baseline(baseline_path)
        fresh, suppressed = apply_baseline(findings, baseline)
        assert len(fresh) == 1 and suppressed == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_cli_baseline_flow(self, tmp_path, monkeypatch, capsys):
        self._dirty_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro"]) == 1
        assert lint_main(["repro", "--write-baseline"]) == 0
        assert (tmp_path / DEFAULT_BASELINE).exists()
        assert lint_main(["repro", "--baseline"]) == 0
        capsys.readouterr()


# ---------------------------------------------------------------------------
# CLI + meta-invariants
# ---------------------------------------------------------------------------


class TestCliAndMeta:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "repro" / "sim").mkdir(parents=True)
        (tmp_path / "repro" / "sim" / "m.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 1
        assert document["summary"]["by_rule"] == {"SIM001": 1}
        assert document["findings"][0]["rule"] == "SIM001"

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["definitely/not/a/path"]) == 2
        capsys.readouterr()

    def test_committed_tree_lints_clean(self):
        """`repro lint src/` must exit 0 on the committed tree."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src",
             "--format", "json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        document = json.loads(proc.stdout)
        assert document["summary"]["errors"] == 0
        assert document["summary"]["warnings"] == 0

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        assert sum(baseline.values()) == 0

    def test_lint_paths_api(self):
        result = lint_paths([REPO_ROOT / "src" / "repro" / "analysis"],
                            root=REPO_ROOT)
        assert result.findings == []
        assert result.files >= 5

    def test_scoped_mypy_passes(self):
        """CI's scoped mypy gate, runnable locally when mypy exists."""
        pytest.importorskip("mypy")
        env = dict(os.environ)
        env["MYPYPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "-p", "repro.core",
             "-p", "repro.parallel", "-p", "repro.cluster",
             "-m", "repro.sim.events"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ---------------------------------------------------------------------------
# Whole-program CLI: --why, --graph-out, --changed, sarif, baselines
# ---------------------------------------------------------------------------


DIRTY_CHAIN = {
    "repro/cluster/entry.py": ("from repro.cluster.stamp import stamp\n"
                               "\n\n"
                               "def run_shard(config):\n"
                               "    return stamp(config)\n"),
    "repro/cluster/stamp.py": ("import time\n"
                               "\n\n"
                               "def stamp(config):\n"
                               "    return time.time()\n"),
}


def write_tree(tmp_path: Path, files: dict) -> None:
    for name, text in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")


class TestWholeProgramCli:
    def test_why_prints_call_chain(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, DIRTY_CHAIN)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro", "--why",
                          "SIM001:repro/cluster/entry.py"]) == 0
        out = capsys.readouterr().out
        assert "run_shard() reaches time.time()" in out
        assert "[0]" in out and "[1]" in out
        assert "calls repro.cluster.stamp.stamp" in out
        assert "time.time" in out

    def test_why_no_match_is_usage_error(self, tmp_path, monkeypatch,
                                         capsys):
        write_tree(tmp_path, DIRTY_CHAIN)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro", "--why",
                          "SIM004:repro/cluster/entry.py"]) == 2
        assert "no live finding" in capsys.readouterr().err

    def test_graph_out_dumps_json(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, DIRTY_CHAIN)
        monkeypatch.chdir(tmp_path)
        lint_main(["repro", "--graph-out", "graph.json"])
        capsys.readouterr()
        document = json.loads((tmp_path / "graph.json").read_text())
        assert document["version"] == 1
        assert "repro.cluster.entry.run_shard" in document["functions"]
        edges = [(e["caller"], e["callee"]) for e in document["edges"]]
        assert ("repro.cluster.entry.run_shard",
                "repro.cluster.stamp.stamp") in edges
        assert 0.0 <= document["resolution_rate"] <= 1.0

    def test_sarif_format(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, DIRTY_CHAIN)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SIM000", "SIM001", "SIM011", "SIM012",
                "SIM013"} <= rule_ids
        results = run["results"]
        assert all(r["ruleId"] == "SIM001" for r in results)
        chained = [r for r in results if "relatedLocations" in r]
        assert chained, "entry-point finding should embed its chain"
        uris = [loc["physicalLocation"]["artifactLocation"]["uri"]
                for loc in chained[0]["relatedLocations"]]
        assert "repro/cluster/stamp.py" in uris

    def test_write_baseline_refused_under_strict(self, tmp_path,
                                                 monkeypatch, capsys):
        write_tree(tmp_path, DIRTY_CHAIN)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro", "--strict", "--write-baseline"]) == 1
        assert not (tmp_path / DEFAULT_BASELINE).exists()
        assert "NOT writing baseline" in capsys.readouterr().err
        # Without --strict the same invocation records the debt.
        assert lint_main(["repro", "--write-baseline"]) == 0
        assert (tmp_path / DEFAULT_BASELINE).exists()
        capsys.readouterr()

    def test_changed_requires_git(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, DIRTY_CHAIN)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro", "--changed"]) == 2
        assert "git work tree" in capsys.readouterr().err

    def test_changed_scopes_to_neighbours(self, tmp_path, monkeypatch,
                                          capsys):
        write_tree(tmp_path, {
            "repro/sim/util.py": """
                import time


                def tick():
                    return time.time()
                """,
            "repro/sim/driver.py": """
                from repro.sim.util import tick


                def go():
                    return tick()
                """,
            "repro/sim/other.py": """
                import time


                def other():
                    return time.perf_counter()
                """,
        })
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
        subprocess.run(git + ["commit", "-q", "-m", "base"],
                       cwd=tmp_path, check=True)
        driver = tmp_path / "repro" / "sim" / "driver.py"
        driver.write_text(driver.read_text() + "\n# touched\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["repro", "--changed"]) == 1
        out = capsys.readouterr().out
        # util.py is one call edge from the changed driver.py: in scope.
        assert "repro/sim/util.py" in out
        # other.py has a finding too, but is unchanged and unconnected.
        assert "repro/sim/other.py" not in out

    def test_call_graph_resolution_rate_on_src(self):
        """Meta-invariant: >=95% of intra-repro calls resolve."""
        result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert result.project is not None
        graph = result.project.analysis().graph
        assert graph.stats["resolved"] >= 1000
        assert graph.resolution_rate >= 0.95, graph.stats
