"""Functional NAND device tests: protocol, modes, wear, accounting."""

from __future__ import annotations

import math

import pytest

from repro.flash.device import (
    EraseError,
    FlashDevice,
    PageState,
    ProgramError,
    MLC_READ_SENSITIVITY,
)
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.timing import CellMode
from repro.flash.wear import CellLifetimeModel, WearModelConfig


class TestNandProtocol:
    def test_program_then_read(self, device):
        address = PageAddress(0, 0, 0)
        device.program_page(address, b"payload")
        assert device.page_state(address) == PageState.PROGRAMMED
        result = device.read_page(address)
        assert result.raw_bit_errors == 0  # no wear model attached

    def test_erase_before_write_enforced(self, device):
        address = PageAddress(1, 2, 1)
        device.program_page(address)
        with pytest.raises(ProgramError):
            device.program_page(address)
        device.erase_block(1)
        device.program_page(address)  # fine after erase

    def test_erase_resets_whole_block(self, device):
        for frame in range(device.geometry.frames_per_block):
            device.program_page(PageAddress(2, frame, 0))
        device.erase_block(2)
        for frame in range(device.geometry.frames_per_block):
            assert device.page_state(
                PageAddress(2, frame, 0)) == PageState.ERASED

    def test_erase_counts_accumulate(self, device):
        assert device.erase_count(3) == 0
        device.erase_block(3)
        device.erase_block(3)
        assert device.erase_count(3) == 2

    def test_bad_block_index_rejected(self, device):
        with pytest.raises(EraseError):
            device.erase_block(device.geometry.num_blocks)

    def test_oversized_payload_rejected(self, device):
        with pytest.raises(ValueError):
            device.program_page(PageAddress(0, 0, 0),
                                bytes(device.geometry.page_data_bytes + 1))

    def test_data_storage_roundtrip(self, small_geometry):
        device = FlashDevice(geometry=small_geometry, store_data=True)
        address = PageAddress(0, 1, 1)
        device.program_page(address, b"persist me")
        assert device.read_page(address).data == b"persist me"
        device.erase_block(0)
        assert device.read_page(PageAddress(0, 1, 0)).data is None


class TestDensityModes:
    def test_initial_mode_applies(self, device):
        assert device.frame_mode(0, 0) is CellMode.MLC

    def test_mode_change_takes_effect_at_erase(self, device):
        device.erase_block(0, new_modes={1: CellMode.SLC})
        assert device.frame_mode(0, 1) is CellMode.SLC
        assert device.frame_mode(0, 0) is CellMode.MLC

    def test_slc_frame_has_single_subpage(self, device):
        device.erase_block(0, new_modes={0: CellMode.SLC})
        device.program_page(PageAddress(0, 0, 0))
        with pytest.raises(IndexError):
            device.read_page(PageAddress(0, 0, 1))

    def test_block_capacity_reflects_modes(self, device):
        full_mlc = device.block_capacity_pages(0)
        device.erase_block(0, new_modes={0: CellMode.SLC, 1: CellMode.SLC})
        assert device.block_capacity_pages(0) == full_mlc - 2

    def test_latencies_by_mode(self, device):
        mlc_read = device.read_page(PageAddress(0, 0, 0)).latency_us
        device.erase_block(0, new_modes={0: CellMode.SLC})
        slc_read = device.read_page(PageAddress(0, 0, 0)).latency_us
        assert mlc_read == 50.0 and slc_read == 25.0

    def test_erase_latency_set_by_slowest_mode(self, device):
        result = device.erase_block(0)
        assert result.latency_us == 3300.0  # MLC erase
        device.erase_block(0, new_modes={
            frame: CellMode.SLC
            for frame in range(device.geometry.frames_per_block)})
        assert device.erase_block(0).latency_us == 1500.0


class TestWearInjection:
    def test_no_wear_model_means_no_errors(self, device):
        device.age_block(0, 1e9)
        assert device.raw_bit_errors_at(0, 0) == 0
        assert math.isinf(device.next_error_damage(0, 0, 0))

    def test_errors_grow_with_damage(self, worn_device):
        early = worn_device.raw_bit_errors_at(0, 0)
        worn_device.age_block(0, 50_000)
        late = worn_device.raw_bit_errors_at(0, 0)
        assert early == 0
        assert late > 0

    def test_mlc_more_sensitive_than_slc(self, worn_device):
        worn_device.age_block(0, 20_000)
        mlc_errors = worn_device.raw_bit_errors_at(0, 0)
        worn_device.erase_block(0, new_modes={0: CellMode.SLC})
        slc_errors = worn_device.raw_bit_errors_at(0, 0)
        assert slc_errors <= mlc_errors
        assert worn_device.frame_read_sensitivity(0, 0) == 1.0

    def test_read_sensitivity_constant(self, worn_device):
        assert worn_device.frame_read_sensitivity(0, 1) \
            == MLC_READ_SENSITIVITY == 10.0

    def test_next_error_damage_is_monotone_in_index(self, worn_device):
        thresholds = [worn_device.next_error_damage(0, 0, i)
                      for i in range(5)]
        assert thresholds == sorted(thresholds)
        assert thresholds[0] > 0

    def test_next_error_damage_matches_observed_errors(self, worn_device):
        threshold = worn_device.next_error_damage(0, 0, 0)
        worn_device.age_block(0, threshold * MLC_READ_SENSITIVITY ** -1 * 0.99
                              * MLC_READ_SENSITIVITY)
        # Just below: no errors seen by MLC read.
        worn_device.age_block(1, 0)  # no-op keeps block 1 fresh
        errors_before = worn_device.raw_bit_errors_at(0, 0)
        worn_device.age_block(0, threshold)  # way past now
        assert worn_device.raw_bit_errors_at(0, 0) >= max(errors_before, 1)

    def test_age_block_rejects_negative(self, worn_device):
        with pytest.raises(ValueError):
            worn_device.age_block(0, -1)

    def test_deterministic_given_seed(self, small_geometry):
        def build():
            return FlashDevice(
                geometry=small_geometry,
                lifetime_model=CellLifetimeModel(WearModelConfig()),
                seed=123,
            )
        a, b = build(), build()
        a.age_block(0, 30_000)
        b.age_block(0, 30_000)
        assert a.raw_bit_errors_at(0, 0) == b.raw_bit_errors_at(0, 0)


class TestAccounting:
    def test_stats_counts_and_busy_time(self, device):
        device.program_page(PageAddress(0, 0, 0))
        device.read_page(PageAddress(0, 0, 0))
        device.erase_block(0)
        stats = device.stats
        assert (stats.reads, stats.programs, stats.erases) == (1, 1, 1)
        assert stats.busy_us == pytest.approx(
            stats.read_busy_us + stats.program_busy_us + stats.erase_busy_us)
        assert stats.busy_us == pytest.approx(50.0 + 680.0 + 3300.0)

    def test_energy_accumulates(self, device):
        before = device.stats.energy_j
        device.read_page(PageAddress(0, 0, 0))
        after = device.stats.energy_j
        assert after - before == pytest.approx(0.027 * 50e-6)

    def test_idle_energy(self, device):
        device.read_page(PageAddress(0, 0, 0))
        idle = device.stats.idle_energy(1_000_000.0, 6e-6)
        assert idle == pytest.approx(6e-6 * (1_000_000 - 50) * 1e-6)
