"""Flash array geometry tests (paper section 2.1, Figure 1(a))."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.flash.geometry import FlashGeometry, PageAddress, DEFAULT_GEOMETRY
from repro.flash.timing import CellMode


class TestPaperGeometry:
    """The published device shape: 2KB+64B pages, 64-frame blocks."""

    def test_page_sizes(self):
        assert DEFAULT_GEOMETRY.page_data_bytes == 2048
        assert DEFAULT_GEOMETRY.page_spare_bytes == 64

    def test_pages_per_block_by_mode(self):
        """Blocks of 64 SLC pages or 128 MLC pages (section 2.1)."""
        assert DEFAULT_GEOMETRY.pages_per_block(CellMode.SLC) == 64
        assert DEFAULT_GEOMETRY.pages_per_block(CellMode.MLC) == 128

    def test_block_data_bytes(self):
        assert DEFAULT_GEOMETRY.block_data_bytes(CellMode.SLC) == 128 << 10
        assert DEFAULT_GEOMETRY.block_data_bytes(CellMode.MLC) == 256 << 10

    def test_cells_per_frame(self):
        assert DEFAULT_GEOMETRY.cells_per_frame == (2048 + 64) * 8

    def test_data_cells_per_page_same_bit_count_either_mode(self):
        """Either mode stores (2048+64)*8 bits per logical page."""
        assert (DEFAULT_GEOMETRY.data_cells_per_page(CellMode.SLC)
                == DEFAULT_GEOMETRY.cells_per_frame)
        assert (DEFAULT_GEOMETRY.data_cells_per_page(CellMode.MLC)
                == DEFAULT_GEOMETRY.cells_per_frame // 2)


class TestValidation:
    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError):
            FlashGeometry(num_blocks=0)
        with pytest.raises(ValueError):
            FlashGeometry(page_data_bytes=0)

    def test_page_address_validation(self):
        with pytest.raises(ValueError):
            PageAddress(-1, 0)
        with pytest.raises(ValueError):
            PageAddress(0, 0, subpage=2)

    def test_validate_address_bounds(self):
        geometry = FlashGeometry(frames_per_block=4, num_blocks=2)
        geometry.validate_address(PageAddress(1, 3, 1), CellMode.MLC)
        with pytest.raises(IndexError):
            geometry.validate_address(PageAddress(2, 0), CellMode.MLC)
        with pytest.raises(IndexError):
            geometry.validate_address(PageAddress(0, 4), CellMode.MLC)
        with pytest.raises(IndexError):
            geometry.validate_address(PageAddress(0, 0, 1), CellMode.SLC)


class TestCapacitySizing:
    @given(capacity=st.integers(min_value=1, max_value=1 << 32))
    def test_for_capacity_is_sufficient_and_tight(self, capacity):
        geometry = FlashGeometry.for_capacity(capacity, mode=CellMode.MLC)
        block_bytes = geometry.block_data_bytes(CellMode.MLC)
        assert geometry.device_data_bytes(CellMode.MLC) >= capacity
        assert (geometry.device_data_bytes(CellMode.MLC) - capacity
                < block_bytes)

    def test_slc_capacity_needs_twice_the_blocks(self):
        mlc = FlashGeometry.for_capacity(1 << 26, mode=CellMode.MLC)
        slc = FlashGeometry.for_capacity(1 << 26, mode=CellMode.SLC)
        assert slc.num_blocks == 2 * mlc.num_blocks

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlashGeometry.for_capacity(0)
