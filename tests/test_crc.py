"""CRC-32 tests: vectors, zlib agreement, incrementality, detection."""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.ecc.crc import Crc32, crc32, crc32_bitwise


KNOWN_VECTORS = [
    (b"", 0x00000000),
    (b"123456789", 0xCBF43926),   # the classic CRC-32 check value
    (b"a", 0xE8B7BE43),
]


class TestVectors:
    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_known_vectors(self, data, expected):
        assert crc32(data) == expected

    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_bitwise_matches_vectors(self, data, expected):
        assert crc32_bitwise(data) == expected


@given(data=st.binary(max_size=512))
def test_matches_zlib(data):
    assert crc32(data) == zlib.crc32(data)


@given(data=st.binary(max_size=256))
def test_table_and_bitwise_agree(data):
    assert crc32(data) == crc32_bitwise(data)


@given(data=st.binary(min_size=1, max_size=256),
       split=st.integers(min_value=0, max_value=256))
def test_incremental_composition(data, split):
    split = min(split, len(data))
    assert crc32(data) == crc32(data[split:], crc32(data[:split]))


@given(data=st.binary(min_size=1, max_size=128),
       bit=st.integers(min_value=0, max_value=1023))
def test_single_bit_flips_always_detected(data, bit):
    """CRC-32 detects every single-bit error (minimum distance >= 2)."""
    bit %= len(data) * 8
    corrupted = bytearray(data)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    assert crc32(bytes(corrupted)) != crc32(data)


class TestCrc32Accumulator:
    def test_streaming_equals_oneshot(self):
        accumulator = Crc32()
        accumulator.update(b"hello ").update(b"world")
        assert accumulator.value == crc32(b"hello world")

    def test_digest_is_4_little_endian_bytes(self):
        digest = Crc32().update(b"123456789").digest()
        assert len(digest) == Crc32.SPARE_BYTES == 4
        assert int.from_bytes(digest, "little") == 0xCBF43926

    def test_check_accepts_good_and_rejects_bad(self):
        payload = bytes(range(64))
        digest = Crc32().update(payload).digest()
        assert Crc32.check(payload, digest)
        assert not Crc32.check(payload[:-1] + b"\xFF", digest)
