"""SLC/MLC partition optimizer tests (section 4.2, Figure 7)."""

from __future__ import annotations

import pytest

from repro.core.density import (
    DensityPartitionOptimizer,
    die_area_for_capacity_mm2,
)
from repro.flash.timing import CellMode, DEFAULT_FLASH_TIMING
from repro.workloads.synthetic import (
    ExponentialPopularity,
    UniformPopularity,
    ZipfPopularity,
)


def make_optimizer(dist=None, n=4096):
    return DensityPartitionOptimizer(dist or ZipfPopularity(n, 1.2))


class TestAreaConversion:
    def test_slc_needs_twice_mlc_area(self):
        capacity = 1 << 30
        assert die_area_for_capacity_mm2(capacity, CellMode.SLC) \
            == pytest.approx(2 * die_area_for_capacity_mm2(
                capacity, CellMode.MLC))

    def test_itrs_2007_mlc_density(self):
        # 0.0065 um^2/bit: 1GB MLC ~ 55.8 mm^2 of cells.
        assert die_area_for_capacity_mm2(1 << 30) == pytest.approx(
            (1 << 30) * 8 * 0.0065 / 1e6)


class TestPartitionCapacity:
    def test_all_mlc_doubles_all_slc(self):
        optimizer = make_optimizer()
        area = 1.0
        slc_pages, _ = optimizer.partition_capacity(area, 1.0)
        _, mlc_pages = optimizer.partition_capacity(area, 0.0)
        assert mlc_pages == pytest.approx(2 * slc_pages, abs=2)

    def test_invalid_inputs(self):
        optimizer = make_optimizer()
        with pytest.raises(ValueError):
            optimizer.partition_capacity(0.0, 0.5)
        with pytest.raises(ValueError):
            optimizer.partition_capacity(1.0, 1.5)


class TestLatency:
    def test_latency_bounded_by_extremes(self):
        optimizer = make_optimizer()
        timing = DEFAULT_FLASH_TIMING
        latency = optimizer.average_latency_us(optimizer.working_set_area_mm2,
                                               0.0)
        assert timing.slc_read_us <= latency <= 4200.0

    def test_full_slc_coverage_hits_latency_floor(self):
        optimizer = make_optimizer()
        # Twice the MLC working-set area in pure SLC covers everything.
        area = 2.0 * optimizer.working_set_area_mm2 * 1.01
        assert optimizer.average_latency_us(area, 1.0) == pytest.approx(
            DEFAULT_FLASH_TIMING.slc_read_us, rel=0.01)

    def test_more_area_never_hurts(self):
        optimizer = make_optimizer()
        full = optimizer.working_set_area_mm2
        latencies = [optimizer.optimize(full * f, grid_points=21)
                     .average_latency_us
                     for f in (0.1, 0.3, 0.6, 1.0, 2.0)]
        assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))


class TestOptimalPartition:
    def test_short_tail_prefers_slc(self):
        """Figure 7(a): concentrated popularity -> large SLC share."""
        short_tail = DensityPartitionOptimizer(
            ExponentialPopularity(4096, lam=0.01))
        point = short_tail.optimize(short_tail.working_set_area_mm2 * 0.5)
        assert point.optimal_slc_fraction >= 0.5

    def test_capacity_bound_workload_prefers_mlc(self):
        """Figure 7(b): flat popularity at half the working set -> MLC."""
        flat = DensityPartitionOptimizer(UniformPopularity(4096))
        point = flat.optimize(flat.working_set_area_mm2 * 0.5)
        assert point.optimal_slc_fraction <= 0.1

    def test_full_working_set_snaps_to_slc(self):
        """Once the die covers the working set in SLC, all-SLC is optimal."""
        optimizer = make_optimizer(n=1024)
        area = 2.0 * optimizer.working_set_area_mm2 * 1.05
        point = optimizer.optimize(area)
        assert point.average_latency_us == pytest.approx(
            DEFAULT_FLASH_TIMING.slc_read_us, rel=0.02)

    def test_figure_7_series_shape(self):
        optimizer = make_optimizer(n=2048)
        full = optimizer.working_set_area_mm2
        series = optimizer.figure_7_series(
            [full * f for f in (0.25, 0.5, 1.0)], grid_points=21)
        assert len(series) == 3
        latencies = [p.average_latency_us for p in series]
        assert latencies == sorted(latencies, reverse=True)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            make_optimizer().optimize(1.0, grid_points=1)
