"""Resilience layer tests: journal, retry policy, crash/timeout recovery.

Covers DESIGN.md section 12's contracts:

* the journal round-trips arbitrary values and survives torn tails;
* ``resume`` replays completed tasks (zero re-execution) and the
  aggregated output is byte-identical to an uninterrupted run — including
  after a parent SIGKILL mid-sweep (subprocess chaos test);
* worker crashes are confined to the culprit task, transient crashes
  and changing exceptions consume the retry budget, hung tasks die to
  the deadline, and deterministic failures fail fast;
* backoff delays are pure functions of (seed, key, attempt).

Chaos is injected with :mod:`repro.parallel.chaos` — filesystem attempt
markers, never RNG or wall-clock races.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.parallel import (
    RetryPolicy,
    SweepError,
    SweepJournal,
    SweepResult,
    SweepTask,
    TaskFailure,
    compute_sweep_id,
    kwargs_hash,
    merge_telemetry,
    sweep,
)
from repro.parallel import chaos
from repro.parallel.checkpoint import JOURNAL_FORMAT
from repro.experiments.report import ReportScale
from repro.experiments.sweeps import run_sweep

REPO_ROOT = Path(__file__).resolve().parents[1]


def echo_tasks(n: int, state_dir: str) -> list[SweepTask]:
    return [SweepTask(key=f"t{i}", fn=chaos.echo,
                      kwargs={"value": i * 10, "state_dir": state_dir,
                              "key": f"t{i}"})
            for i in range(n)]


def attempts_of(state_dir: str, key: str) -> int:
    return len(list(Path(state_dir).glob(f"{key}.attempt*")))


# ---------------------------------------------------------------------------
# Journal mechanics
# ---------------------------------------------------------------------------


class TestJournal:
    def test_round_trip_preserves_values_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tasks = [SweepTask(key="a", fn=chaos.echo, kwargs={"value": 1},
                           seed=7),
                 SweepTask(key="b", fn=chaos.echo,
                           kwargs={"value": (1, 2.5, {"x": [None]})})]
        journal = SweepJournal.create(path, "sid")
        journal.record(tasks[0], SweepResult(key="a", value=1))
        journal.record(tasks[1],
                       SweepResult(key="b", value=(1, 2.5, {"x": [None]}),
                                   attempts=3))
        loaded = SweepJournal.load(path)
        assert loaded.sweep_id == "sid"
        assert loaded.corrupt_tail == 0
        done = loaded.completed()
        assert done[("a", kwargs_hash(tasks[0]))].value == 1
        replay = done[("b", kwargs_hash(tasks[1]))]
        assert replay.value == (1, 2.5, {"x": [None]})
        assert replay.attempts == 3

    def test_failed_entries_are_not_replayed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        task = SweepTask(key="a", fn=chaos.fail_always)
        journal = SweepJournal.create(path, "sid")
        journal.record(task, SweepResult(key="a", value=None,
                                         error="Boom", attempts=2))
        assert SweepJournal.load(path).completed() == {}

    def test_kwargs_hash_covers_fn_kwargs_and_seed(self):
        base = SweepTask(key="a", fn=chaos.echo, kwargs={"value": 1}, seed=1)
        assert kwargs_hash(base) == kwargs_hash(
            SweepTask(key="other", fn=chaos.echo, kwargs={"value": 1},
                      seed=1))  # key not part of the value identity
        assert kwargs_hash(base) != kwargs_hash(
            SweepTask(key="a", fn=chaos.echo, kwargs={"value": 2}, seed=1))
        assert kwargs_hash(base) != kwargs_hash(
            SweepTask(key="a", fn=chaos.echo, kwargs={"value": 1}, seed=2))
        assert kwargs_hash(base) != kwargs_hash(
            SweepTask(key="a", fn=chaos.slow_echo, kwargs={"value": 1},
                      seed=1))

    def test_sweep_id_is_order_and_label_sensitive(self):
        a = SweepTask(key="a", fn=chaos.echo, kwargs={"value": 1})
        b = SweepTask(key="b", fn=chaos.echo, kwargs={"value": 2})
        assert compute_sweep_id([a, b]) == compute_sweep_id([a, b])
        assert compute_sweep_id([a, b]) != compute_sweep_id([b, a])
        assert compute_sweep_id([a, b]) != compute_sweep_id([a, b],
                                                           label="full")

    def test_resume_rejects_foreign_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepJournal.create(path, "sid-one")
        with pytest.raises(ValueError, match="records sweep sid-one"):
            SweepJournal.resume(path, "sid-two")
        with pytest.raises(FileNotFoundError):
            SweepJournal.resume(tmp_path / "missing.jsonl", "sid")

    def test_load_rejects_non_journal_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            SweepJournal.load(empty)
        other = tmp_path / "other.json"
        other.write_text('{"format": "something-else"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match=JOURNAL_FORMAT):
            SweepJournal.load(other)

    def test_torn_tail_is_dropped_and_healed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tasks = [SweepTask(key=k, fn=chaos.echo, kwargs={"value": i})
                 for i, k in enumerate("abc")]
        journal = SweepJournal.create(path, "sid")
        for i, task in enumerate(tasks):
            journal.record(task, SweepResult(key=task.key, value=i))
        chaos.truncate_journal_tail(path, drop_bytes=5)  # tear the last line

        torn = SweepJournal.load(path)
        assert torn.corrupt_tail == 1
        assert sorted(k for k, _ in torn.completed()) == ["a", "b"]

        # The first append after a torn load atomically rewrites the file:
        # reloading sees a clean journal with the new record appended.
        torn.record(tasks[2], SweepResult(key="c", value=99))
        healed = SweepJournal.load(path)
        assert healed.corrupt_tail == 0
        assert healed.completed()[("c", kwargs_hash(tasks[2]))].value == 99


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(retries=5, backoff_base_s=0.1,
                             backoff_cap_s=10.0, seed=42)
        first = [policy.backoff_s("k", attempt) for attempt in (1, 2, 3)]
        again = [policy.backoff_s("k", attempt) for attempt in (1, 2, 3)]
        assert first == again  # pure function of (seed, key, attempt)
        assert first != [RetryPolicy(retries=5, backoff_base_s=0.1,
                                     backoff_cap_s=10.0, seed=43
                                     ).backoff_s("k", a) for a in (1, 2, 3)]
        for attempt, delay in enumerate(first, start=1):
            nominal = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_backoff_respects_cap(self):
        policy = RetryPolicy(retries=10, backoff_base_s=1.0,
                             backoff_cap_s=2.0, seed=0)
        assert policy.backoff_s("k", 9) <= 2.0 * 1.5

    def test_transient_failures_get_the_full_budget(self):
        policy = RetryPolicy(retries=2)
        lost = TaskFailure(kind="worker-lost", detail="died", attempt=1)
        assert policy.should_retry(lost, previous=None)
        assert policy.should_retry(
            TaskFailure(kind="timeout", detail="hung", attempt=2),
            previous=lost)
        assert not policy.should_retry(
            TaskFailure(kind="timeout", detail="hung", attempt=3),
            previous=lost)

    def test_repeated_exception_signature_fails_fast(self):
        policy = RetryPolicy(retries=5)
        first = TaskFailure(kind="exception",
                            detail="Traceback...\nValueError: boom",
                            attempt=1)
        repeat = TaskFailure(kind="exception",
                             detail="Traceback...\nValueError: boom",
                             attempt=2)
        changed = TaskFailure(kind="exception",
                              detail="Traceback...\nOSError: flaky",
                              attempt=2)
        assert policy.should_retry(first, previous=None)
        assert not policy.should_retry(repeat, previous=first)
        assert policy.should_retry(changed, previous=first)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)


# ---------------------------------------------------------------------------
# Journaled sweep(): resume semantics
# ---------------------------------------------------------------------------


class TestSweepResume:
    def test_resume_skips_completed_tasks(self, tmp_path):
        state = str(tmp_path / "state")
        path = tmp_path / "j.jsonl"
        tasks = echo_tasks(4, state)

        sid = compute_sweep_id(tasks)
        fresh = sweep(tasks, journal=SweepJournal.create(path, sid))
        assert [r.value for r in fresh] == [0, 10, 20, 30]
        assert all(attempts_of(state, f"t{i}") == 1 for i in range(4))

        resumed = sweep(tasks, journal=SweepJournal.resume(path, sid))
        assert [r.value for r in resumed] == [r.value for r in fresh]
        # Zero re-execution: the attempt markers did not grow.
        assert all(attempts_of(state, f"t{i}") == 1 for i in range(4))

    def test_partial_journal_runs_only_the_rest(self, tmp_path):
        state = str(tmp_path / "state")
        path = tmp_path / "j.jsonl"
        tasks = echo_tasks(4, state)
        sid = compute_sweep_id(tasks)

        journal = SweepJournal.create(path, sid)
        sweep(tasks[:2], journal=journal)  # "interrupted" after two tasks

        resumed = sweep(tasks, journal=SweepJournal.resume(path, sid))
        assert [r.value for r in resumed] == [0, 10, 20, 30]
        assert attempts_of(state, "t0") == 1
        assert attempts_of(state, "t3") == 1

    def test_failed_journal_entries_are_retried_on_resume(self, tmp_path):
        state = str(tmp_path / "state")
        path = tmp_path / "j.jsonl"
        task = SweepTask(key="flaky", fn=chaos.echo,
                         kwargs={"value": 5, "state_dir": state,
                                 "key": "flaky"})
        sid = compute_sweep_id([task])
        journal = SweepJournal.create(path, sid)
        journal.record(task, SweepResult(key="flaky", value=None,
                                         error="boom", attempts=1))

        resumed = sweep([task], journal=SweepJournal.resume(path, sid))
        assert resumed[0].ok and resumed[0].value == 5
        assert attempts_of(state, "flaky") == 1  # actually re-ran

    def test_stale_journal_entry_is_ignored(self, tmp_path):
        # Same key, different kwargs: the kwargs_hash mismatch forces a
        # re-run instead of replaying the stale value.
        state = str(tmp_path / "state")
        path = tmp_path / "j.jsonl"
        old = SweepTask(key="t", fn=chaos.echo, kwargs={"value": 1})
        new = SweepTask(key="t", fn=chaos.echo,
                        kwargs={"value": 2, "state_dir": state, "key": "t"})
        journal = SweepJournal.create(path, "sid")
        journal.record(old, SweepResult(key="t", value=1))
        results = sweep([new], journal=journal)
        assert results[0].value == 2
        assert attempts_of(state, "t") == 1


# ---------------------------------------------------------------------------
# Crash, hang, and retry recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_worker_sigkill_confined_to_culprit(self, tmp_path):
        state = str(tmp_path / "state")
        tasks = echo_tasks(3, state)
        tasks.insert(1, SweepTask(key="killer", fn=chaos.kill_worker))
        results = sweep(tasks, workers=2)
        by_key = {r.key: r for r in results}
        assert not by_key["killer"].ok
        assert "died" in by_key["killer"].error
        for i in range(3):
            assert by_key[f"t{i}"].ok and by_key[f"t{i}"].value == i * 10

    def test_transient_crash_absorbed_by_retry_budget(self, tmp_path):
        state = str(tmp_path / "state")
        task = SweepTask(key="flaky", fn=chaos.crash_until_attempt,
                         kwargs={"state_dir": state, "key": "flaky",
                                 "succeed_at": 2, "value": 7})
        results = sweep([task] + echo_tasks(2, state), workers=2,
                        policy=RetryPolicy(retries=2, backoff_base_s=0.01))
        by_key = {r.key: r for r in results}
        assert by_key["flaky"].ok and by_key["flaky"].value == 7
        # The task genuinely ran twice (first execution SIGKILLed its
        # worker); the *charged* attempt count may be lower because a
        # crash suspect's isolated rerun is un-charged until it is
        # convicted by crashing again — and this one succeeded.
        assert attempts_of(state, "flaky") == 2
        assert 1 <= by_key["flaky"].attempts <= 2

    def test_hang_dies_to_deadline_innocents_survive(self, tmp_path):
        state = str(tmp_path / "state")
        tasks = [SweepTask(key="stuck", fn=chaos.hang,
                           kwargs={"hang_s": 60.0})] + echo_tasks(2, state)
        started = time.monotonic()
        results = sweep(tasks, workers=2,
                        policy=RetryPolicy(timeout_s=0.5))
        elapsed = time.monotonic() - started
        assert elapsed < 30.0  # nowhere near the 60s hang
        by_key = {r.key: r for r in results}
        assert not by_key["stuck"].ok
        assert "deadline" in by_key["stuck"].error
        assert by_key["t0"].ok and by_key["t1"].ok

    def test_deterministic_failure_fails_fast(self, tmp_path):
        state = str(tmp_path / "state")
        task = SweepTask(key="bad", fn=chaos.fail_always,
                         kwargs={"state_dir": state, "key": "bad"})
        results = sweep([task],
                        policy=RetryPolicy(retries=5, backoff_base_s=0.01))
        assert not results[0].ok
        # One retry proves the failure repeats; the remaining budget is
        # not burned on a deterministic exception.
        assert results[0].attempts == 2
        assert attempts_of(state, "bad") == 2

    def test_changing_exception_is_treated_as_transient(self, tmp_path):
        state = str(tmp_path / "state")
        task = SweepTask(key="flaky", fn=chaos.fail_until_attempt,
                         kwargs={"state_dir": state, "key": "flaky",
                                 "succeed_at": 3, "value": 1})
        results = sweep([task],
                        policy=RetryPolicy(retries=3, backoff_base_s=0.01))
        assert results[0].ok and results[0].value == 1
        assert results[0].attempts == 3

    def test_crash_results_reach_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tasks = [SweepTask(key="killer", fn=chaos.kill_worker)]
        sid = compute_sweep_id(tasks)
        sweep(tasks, workers=2, journal=SweepJournal.create(path, sid))
        loaded = SweepJournal.load(path)
        assert loaded.entries[0]["status"] == "error"
        assert loaded.completed() == {}  # failures re-run on resume


class TestSweepErrorReporting:
    def test_unwrap_carries_key_attempts_and_traceback(self, tmp_path):
        state = str(tmp_path / "state")
        task = SweepTask(key="bad", fn=chaos.fail_always,
                         kwargs={"state_dir": state, "key": "bad",
                                 "message": "wired to fail"})
        result = sweep([task], policy=RetryPolicy(retries=1))[0]
        with pytest.raises(SweepError) as excinfo:
            result.unwrap()
        error = excinfo.value
        assert error.key == "bad"
        assert error.attempts == 2
        assert "wired to fail" in error.worker_traceback
        assert "after 2 attempts" in str(error)


# ---------------------------------------------------------------------------
# merge_telemetry edge cases (satellite: zero/single/mixed handles)
# ---------------------------------------------------------------------------


class TestMergeTelemetryEdges:
    def test_zero_handles(self):
        assert merge_telemetry([]) is None
        assert merge_telemetry([None]) is None
        assert merge_telemetry(iter(())) is None

    def test_single_handle_round_trips(self):
        from repro.telemetry import Telemetry

        handle = Telemetry(sample_interval=10)
        handle.metrics.counter("hits").inc(3)
        merged = merge_telemetry([handle])
        assert merged is not None
        assert merged.metrics.counters["hits"].value == 3

    def test_mixed_none_failed_and_ok_results(self):
        from repro.telemetry import Telemetry

        ok_handle = Telemetry(sample_interval=10)
        ok_handle.metrics.counter("hits").inc(2)
        items = [
            None,
            SweepResult(key="no-telemetry", value=None),
            SweepResult(key="failed", value=None, error="boom"),
            SweepResult(key="observed", value=ok_handle),
        ]
        merged = merge_telemetry(items)
        assert merged is not None
        assert merged.metrics.counters["hits"].value == 2

    def test_all_failed_results_yield_none(self):
        items = [SweepResult(key=f"f{i}", value=None, error="boom")
                 for i in range(3)]
        assert merge_telemetry(items) is None


# ---------------------------------------------------------------------------
# run_sweep end-to-end: resumed == fresh, at any worker count
# ---------------------------------------------------------------------------


def _figures_bytes(document: dict) -> str:
    return json.dumps(document["figures"], sort_keys=True)


class TestRunSweepResume:
    FIGS = ["fig1b"]
    SCALE = ReportScale.quick()

    def test_resumed_document_is_byte_identical(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        plain = run_sweep(figures=self.FIGS, scale=self.SCALE)
        journaled = run_sweep(figures=self.FIGS, scale=self.SCALE,
                              journal_path=path)
        resumed = run_sweep(figures=self.FIGS, scale=self.SCALE,
                            journal_path=path, resume=True)
        assert _figures_bytes(plain) == _figures_bytes(journaled)
        assert _figures_bytes(plain) == _figures_bytes(resumed)
        assert resumed["meta"]["resumed_tasks"] == resumed["meta"]["tasks"]
        assert resumed["meta"]["sweep_id"] == journaled["meta"]["sweep_id"]

    def test_resume_is_worker_count_invariant(self, tmp_path):
        # PR 3's invariance contract extends to resumption: replaying a
        # serial run's journal under a pool changes nothing.
        path = str(tmp_path / "sweep.jsonl")
        serial = run_sweep(figures=self.FIGS, scale=self.SCALE, workers=1,
                           journal_path=path)
        pooled = run_sweep(figures=self.FIGS, scale=self.SCALE, workers=4,
                           journal_path=path, resume=True)
        assert _figures_bytes(serial) == _figures_bytes(pooled)

    def test_resume_requires_matching_scale(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(figures=self.FIGS, scale=self.SCALE, journal_path=path)
        with pytest.raises(ValueError, match="records sweep"):
            run_sweep(figures=self.FIGS, scale=ReportScale(),
                      journal_path=path, resume=True)

    def test_resume_without_journal_path_rejected(self):
        with pytest.raises(ValueError, match="requires a journal path"):
            run_sweep(figures=self.FIGS, scale=self.SCALE, resume=True)

    def test_figure_selection_is_order_insensitive(self, tmp_path):
        # ISSUE 8 satellite: ``--figures fig7,fig1b --resume`` must
        # accept a journal written by ``--figures fig1b,fig7``.  The
        # selection is a set; spelling order must not change the
        # sweep_id, the flattened grid, or the output document.
        path = str(tmp_path / "sweep.jsonl")
        forward = run_sweep(figures=["fig1b", "fig7"], scale=self.SCALE,
                            journal_path=path)
        resumed = run_sweep(figures=["fig7", "fig1b"], scale=self.SCALE,
                            journal_path=path, resume=True)
        assert resumed["meta"]["sweep_id"] == forward["meta"]["sweep_id"]
        assert resumed["meta"]["resumed_tasks"] == \
            resumed["meta"]["tasks"]
        assert _figures_bytes(forward) == _figures_bytes(resumed)

    def test_duplicate_figures_are_deduplicated(self):
        # A repeated name used to flatten the same grid twice and die on
        # the runner's duplicate-key check; now it is one selection.
        once = run_sweep(figures=["fig1b"], scale=self.SCALE)
        doubled = run_sweep(figures=["fig1b", "fig1b"], scale=self.SCALE)
        assert _figures_bytes(once) == _figures_bytes(doubled)
        assert doubled["meta"]["tasks"] == once["meta"]["tasks"]


# ---------------------------------------------------------------------------
# Parent SIGKILL chaos: kill ``repro sweep`` mid-run, resume via the CLI
# ---------------------------------------------------------------------------


class TestParentKillChaos:
    ARGS = ["--figures", "fig1b", "--scale", "quick", "--workers", "2",
            "--quiet"]

    def _cli(self, *extra: str) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", *self.ARGS, *extra],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        reference = tmp_path / "reference.json"
        resumed = tmp_path / "resumed.json"
        journal = tmp_path / "journal.jsonl"

        proc = self._cli("--out", str(reference))
        assert proc.wait(timeout=300) == 0

        # Interrupted run: SIGKILL the whole process once the journal
        # shows at least one completed task (header + >=1 entry).
        proc = self._cli("--journal", str(journal), "--out", "/dev/null")
        deadline = time.monotonic() + 300
        try:
            while time.monotonic() < deadline:
                if journal.exists() and len(
                        journal.read_text().splitlines()) >= 2:
                    break
                if proc.poll() is not None:  # finished before we killed it
                    break
                time.sleep(0.02)
            else:
                pytest.fail("journal never accumulated a completed task")
        finally:
            proc.kill()
            proc.wait(timeout=60)

        proc = self._cli("--resume", str(journal), "--out", str(resumed))
        assert proc.wait(timeout=300) == 0

        ref = json.loads(reference.read_text())
        res = json.loads(resumed.read_text())
        assert _figures_bytes(ref) == _figures_bytes(res)
