"""Flash disk cache tests: hits/misses, out-of-place writes, GC,
eviction, the read/write split, wear-leveling (sections 3.5, 3.6, 5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import FlashCacheConfig, Region
from repro.flash.timing import CellMode

from .conftest import make_cache


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCacheConfig(read_fraction=0.0)
        with pytest.raises(ValueError):
            FlashCacheConfig(gc_read_watermark=0.0)
        with pytest.raises(ValueError):
            FlashCacheConfig(wear_threshold=0.0)

    def test_minimum_block_count(self):
        with pytest.raises(ValueError):
            make_cache(num_blocks=3)


class TestBasicCaching:
    def test_miss_then_fill_then_hit(self, split_cache):
        assert split_cache.read(7) is None
        split_cache.insert_clean(7)
        outcome = split_cache.read(7)
        assert outcome is not None and outcome.recovered
        assert split_cache.stats.read_hits == 1
        assert split_cache.stats.read_misses == 1

    def test_write_then_read_hits_write_region(self, split_cache):
        split_cache.write(9)
        assert split_cache.contains(9)
        assert split_cache.read(9).recovered
        assert split_cache.is_dirty(9)

    def test_rewrite_is_out_of_place(self, split_cache):
        split_cache.write(5)
        first = split_cache.fcht.lookup(5)
        split_cache.write(5)
        second = split_cache.fcht.lookup(5)
        assert first != second
        assert split_cache.stats.invalidations == 1

    def test_write_invalidates_read_copy(self, split_cache):
        split_cache.insert_clean(3)
        read_address = split_cache.fcht.lookup(3)
        split_cache.write(3)
        assert split_cache.fcht.lookup(3) != read_address
        entry = split_cache.controller.fpst.entry(read_address)
        assert not entry.valid

    def test_miss_rate_accounting(self, split_cache):
        for lba in range(4):
            split_cache.read(lba)
            split_cache.insert_clean(lba)
        for lba in range(4):
            split_cache.read(lba)
        assert split_cache.stats.read_miss_rate == pytest.approx(0.5)

    def test_flush_cleans_dirty_pages(self, split_cache):
        for lba in range(5):
            split_cache.write(lba)
        flushed = split_cache.flush()
        assert sorted(flushed) == list(range(5))
        assert split_cache.flush() == []  # idempotent
        for lba in range(5):
            assert not split_cache.is_dirty(lba)
            assert split_cache.contains(lba)  # stays cached


class TestCapacityAndEviction:
    def test_read_region_eviction_on_pressure(self):
        cache = make_cache(num_blocks=8)
        capacity = cache.total_pages()
        for lba in range(capacity * 2):
            cache.read(lba)
            cache.insert_clean(lba)
        assert cache.stats.read_evictions > 0
        # Evicted pages must no longer be addressable.
        live = sum(1 for lba in range(capacity * 2) if cache.contains(lba))
        assert live <= capacity

    def test_write_eviction_flushes_dirty(self):
        cache = make_cache(num_blocks=8)
        flushed = []
        for lba in range(cache.total_pages()):
            flushed.extend(cache.write(lba).flushed_lbas)
        assert flushed, "write-region overflow must flush dirty pages"
        for lba in flushed:
            assert not cache.contains(lba)

    def test_clean_write_pages_evict_without_flush(self):
        cache = make_cache(num_blocks=8)
        region_pages = 0
        lba = 0
        # Fill the write region, then flush so everything is clean.
        while cache.stats.write_evictions == 0:
            cache.write(lba)
            lba += 1
        cache.flush()
        first_flushes = cache.stats.flushed_pages
        # Keep writing *new* pages: evictions recycle clean blocks.
        start = lba
        while cache.stats.write_evictions < 4:
            outcome = cache.write(lba)
            assert outcome.flushed_lbas == () or all(
                key >= start for key in outcome.flushed_lbas)
            lba += 1

    def test_unified_keeps_everything_in_one_region(self, unified_cache):
        unified_cache.insert_clean(1)
        unified_cache.write(2)
        assert unified_cache._read is unified_cache._write

    def test_gc_reclaims_invalid_space(self):
        # A 50/50 split gives the write region 8 blocks (one of them the
        # GC reserve) so compaction, not eviction, serves the rewrites.
        cache = make_cache(num_blocks=16, read_fraction=0.5)
        hot = list(range(16))
        for round_index in range(40):
            for lba in hot:
                cache.write(lba)
        assert cache.stats.gc_runs > 0
        # All hot pages still present despite heavy rewriting.
        for lba in hot:
            assert cache.contains(lba)

    def test_gc_budget_limits_moves(self):
        def churn(budget):
            cache = make_cache(num_blocks=16, read_fraction=0.5,
                               gc_move_budget=budget)
            # Interleave hot rewrites with cold one-shot writes so every
            # block ends up part-valid, making GC pay per-victim moves.
            hot = cache.total_pages() // 8
            for i in range(cache.total_pages() * 4):
                cache.write(i % hot if i % 2 == 0 else 10_000 + i)
            return cache.stats
        unlimited = churn(None)
        limited = churn(0.05)
        assert limited.gc_page_moves < unlimited.gc_page_moves
        # The shortfall shows up as extra evictions instead.
        assert limited.write_evictions > unlimited.write_evictions

    def test_ssd_mode_forbids_eviction(self):
        cache = make_cache(num_blocks=8, split=False,
                           allow_eviction_for_space=False)
        footprint = int(cache.total_pages() * 0.5)
        for lba in range(footprint):
            cache.write(lba)
        for round_index in range(3):
            for lba in range(footprint):
                cache.write(lba)
        assert cache.stats.read_evictions == 0
        assert cache.stats.write_evictions == 0
        assert cache.stats.gc_runs > 0

    def test_ssd_mode_raises_when_truly_full(self):
        cache = make_cache(num_blocks=4, split=False,
                           allow_eviction_for_space=False)
        with pytest.raises(RuntimeError):
            for lba in range(cache.total_pages() + 64):
                cache.write(lba)


class TestSplitStructure:
    def test_regions_partition_blocks(self, split_cache):
        read_blocks = split_cache._all_region_blocks(split_cache._read)
        write_blocks = split_cache._all_region_blocks(split_cache._write)
        assert not set(read_blocks) & set(write_blocks)
        total = split_cache.controller.device.geometry.num_blocks
        assert len(read_blocks) + len(write_blocks) == total

    def test_read_fraction_respected(self):
        cache = make_cache(num_blocks=20, read_fraction=0.9)
        read_blocks = cache._all_region_blocks(cache._read)
        assert len(read_blocks) == 18

    def test_write_region_slc_formats_blocks(self):
        cache = make_cache(num_blocks=8, write_region_slc=True)
        cache.write(1)
        region = cache._write
        block = region.open_block
        mode = cache.controller.device.frame_mode(block, 0)
        assert mode is CellMode.SLC

    def test_used_fraction_bounded(self):
        cache = make_cache(num_blocks=8)
        for lba in range(cache.total_pages() * 2):
            cache.read(lba)
            cache.insert_clean(lba)
            if lba % 3 == 0:
                cache.write(lba)
        assert 0.0 <= cache.used_fraction() <= 1.0


class TestWearLeveling:
    def test_wear_swap_triggers_on_gap(self):
        cache = make_cache(num_blocks=8, wear_threshold=5.0)
        controller = cache.controller
        # Manufacture a wear gap on the first *allocatable* read-region
        # block (block 0 became the region's GC reserve at construction
        # and is never an eviction victim).
        victim_block = cache._read.free_blocks[0]
        controller.fbst.entry(victim_block).erase_count = 1000
        capacity = cache.total_pages()
        for lba in range(capacity * 2):
            cache.read(lba)
            cache.insert_clean(lba)
        assert cache.stats.wear_swaps > 0

    def test_no_swap_below_threshold(self):
        cache = make_cache(num_blocks=8, wear_threshold=1e9)
        for lba in range(cache.total_pages() * 2):
            cache.read(lba)
            cache.insert_clean(lba)
        assert cache.stats.wear_swaps == 0


class TestInvariants:
    """Structural invariants that must hold after any operation mix."""

    def check(self, cache):
        # Every FCHT mapping points at a valid FPST entry with that lba.
        for lba, address in cache.fcht.items():
            entry = cache.controller.fpst.get(address)
            assert entry is not None and entry.valid
            assert entry.lba == lba
        # Valid sets and FCHT agree on total count.
        total_valid = sum(len(pages) for region in cache._regions()
                          for pages in region.valid.values())
        assert total_valid == len(cache.fcht)
        # Valid capacity never exceeds physical capacity.
        assert cache.valid_pages() <= cache.total_pages()

    @settings(max_examples=20, deadline=None)
    @given(operations=st.lists(
        st.tuples(st.sampled_from(["read", "write", "fill", "flush"]),
                  st.integers(min_value=0, max_value=300)),
        min_size=1, max_size=300))
    def test_property_invariants_hold(self, operations):
        cache = make_cache(num_blocks=8)
        for op, lba in operations:
            if op == "read":
                outcome = cache.read(lba)
                if outcome is None:
                    cache.insert_clean(lba)
            elif op == "write":
                cache.write(lba)
            elif op == "fill":
                if not cache.contains(lba):
                    cache.insert_clean(lba)
            else:
                cache.flush()
        self.check(cache)

    @settings(max_examples=10, deadline=None)
    @given(lbas=st.lists(st.integers(min_value=0, max_value=50),
                         min_size=1, max_size=200))
    def test_property_last_write_wins(self, lbas):
        """After any write sequence, each lba maps to exactly one page."""
        cache = make_cache(num_blocks=8)
        for lba in lbas:
            cache.write(lba)
        seen = {}
        for lba, address in cache.fcht.items():
            assert address not in seen.values()
            seen[lba] = address
