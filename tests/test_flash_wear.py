"""Wear/lifetime model tests (paper section 4.1.3, Figure 6(b))."""

from __future__ import annotations

import math
from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.timing import CellMode
from repro.flash.wear import (
    CellLifetimeModel,
    PageFailureSampler,
    WearModelConfig,
    damage_per_cycle,
    mlc_damage_factor,
)


class TestConfig:
    def test_defaults_follow_paper(self):
        config = WearModelConfig()
        assert config.spec_cycles == 100_000.0
        assert config.stdev_frac == 0.05  # 3 sigma = 15% of mean
        assert config.cells_per_page == (2048 + 64) * 8

    def test_first_failure_anchor_probability(self):
        config = WearModelConfig()
        assert config.effective_spec_fail_prob == pytest.approx(
            1.0 / 16_897)
        # consistent with the paper's "of the order of 1e-4"
        assert 1e-5 < config.effective_spec_fail_prob < 1e-3

    def test_explicit_fail_prob_honoured(self):
        config = WearModelConfig(spec_fail_prob=1e-4)
        assert config.effective_spec_fail_prob == 1e-4

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            WearModelConfig(spec_cycles=0)
        with pytest.raises(ValueError):
            WearModelConfig(stdev_frac=-0.1)
        with pytest.raises(ValueError):
            WearModelConfig(stdev_frac=0.5)  # calibration impossible
        with pytest.raises(ValueError):
            WearModelConfig(spec_fail_prob=0.9)


class TestCellLifetimeModel:
    def test_calibration_pins_first_failure_at_spec(self):
        """Paper: "first point of failure to occur at 100,000 W/E cycles"."""
        for frac in (0.05, 0.10, 0.20):
            model = CellLifetimeModel(WearModelConfig(stdev_frac=frac))
            assert model.max_tolerable_cycles(0) == pytest.approx(
                100_000.0, rel=1e-6)

    def test_degenerate_zero_variation(self):
        model = CellLifetimeModel(WearModelConfig(stdev_frac=0.0))
        assert model.sigma_log10 == 0.0
        assert model.cell_failure_probability(99_999) == 0.0
        assert model.cell_failure_probability(100_000) == 1.0
        # ECC cannot help when every cell dies simultaneously.
        assert model.max_tolerable_cycles(10) == pytest.approx(100_000.0)

    def test_failure_probability_monotone(self):
        model = CellLifetimeModel()
        cycles = [1e4, 5e4, 1e5, 2e5, 1e6]
        probabilities = [model.cell_failure_probability(c) for c in cycles]
        assert probabilities == sorted(probabilities)
        assert model.cell_failure_probability(0) == 0.0

    def test_quantile_inverts_probability(self):
        model = CellLifetimeModel()
        for quantile in (0.01, 0.5, 0.99):
            cycles = model.cycles_at_failure_quantile(quantile)
            assert model.cell_failure_probability(cycles) == pytest.approx(
                quantile, rel=1e-9)
        with pytest.raises(ValueError):
            model.cycles_at_failure_quantile(1.5)

    def test_expected_failed_cells_scales(self):
        model = CellLifetimeModel()
        assert model.expected_failed_cells(2e5, 1000) == pytest.approx(
            1000 * model.cell_failure_probability(2e5))

    @given(t=st.integers(min_value=0, max_value=11))
    def test_tolerable_cycles_monotone_in_t(self, t):
        model = CellLifetimeModel()
        assert (model.max_tolerable_cycles(t + 1)
                >= model.max_tolerable_cycles(t))

    def test_tolerable_cycles_rejects_negative_t(self):
        with pytest.raises(ValueError):
            CellLifetimeModel().max_tolerable_cycles(-1)


class TestFigure6b:
    def test_series_covers_paper_sweep(self):
        series = CellLifetimeModel.figure_6b_series()
        assert set(series) == {0.0, 0.05, 0.10, 0.20}
        for points in series.values():
            assert [t for t, _ in points] == list(range(0, 11))

    def test_all_curves_anchor_at_spec(self):
        series = CellLifetimeModel.figure_6b_series()
        for points in series.values():
            assert points[0][1] == pytest.approx(100_000.0, rel=1e-6)

    def test_larger_variation_steeper_gains(self):
        """Figure 6(b): more oxide spread -> ECC harvests more headroom."""
        series = CellLifetimeModel.figure_6b_series()
        gain = {frac: points[-1][1] / points[0][1]
                for frac, points in series.items()}
        assert gain[0.0] == pytest.approx(1.0)
        assert gain[0.0] < gain[0.05] < gain[0.10] < gain[0.20]

    def test_diminishing_returns(self):
        """The paper notes diminishing return from increasing ECC strength
        (in log-lifetime terms)."""
        model = CellLifetimeModel(WearModelConfig(stdev_frac=0.10))
        log_gains = []
        for t in range(0, 10):
            log_gains.append(
                math.log10(model.max_tolerable_cycles(t + 1))
                - math.log10(model.max_tolerable_cycles(t)))
        assert all(b <= a + 1e-12 for a, b in zip(log_gains, log_gains[1:]))


class TestDamageUnits:
    def test_mlc_damage_factor_is_endurance_ratio(self):
        assert mlc_damage_factor() == pytest.approx(10.0)

    def test_damage_per_cycle(self):
        assert damage_per_cycle(CellMode.SLC) == 1.0
        assert damage_per_cycle(CellMode.MLC) == pytest.approx(10.0)


class TestPageFailureSampler:
    def _sampler(self, seed=5, n_cells=16_896):
        return PageFailureSampler(
            model=CellLifetimeModel(), n_cells=n_cells, rng=Random(seed))

    def test_no_failures_at_zero_damage(self):
        assert self._sampler().failed_cells(0) == 0

    def test_failed_cells_monotone_in_damage(self):
        sampler = self._sampler()
        counts = [sampler.failed_cells(d)
                  for d in (1e4, 1e5, 3e5, 1e6, 3e6)]
        assert counts == sorted(counts)

    def test_thresholds_sorted_and_consistent(self):
        sampler = self._sampler()
        thresholds = [sampler.next_failure_damage(i) for i in range(10)]
        assert thresholds == sorted(thresholds)
        # failure count exactly at a threshold includes that failure
        assert sampler.failed_cells(thresholds[4]) >= 5

    def test_first_failure_near_spec_on_average(self):
        """E[first failure] tracks the 100k anchor (within sampling noise)."""
        values = [
            PageFailureSampler(model=CellLifetimeModel(), n_cells=16_896,
                               rng=Random(seed)).next_failure_damage(0)
            for seed in range(200)
        ]
        mean = sum(values) / len(values)
        assert 5e4 < mean < 2e5

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_order_statistics_increase(self, seed):
        sampler = self._sampler(seed=seed, n_cells=64)
        previous = 0.0
        for index in range(64):
            threshold = sampler.next_failure_damage(index)
            assert threshold >= previous
            previous = threshold
        assert math.isinf(sampler.next_failure_damage(64))

    def test_exhausting_all_cells(self):
        sampler = self._sampler(n_cells=8)
        assert sampler.failed_cells(1e30) == 8
