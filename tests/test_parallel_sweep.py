"""Parallel sweep runner: seeding, isolation, merging, determinism.

Covers the determinism contract of :mod:`repro.parallel` end to end:
stable seed derivation, failure isolation, ordered aggregation, telemetry
merge semantics, worker-count invariance for real figure grids, the
Figure 9 shared-seed discipline, and the engine's request-counter
reconciliation.
"""

import os
import subprocess
import sys

import pytest

from repro.core.hierarchy import build_flash_system
from repro.experiments import fig6_ecc, fig9_power
from repro.experiments.sweeps import run_sweep
from repro.parallel import (
    SweepError,
    SweepResult,
    SweepTask,
    derive_seed,
    merge_telemetry,
    sweep,
)
from repro.sim.engine import run_trace
from repro.telemetry import LatencyHistogram, MetricsRegistry, Telemetry
from repro.telemetry.timeseries import TimeSeries
from repro.workloads.macro import build_workload


# ---------------------------------------------------------------------------
# module-level task functions (picklable for the process-pool tests)

def _double(value):
    return value * 2


def _boom(value):
    raise ValueError(f"boom {value}")


def _seed_echo(seed):
    return seed


# ---------------------------------------------------------------------------
# derive_seed

class TestDeriveSeed:
    def test_known_value_is_stable_across_releases(self):
        # Pinned: changing the derivation silently changes every derived
        # stream in every experiment.
        assert derive_seed(13, "fig6:t=4") == 1081298997794347082

    def test_range_and_determinism(self):
        seen = set()
        for key in ("a", "b", "fig9:warmup", "fig6:t=4"):
            for base in (0, 1, 13, 2**31):
                value = derive_seed(base, key)
                assert 0 <= value < 2**63
                assert value == derive_seed(base, key)
                seen.add(value)
        assert len(seen) == 16  # no collisions in this tiny sample

    def test_distinct_inputs_distinct_seeds(self):
        assert derive_seed(13, "a") != derive_seed(13, "b")
        assert derive_seed(13, "a") != derive_seed(14, "a")

    def test_independent_of_pythonhashseed(self):
        # hash() would differ between these two children; SHA-256 must not.
        code = "from repro.parallel import derive_seed; " \
               "print(derive_seed(13, 'fig6:t=4'))"
        outputs = set()
        for hashseed in ("0", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in sys.path if p) + os.pathsep + \
                env.get("PYTHONPATH", "")
            outputs.add(subprocess.run(
                [sys.executable, "-c", code], env=env, timeout=60,
                capture_output=True, text=True,
                check=True).stdout.strip())
        assert outputs == {"1081298997794347082"}


# ---------------------------------------------------------------------------
# sweep() mechanics

class TestSweepMechanics:
    def test_results_in_task_order(self):
        tasks = [SweepTask(key=f"t{i}", fn=_double, kwargs={"value": i})
                 for i in range(5)]
        results = sweep(tasks, workers=1)
        assert [r.key for r in results] == [t.key for t in tasks]
        assert [r.value for r in results] == [0, 2, 4, 6, 8]
        assert all(r.ok for r in results)

    def test_seed_injected_into_kwargs(self):
        task = SweepTask(key="seeded", fn=_seed_echo, seed=1234)
        (result,) = sweep([task])
        assert result.value == 1234

    def test_duplicate_keys_rejected(self):
        tasks = [SweepTask(key="same", fn=_double, kwargs={"value": 1}),
                 SweepTask(key="same", fn=_double, kwargs={"value": 2})]
        with pytest.raises(ValueError, match="duplicate sweep task keys"):
            sweep(tasks)

    def test_failure_isolated_to_its_task(self):
        tasks = [SweepTask(key="good", fn=_double, kwargs={"value": 3}),
                 SweepTask(key="bad", fn=_boom, kwargs={"value": 9}),
                 SweepTask(key="also-good", fn=_double,
                           kwargs={"value": 4})]
        results = sweep(tasks, workers=1)
        good, bad, also_good = results
        assert good.ok and good.value == 6
        assert also_good.ok and also_good.value == 8
        assert not bad.ok
        assert "ValueError" in bad.error and "boom 9" in bad.error
        with pytest.raises(SweepError, match="sweep task 'bad' failed"):
            bad.unwrap()

    def test_failure_isolated_across_processes(self):
        tasks = [SweepTask(key="good", fn=_double, kwargs={"value": 3}),
                 SweepTask(key="bad", fn=_boom, kwargs={"value": 9})]
        results = sweep(tasks, workers=2)
        assert results[0].ok and results[0].value == 6
        assert not results[1].ok and "boom 9" in results[1].error

    def test_progress_callback_sees_every_task(self):
        calls = []
        tasks = [SweepTask(key=f"t{i}", fn=_double, kwargs={"value": i})
                 for i in range(4)]
        sweep(tasks, workers=1,
              progress=lambda r, done, total: calls.append(
                  (r.key, done, total)))
        assert [c[1] for c in calls] == [1, 2, 3, 4]
        assert all(c[2] == 4 for c in calls)
        assert {c[0] for c in calls} == {t.key for t in tasks}

    def test_unwrap_returns_value_when_ok(self):
        assert SweepResult(key="k", value=7).unwrap() == 7


# ---------------------------------------------------------------------------
# telemetry merge semantics

class TestTelemetryMerge:
    def test_histogram_merge_is_exact(self):
        a = LatencyHistogram("lat")
        b = LatencyHistogram("lat")
        both = LatencyHistogram("lat")
        for value in (5.0, 80.0, 1500.0):
            a.observe(value)
            both.observe(value)
        for value in (2.0, 80.0, 10**9):
            b.observe(value)
            both.observe(value)
        a.merge(b)
        assert a.counts == both.counts
        assert a.overflow == both.overflow
        assert a.count == both.count
        assert a.total == both.total
        assert a.min == both.min and a.max == both.max

    def test_histogram_merge_rejects_different_edges(self):
        a = LatencyHistogram("lat", edges=(1.0, 2.0))
        b = LatencyHistogram("lat", edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket edges"):
            a.merge(b)

    def test_histogram_survives_pickling(self):
        import pickle

        hist = LatencyHistogram("lat")
        for value in (3.0, 50.0, 900.0):
            hist.observe(value)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        clone.observe(4.0)  # _pending/_push restored and functional
        assert clone.count == hist.count + 1

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        b.counter("only_b").inc(1)
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.histogram("h").observe(10.0)
        b.histogram("h").observe(20.0)
        a.merge(b)
        assert a.counters["c"].value == 7
        assert a.counters["only_b"].value == 1
        assert a.gauges["g"].value == 2.0  # last write wins
        assert a.histograms["h"].count == 2

    def test_timeseries_extend_concatenates(self):
        a, b = TimeSeries("s"), TimeSeries("s")
        a.append(1, 10.0)
        b.append(2, 20.0)
        a.extend(b)
        assert a.as_dict() == {"x": [1, 2], "y": [10.0, 20.0]}

    def test_merge_telemetry_skips_none_and_handles_empty(self):
        assert merge_telemetry([]) is None
        assert merge_telemetry([None, None]) is None
        handle = Telemetry(sample_interval=7)
        handle.metrics.counter("c").inc(2)
        merged = merge_telemetry([None, handle])
        assert merged is not None
        assert merged.sample_interval == 7
        assert merged.metrics.counters["c"].value == 2

    def test_per_task_handles_equal_shared_handle(self):
        # The contract merge_telemetry() exists for: N per-task handles
        # folded together must equal one handle shared across the tasks.
        def observe(handle, offset):
            handle.read_latency.observe(10.0 + offset)
            handle.metrics.counter("request.reads").inc(1 + offset)
            handle.series("miss_rate").append(offset, offset / 10.0)

        shared = Telemetry()
        per_task = []
        for offset in range(3):
            observe(shared, offset)
            own = Telemetry()
            observe(own, offset)
            per_task.append(own)
        merged = merge_telemetry(per_task)
        assert merged.metrics.as_dict() == shared.metrics.as_dict()
        assert {name: series.as_dict()
                for name, series in merged.timeseries.items()} == \
               {name: series.as_dict()
                for name, series in shared.timeseries.items()}


# ---------------------------------------------------------------------------
# determinism of the simulation itself

def _small_run(seed, telemetry=None):
    records = build_workload("dbt2", num_records=1500, seed=seed,
                             footprint_pages=512)
    system = build_flash_system(dram_bytes=1 << 20, flash_bytes=4 << 20)
    return run_trace(system, records, telemetry=telemetry)


class TestDeterminism:
    def test_same_seed_identical_report(self):
        first = _small_run(99, telemetry=Telemetry(sample_interval=200))
        second = _small_run(99, telemetry=Telemetry(sample_interval=200))
        for field in ("requests", "reads", "writes", "average_latency_us",
                      "wall_clock_us", "throughput_rps", "disk_reads",
                      "disk_writes", "flash_miss_rate",
                      "flash_live_capacity"):
            assert getattr(first, field) == getattr(second, field), field
        assert first.read_latency.counts == second.read_latency.counts
        assert first.write_latency.counts == second.write_latency.counts
        assert first.read_latency.total == second.read_latency.total
        assert {k: s.as_dict() for k, s in first.timeseries.items()} == \
               {k: s.as_dict() for k, s in second.timeseries.items()}

    def test_different_seed_different_trace(self):
        assert build_workload("dbt2", num_records=100, seed=1,
                              footprint_pages=512) != \
               build_workload("dbt2", num_records=100, seed=2,
                              footprint_pages=512)


# ---------------------------------------------------------------------------
# worker-count invariance on real figure grids

class TestWorkerCountInvariance:
    def test_fig6_grid_serial_equals_parallel(self):
        tasks = fig6_ecc.tasks(t_values_a=(2, 5, 8),
                               t_values_b=(0, 5, 10),
                               stdev_fracs=(0.0, 0.10))
        serial = fig6_ecc.combine(sweep(tasks, workers=1))
        two = fig6_ecc.combine(sweep(tasks, workers=2))
        four = fig6_ecc.combine(sweep(tasks, workers=4))
        assert serial == two == four

    def test_run_sweep_figures_identical_across_workers(self):
        from repro.experiments.report import ReportScale

        scale = ReportScale.quick()
        serial = run_sweep(figures=["fig6"], scale=scale, workers=1)
        parallel = run_sweep(figures=["fig6"], scale=scale, workers=4)
        assert serial["figures"] == parallel["figures"]
        assert serial["meta"]["errors"] == {}
        assert parallel["meta"]["errors"] == {}

    def test_fig13_error_regimes_identical_across_workers(self):
        """The error-process model's per-frame RNG streams and the
        RNG-free scrub schedule must make regime results — error counts,
        scrub decisions, UBER — identical at any worker count."""
        from repro.experiments.report import ReportScale

        scale = ReportScale.quick()
        serial = run_sweep(figures=["fig13"], scale=scale, workers=1)
        parallel = run_sweep(figures=["fig13"], scale=scale, workers=4)
        assert serial["figures"] == parallel["figures"]
        assert serial["meta"]["errors"] == {}
        assert parallel["meta"]["errors"] == {}

    def test_run_sweep_rejects_unknown_figure(self):
        with pytest.raises(KeyError, match="unknown sweep figures"):
            run_sweep(figures=["fig99"])


# ---------------------------------------------------------------------------
# Figure 9 seed discipline (the comparison-arm bug this PR fixes)

class TestFig9SeedDiscipline:
    def test_arm_tasks_carry_equal_seeds(self):
        tasks = fig9_power.tasks("dbt2", seed=21)
        seeds = {task.kwargs["seed"] for task in tasks}
        assert seeds == {21}, \
            "both Figure 9 arms must replay the identical trace"

    def test_warmup_stream_shared_and_derived(self):
        assert fig9_power.warmup_seed(13) == derive_seed(13, "fig9:warmup")
        # Distinct from the measurement stream and from seed+1 (the old
        # ad-hoc scheme another experiment's seed could collide with).
        assert fig9_power.warmup_seed(13) not in (13, 14)

    def test_both_arms_build_identical_streams(self):
        tasks = fig9_power.tasks("dbt2", seed=21, num_records=500,
                                 warmup_records=300)
        streams = []
        for task in tasks:
            k = task.kwargs
            footprint = fig9_power.FIG9_CONFIGS["dbt2"].footprint_bytes \
                // k["scale_divisor"] // 4096
            streams.append((
                build_workload("dbt2", num_records=k["warmup_records"],
                               seed=fig9_power.warmup_seed(k["seed"]),
                               footprint_pages=footprint),
                build_workload("dbt2", num_records=k["num_records"],
                               seed=k["seed"],
                               footprint_pages=footprint),
            ))
        assert streams[0] == streams[1]


# ---------------------------------------------------------------------------
# engine request-counter reconciliation

class TestEngineCounters:
    def test_timeseries_x_axis_matches_request_count(self):
        telemetry = Telemetry(sample_interval=100)
        report = _small_run(7, telemetry=telemetry)
        for name, series in report.timeseries.items():
            assert series.as_dict()["x"][-1] == report.requests, name

    def test_second_run_continues_the_x_axis(self):
        records = build_workload("dbt2", num_records=400, seed=7,
                                 footprint_pages=512)
        system = build_flash_system(dram_bytes=1 << 20,
                                    flash_bytes=4 << 20)
        telemetry = Telemetry(sample_interval=100)
        run_trace(system, records, telemetry=telemetry)
        report = run_trace(system, records, telemetry=telemetry)
        # x axis is cumulative across both calls, not restarted at zero.
        assert report.requests == system.stats.requests
        xs = report.timeseries["flash_miss_rate"].as_dict()["x"]
        assert xs == sorted(xs)
        assert xs[-1] == report.requests


# ---------------------------------------------------------------------------
# CLI

class TestSweepCli:
    def test_sweep_writes_json_document(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "sweep.json"
        rc = main(["sweep", "--figures", "fig6", "--workers", "1",
                   "--scale", "quick", "--quiet", "--out", str(out)])
        assert rc == 0
        import json

        document = json.loads(out.read_text())
        assert document["meta"]["errors"] == {}
        assert document["meta"]["figures"] == ["fig6"]
        assert "decode_latency" in document["figures"]["fig6"]

    def test_sweep_stdout_and_progress(self, capsys):
        from repro.__main__ import main

        rc = main(["sweep", "--figures", "fig6", "--workers", "1",
                   "--scale", "quick"])
        assert rc == 0
        captured = capsys.readouterr()
        assert '"fig6"' in captured.out
        assert "[1/" in captured.err  # progress lines on stderr

    def test_sweep_unknown_figure_fails_cleanly(self, capsys):
        from repro.__main__ import main

        rc = main(["sweep", "--figures", "nope", "--quiet"])
        assert rc == 2
        assert "unknown sweep figures" in capsys.readouterr().err

    def test_report_accepts_workers_flag(self, capsys):
        from repro.__main__ import main

        rc = main(["report", "--scale", "quick", "--sections", "fig6",
                   "--workers", "2"])
        assert rc == 0
        assert "Decode latency" in capsys.readouterr().out
