"""Tests for the four DRAM-resident management tables (section 3)."""

from __future__ import annotations

import pytest

from repro.core.tables import (
    ACCESS_COUNTER_MAX,
    FBSTEntry,
    FlashBlockStatusTable,
    FlashCacheHashTable,
    FlashGlobalStatus,
    FlashPageStatusTable,
    FPSTEntry,
    metadata_overhead_bytes,
)
from repro.flash.geometry import PageAddress
from repro.flash.timing import CellMode


class TestFPST:
    def test_entry_created_with_default_strength(self):
        table = FlashPageStatusTable(default_ecc_strength=3)
        entry = table.entry(PageAddress(0, 0, 0))
        assert entry.ecc_strength == 3
        assert not entry.valid

    def test_saturating_counter(self):
        entry = FPSTEntry()
        saturated = False
        for _ in range(ACCESS_COUNTER_MAX + 5):
            saturated = entry.touch()
        assert saturated
        assert entry.access_count == ACCESS_COUNTER_MAX

    def test_saturate_shortcut(self):
        entry = FPSTEntry()
        entry.saturate()
        assert entry.access_count == ACCESS_COUNTER_MAX

    def test_drop_and_iterate(self):
        table = FlashPageStatusTable()
        a, b = PageAddress(0, 0, 0), PageAddress(0, 1, 0)
        table.entry(a)
        table.entry(b)
        table.drop(a)
        assert len(table) == 1
        assert [address for address, _ in table] == [b]


class TestFBST:
    def test_wear_out_cost_function(self):
        """wear_out = N_erase + k1*TotalECC + k2*TotalSLC (section 3.3)."""
        entry = FBSTEntry(erase_count=10, total_ecc=4, total_slc_pages=2)
        assert entry.wear_out(k1=1.0, k2=10.0) == pytest.approx(
            10 + 1.0 * 4 + 10.0 * 2)

    def test_k2_must_dominate_k1(self):
        """Section 3.3: "Constant k2 is larger than k1"."""
        with pytest.raises(ValueError):
            FlashBlockStatusTable(4, k1=5.0, k2=1.0)

    def test_newest_block_ignores_retired(self):
        table = FlashBlockStatusTable(3)
        table.entry(0).erase_count = 1
        table.entry(1).erase_count = 0
        table.entry(2).erase_count = 5
        assert table.newest_block() == 1
        table.entry(1).retired = True
        assert table.newest_block() == 0

    def test_all_retired_raises(self):
        table = FlashBlockStatusTable(2)
        table.entry(0).retired = True
        table.entry(1).retired = True
        with pytest.raises(RuntimeError):
            table.newest_block()
        assert table.retired_count == 2
        assert list(table.live_blocks()) == []


class TestFGST:
    def test_miss_rate(self):
        fgst = FlashGlobalStatus()
        for _ in range(3):
            fgst.record_hit(50.0)
        fgst.record_miss(4200.0)
        assert fgst.miss_rate == pytest.approx(0.25)

    def test_ewma_tracks_latency(self):
        fgst = FlashGlobalStatus(ewma_alpha=0.5)
        fgst.record_hit(100.0)
        fgst.record_hit(200.0)
        assert fgst.avg_hit_latency_us == pytest.approx(150.0)

    def test_relative_frequency(self):
        fgst = FlashGlobalStatus()
        assert fgst.relative_frequency(10) == 0.0
        fgst.record_hit(1.0)
        fgst.record_hit(1.0)
        assert fgst.relative_frequency(1) == pytest.approx(0.5)


class TestFCHT:
    def test_basic_mapping(self):
        fcht = FlashCacheHashTable()
        address = PageAddress(1, 2, 0)
        fcht.insert(42, address)
        assert 42 in fcht
        assert fcht.lookup(42) == address
        assert fcht.remove(42) == address
        assert fcht.lookup(42) is None

    def test_lookup_cost_grows_with_load(self):
        small = FlashCacheHashTable(buckets=4)
        large = FlashCacheHashTable(buckets=4096)
        for lba in range(1000):
            small.insert(lba, PageAddress(0, 0, 0))
            large.insert(lba, PageAddress(0, 0, 0))
        assert small.lookup_cost_us() > large.lookup_cost_us()

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            FlashCacheHashTable(buckets=0)


class TestMetadataOverhead:
    def test_paper_32gb_estimate(self):
        """Section 3: ~360MB of DRAM for 32GB of Flash, under 2%."""
        overhead = metadata_overhead_bytes(32 << 30)
        assert overhead == pytest.approx(360 << 20, rel=0.05)
        assert overhead / (32 << 30) < 0.02

    def test_scales_linearly_with_flash(self):
        small = metadata_overhead_bytes(1 << 30)
        large = metadata_overhead_bytes(4 << 30)
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_rejects_sub_page_flash(self):
        with pytest.raises(ValueError):
            metadata_overhead_bytes(100)
