"""Transient (soft) error injection tests."""

from __future__ import annotations

import pytest

from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry, PageAddress


def make_device(rate: float) -> FlashDevice:
    return FlashDevice(geometry=FlashGeometry(frames_per_block=2,
                                              num_blocks=2),
                       soft_error_rate_per_bit=rate, seed=11)


class TestSoftErrors:
    def test_zero_rate_is_clean(self):
        device = make_device(0.0)
        for _ in range(20):
            assert device.read_page(PageAddress(0, 0, 0)).raw_bit_errors == 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            make_device(-0.1)
        with pytest.raises(ValueError):
            make_device(1.5)

    def test_mean_matches_rate(self):
        rate = 2e-4
        device = make_device(rate)
        samples = [device.read_page(PageAddress(0, 0, 0)).raw_bit_errors
                   for _ in range(400)]
        expected = rate * device.geometry.cells_per_frame
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(expected, rel=0.25)

    def test_errors_are_transient_not_persistent(self):
        """Unlike wear-out, soft errors do not grow over time."""
        device = make_device(1e-4)
        early = sum(device.read_page(PageAddress(0, 0, 0)).raw_bit_errors
                    for _ in range(100))
        device.age_block(0, 1_000_000)  # no wear model: aging is inert
        late = sum(device.read_page(PageAddress(0, 0, 0)).raw_bit_errors
                   for _ in range(100))
        assert late == pytest.approx(early, abs=max(30, early))

    def test_ecc_absorbs_rare_soft_errors(self):
        """The controller corrects sub-t soft error bursts transparently."""
        from repro.core.controller import (ControllerConfig,
                                           ProgrammableFlashController)
        device = make_device(5e-5)  # mean ~0.8 errors per read
        controller = ProgrammableFlashController(
            device, config=ControllerConfig(initial_ecc_strength=6))
        recovered = [controller.read(PageAddress(0, 0, 0)).recovered
                     for _ in range(100)]
        assert sum(recovered) >= 99
