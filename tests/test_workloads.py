"""Workload substrate tests: generators, SPC format, post-PDC filtering."""

from __future__ import annotations

import io
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.macro import (
    ALL_WORKLOAD_NAMES,
    MACRO_WORKLOADS,
    build_workload,
    workload_footprint_pages,
)
from repro.workloads.postpdc import derive_disk_trace
from repro.workloads.synthetic import (
    ExponentialPopularity,
    SyntheticConfig,
    UniformPopularity,
    ZipfPopularity,
    exponential_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import (
    OP_READ,
    OP_WRITE,
    PAGE_BYTES,
    TraceRecord,
    read_spc,
    spc_roundtrip,
    summarize,
    write_spc,
)


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(page=0, op="x")
        with pytest.raises(ValueError):
            TraceRecord(page=-1, op=OP_READ)
        with pytest.raises(ValueError):
            TraceRecord(page=0, op=OP_READ, pages=0)

    def test_expand(self):
        record = TraceRecord(page=10, op=OP_WRITE, pages=3)
        assert list(record.expand()) == [10, 11, 12]
        assert not record.is_read

    def test_summarize(self):
        records = [
            TraceRecord(0, OP_READ, pages=2),
            TraceRecord(1, OP_WRITE),
            TraceRecord(0, OP_READ),
        ]
        stats = summarize(records)
        assert stats.records == 3
        assert stats.reads == 2 and stats.writes == 1
        assert stats.pages_read == 3 and stats.pages_written == 1
        assert stats.footprint_pages == 2
        assert stats.read_fraction == pytest.approx(2 / 3)
        assert stats.footprint_bytes == 2 * PAGE_BYTES


class TestSpcFormat:
    def test_parses_umass_style_line(self):
        stream = io.StringIO("0,1024,4096,r,0.125\n1,8,512,W,1.5\n")
        records = list(read_spc(stream))
        # 1024 sectors / 4 per page = page 256; 4096 bytes = 2 pages.
        assert records[0] == TraceRecord(page=256, op=OP_READ, pages=2,
                                         timestamp=0.125)
        assert records[1].op == OP_WRITE and records[1].page == 2

    def test_skips_comments_and_blanks(self):
        stream = io.StringIO("# header\n\n0,0,2048,r,0.0\n")
        assert len(list(read_spc(stream))) == 1

    def test_malformed_lines_raise_with_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            list(read_spc(io.StringIO("not,enough\n")))
        with pytest.raises(ValueError, match="bad opcode"):
            list(read_spc(io.StringIO("0,0,2048,q,0.0\n")))

    def test_limit(self):
        stream = io.StringIO("0,0,2048,r,0\n" * 10)
        assert len(list(read_spc(stream, limit=3))) == 3

    @settings(max_examples=30, deadline=None)
    @given(records=st.lists(
        st.builds(TraceRecord,
                  page=st.integers(min_value=0, max_value=1 << 20),
                  op=st.sampled_from([OP_READ, OP_WRITE]),
                  pages=st.integers(min_value=1, max_value=16)),
        min_size=0, max_size=30))
    def test_property_roundtrip(self, records):
        parsed = spc_roundtrip(records)
        assert [(r.page, r.op, r.pages) for r in parsed] \
            == [(r.page, r.op, r.pages) for r in records]


class TestPopularityDistributions:
    def test_uniform_probabilities(self):
        dist = UniformPopularity(100)
        assert dist.rank_probability(0) == pytest.approx(0.01)
        assert dist.sample_rank(0.999) == 99

    def test_zipf_skew_ordering(self):
        dist = ZipfPopularity(1000, alpha=1.2)
        assert dist.rank_probability(0) > dist.rank_probability(10) \
            > dist.rank_probability(100)

    def test_zipf_probabilities_sum_to_one(self):
        dist = ZipfPopularity(500, alpha=0.8)
        total = sum(dist.rank_probability(rank) for rank in range(500))
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_exponential_probabilities_sum_to_one(self):
        dist = ExponentialPopularity(300, lam=0.05)
        total = sum(dist.rank_probability(rank) for rank in range(300))
        assert total == pytest.approx(1.0, rel=1e-9)

    @given(u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_property_sample_rank_in_range(self, u):
        for dist in (UniformPopularity(64), ZipfPopularity(64, 1.0),
                     ExponentialPopularity(64, 0.1)):
            assert 0 <= dist.sample_rank(u) < 64

    def test_higher_alpha_concentrates_mass(self):
        mild = ZipfPopularity(1000, alpha=0.8)
        steep = ZipfPopularity(1000, alpha=1.6)
        mild_top = sum(mild.rank_probability(r) for r in range(10))
        steep_top = sum(steep.rank_probability(r) for r in range(10))
        assert steep_top > mild_top


class TestMicroGenerators:
    CONFIG = SyntheticConfig(footprint_pages=4096, num_records=5000, seed=2)

    def test_deterministic(self):
        assert zipf_trace(1.2, self.CONFIG) == zipf_trace(1.2, self.CONFIG)

    def test_read_fraction_respected(self):
        records = uniform_trace(self.CONFIG)
        stats = summarize(records)
        assert stats.read_fraction == pytest.approx(0.9, abs=0.03)

    def test_footprint_bounded(self):
        for records in (uniform_trace(self.CONFIG),
                        zipf_trace(1.6, self.CONFIG),
                        exponential_trace(0.1, self.CONFIG)):
            assert all(0 <= r.page < 4096 for r in records)

    def test_zipf_reuses_hot_pages_more_than_uniform(self):
        zipf_stats = summarize(zipf_trace(1.6, self.CONFIG))
        uniform_stats = summarize(uniform_trace(self.CONFIG))
        assert zipf_stats.footprint_pages < uniform_stats.footprint_pages


class TestMacroRegistry:
    def test_all_names_resolve(self):
        for name in ALL_WORKLOAD_NAMES:
            records = build_workload(name, num_records=200,
                                     footprint_pages=2048)
            assert len(records) == 200
            assert workload_footprint_pages(name) > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_workload("nosuch", num_records=1)
        with pytest.raises(KeyError):
            workload_footprint_pages("nosuch")

    def test_published_footprints(self):
        assert MACRO_WORKLOADS["financial2"].footprint_bytes == pytest.approx(
            443.8 * (1 << 20), rel=1e-6)
        assert MACRO_WORKLOADS["websearch1"].footprint_bytes == pytest.approx(
            5116.7 * (1 << 20), rel=1e-6)

    def test_read_mixes(self):
        for name, low, high in [("specweb99", 0.97, 1.0),
                                ("dbt2", 0.55, 0.75),
                                ("financial1", 0.1, 0.4)]:
            stats = summarize(build_workload(name, num_records=4000,
                                             footprint_pages=4096))
            assert low <= stats.read_fraction <= high, name

    def test_dbt2_has_sequential_log_writes(self):
        records = build_workload("dbt2", num_records=5000,
                                 footprint_pages=4096, seed=8)
        log_region_start = 4096 - 4096 // 20
        log_writes = [r for r in records
                      if not r.is_read and r.page >= log_region_start]
        assert len(log_writes) > 50


class TestPostPdcFilter:
    def test_disk_trace_smaller_than_application_trace(self):
        raw = build_workload("specweb99", num_records=5000,
                             footprint_pages=2048, seed=5)
        disk = derive_disk_trace(raw, pdc_pages=512)
        assert 0 < len(disk) < len(raw)

    def test_hot_reads_absorbed(self):
        """A single hot page read repeatedly reaches the disk only once."""
        raw = [TraceRecord(7, OP_READ) for _ in range(100)]
        disk = derive_disk_trace(raw, pdc_pages=8)
        assert len(disk) == 1

    def test_dirty_writebacks_emerge(self):
        raw = [TraceRecord(page, OP_WRITE) for page in range(10)]
        disk = derive_disk_trace(raw, pdc_pages=4, flush_tail=True)
        writes = [r for r in disk if not r.is_read]
        assert sorted(r.page for r in writes) == list(range(10))

    def test_flush_tail_optional(self):
        raw = [TraceRecord(page, OP_WRITE) for page in range(3)]
        assert derive_disk_trace(raw, pdc_pages=8, flush_tail=False) == []
