"""Accelerator latency/area model tests (paper section 4.1, Figure 6(a))."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ecc.latency import (
    AcceleratorConfig,
    AreaModel,
    BCHLatencyModel,
    DecodeLatency,
)

MODEL = BCHLatencyModel()


class TestConfig:
    def test_defaults_match_paper_design_point(self):
        config = AcceleratorConfig()
        assert config.clock_hz == 100e6     # 100 MHz embedded core
        assert config.chien_engines == 16   # 16 Chien search engines
        assert config.max_t == 12           # controller hardware limit
        assert config.codeword_bits == (1 << 15) - 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(clock_hz=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(chien_engines=0)


class TestDecodeLatency:
    def test_zero_strength_is_free(self):
        assert MODEL.decode_latency(0).total_us == 0.0
        assert MODEL.encode_us(0) == 0.0

    def test_monotone_in_t(self):
        latencies = [MODEL.decode_us(t) for t in range(1, 13)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_paper_envelope(self):
        """Table 3 budgets 58-400us for the BCH latency."""
        for t in range(1, 13):
            assert 40.0 <= MODEL.decode_us(t) <= 400.0

    def test_chien_dominates_at_high_t(self):
        """Figure 6(a): the Chien search is the growing component."""
        latency = MODEL.decode_latency(11)
        assert latency.chien_us > latency.syndrome_us

    def test_berlekamp_insignificant(self):
        """The paper omits Berlekamp from Figure 6(a) as insignificant."""
        for t in range(1, 13):
            latency = MODEL.decode_latency(t)
            assert latency.berlekamp_us < 0.05 * latency.total_us

    def test_syndrome_steps_at_lane_boundaries(self):
        """2t syndromes over 16 lanes: one pass for t<=8, two for t<=16."""
        assert MODEL.syndrome_us(8) == MODEL.syndrome_us(1)
        assert MODEL.syndrome_us(9) == pytest.approx(
            2 * MODEL.syndrome_us(8))

    def test_figure_6a_series_shape(self):
        series = MODEL.figure_6a_series()
        assert [t for t, _ in series] == list(range(2, 12))
        totals = [latency.total_us for _, latency in series]
        assert totals == sorted(totals)

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            MODEL.decode_latency(-1)

    def test_hardware_limit_not_enforced_on_model(self):
        """Section 7.2 simulates strengths beyond the hardware limit "to
        fully capture the performance trends"."""
        assert MODEL.decode_us(50) > MODEL.decode_us(12)

    @given(t=st.integers(min_value=1, max_value=64))
    def test_components_positive_and_sum(self, t):
        latency = MODEL.decode_latency(t)
        assert latency.syndrome_us > 0
        assert latency.chien_us > 0
        assert latency.total_us == pytest.approx(
            latency.syndrome_us + latency.berlekamp_us + latency.chien_us)
        assert latency.total_s == pytest.approx(latency.total_us * 1e-6)

    def test_faster_clock_reduces_latency(self):
        fast = BCHLatencyModel(AcceleratorConfig(clock_hz=200e6))
        assert fast.decode_us(5) == pytest.approx(MODEL.decode_us(5) / 2)

    def test_more_engines_reduce_chien(self):
        wide = BCHLatencyModel(AcceleratorConfig(chien_engines=32))
        assert wide.chien_us(5) == pytest.approx(MODEL.chien_us(5) / 2)

    def test_encode_is_single_pass(self):
        assert MODEL.encode_us(1) == MODEL.encode_us(12)
        assert MODEL.encode_us(1) == pytest.approx(MODEL.syndrome_us(1))


class TestAreaModel:
    def test_paper_area_budget(self):
        """Section 4.1.1: "Our design required about 1 mm^2"."""
        assert AreaModel().total_mm2 == pytest.approx(1.0, rel=0.05)

    def test_crc_negligible(self):
        area = AreaModel()
        assert area.crc_mm2 < 0.01 * area.total_mm2

    def test_lookup_table_is_dominant_component(self):
        area = AreaModel()
        assert area.lookup_table_mm2 > area.total_mm2 / 2
        assert area.lookup_table_entries == 1 << 15
