"""Storage-hierarchy tests: both Figure 2 platforms end to end."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import (
    DramOnlySystem,
    FlashBackedSystem,
    SystemConfig,
    build_flash_system,
)
from repro.workloads.macro import build_workload
from repro.workloads.trace import OP_READ, OP_WRITE, TraceRecord


def small_flash_system(**kwargs) -> FlashBackedSystem:
    return build_flash_system(dram_bytes=1 << 20, flash_bytes=4 << 20,
                              **kwargs)


class TestSystemConfig:
    def test_pdc_sizing(self):
        config = SystemConfig(dram_bytes=1 << 20, pdc_fraction=0.5)
        assert config.pdc_pages == (1 << 19) // 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(dram_bytes=100)
        with pytest.raises(ValueError):
            SystemConfig(dram_bytes=1 << 20, pdc_fraction=0.0)
        with pytest.raises(ValueError):
            FlashBackedSystem(SystemConfig(dram_bytes=1 << 20), None)


class TestDramOnlySystem:
    def test_pdc_hit_avoids_disk(self):
        system = DramOnlySystem(SystemConfig(dram_bytes=1 << 20))
        first = system.read(5)
        second = system.read(5)
        assert first > 4000.0      # includes the 4.2ms disk fill
        assert second < 10.0       # pure DRAM
        assert system.disk.reads == 1

    def test_write_back_batched_to_disk(self):
        system = DramOnlySystem(SystemConfig(
            dram_bytes=1 << 20, flush_interval_requests=50))
        pdc_pages = system.pdc.capacity_pages
        for page in range(pdc_pages * 2):
            system.write(page)
        assert system.disk.writes > 0
        # Batched: far fewer disk operations than evicted dirty pages.
        assert system.disk.writes < system.pdc.stats.dirty_evictions / 5


class TestFlashBackedSystem:
    def test_three_level_read_path(self):
        system = small_flash_system()
        miss = system.read(42)              # disk fill
        system.pdc.invalidate(42)
        flash_hit = system.read(42)         # flash fill
        pdc_hit = system.read(42)
        assert miss > 4000.0
        assert 50.0 < flash_hit < 1000.0
        assert pdc_hit < 10.0
        assert system.stats.disk_fills == 1
        assert system.stats.flash_fills == 1

    def test_writes_are_dram_speed(self):
        system = small_flash_system()
        assert system.write(3) < 10.0

    def test_process_expands_extents(self):
        system = small_flash_system()
        system.process(TraceRecord(page=0, op=OP_READ, pages=4))
        assert system.stats.reads == 4

    def test_run_and_drain(self):
        system = small_flash_system()
        trace = build_workload("dbt2", num_records=3000,
                               footprint_pages=4096, seed=6)
        system.run(trace)
        system.drain()
        assert system.pdc.dirty_pages == 0
        assert system.flash.flush() == []

    def test_wall_clock_floors_at_device_busy(self):
        system = small_flash_system()
        system.read(1)
        assert system.wall_clock_us >= system.disk.busy_us
        assert system.wall_clock_us >= system.stats.total_latency_us

    def test_throughput_positive(self):
        system = small_flash_system()
        for page in range(100):
            system.read(page % 10)
        assert system.throughput_rps() > 0

    def test_reset_measurement_keeps_cache_contents(self):
        system = small_flash_system()
        for page in range(50):
            system.read(page)
        system.reset_measurement()
        assert system.stats.requests == 0
        assert system.disk.busy_us == 0.0
        assert system.flash.controller.device.stats.busy_us == 0.0
        # Cached state survives: re-reading is cheap.
        latency = system.read(0)
        assert latency < 1000.0


class TestPlatformComparison:
    def test_flash_system_beats_dram_only_when_pdc_too_small(self):
        trace = build_workload("alpha2", num_records=30_000,
                               footprint_pages=16_384, seed=3)
        baseline = DramOnlySystem(SystemConfig(dram_bytes=1 << 20))
        baseline.run(trace)
        flash = small_flash_system()
        flash.run(trace)
        assert (flash.stats.average_latency_us
                < baseline.stats.average_latency_us)
        assert flash.disk.reads < baseline.disk.reads

    def test_build_flash_system_wires_defaults(self):
        system = small_flash_system()
        assert system.flash.config.gc_move_budget == 1.0
        assert system.config.flash_bytes == 4 << 20
