"""Programmable Flash memory controller tests (sections 4, 5.2)."""

from __future__ import annotations

import pytest

from repro.core.controller import (
    ControllerConfig,
    FixedEccController,
    ProgrammableFlashController,
    ReconfigKind,
)
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.timing import CellMode
from repro.flash.wear import CellLifetimeModel, WearModelConfig


def make_controller(worn=False, **config_kwargs):
    geometry = FlashGeometry(frames_per_block=4, num_blocks=4)
    device = FlashDevice(
        geometry=geometry,
        lifetime_model=CellLifetimeModel(WearModelConfig()) if worn else None,
        initial_mode=CellMode.MLC,
        seed=3,
    )
    return ProgrammableFlashController(
        device, config=ControllerConfig(**config_kwargs))


class TestDescriptors:
    def test_descriptor_reflects_fpst(self):
        controller = make_controller(initial_ecc_strength=2)
        descriptor = controller.descriptor(PageAddress(0, 0, 0))
        assert descriptor.ecc_strength == 2
        assert descriptor.mode is CellMode.MLC

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(max_ecc_strength=4, initial_ecc_strength=5)


class TestTimedOperations:
    def test_read_adds_decode_and_crc(self):
        controller = make_controller()
        result = controller.read(PageAddress(0, 0, 0))
        raw = controller.device.timing.mlc_read_us
        assert result.latency_us > raw
        assert result.recovered
        assert result.reconfig is None

    def test_program_adds_encode(self):
        controller = make_controller()
        latency = controller.program(PageAddress(0, 0, 0), lba=5)
        assert latency > controller.device.timing.mlc_write_us
        entry = controller.fpst.entry(PageAddress(0, 0, 0))
        assert entry.valid and entry.lba == 5

    def test_stronger_code_costs_more(self):
        weak = make_controller(initial_ecc_strength=1)
        strong = make_controller(initial_ecc_strength=12)
        assert (strong.read(PageAddress(0, 0, 0)).latency_us
                > weak.read(PageAddress(0, 0, 0)).latency_us)

    def test_erase_updates_fbst_and_resets_pages(self):
        controller = make_controller()
        controller.program(PageAddress(1, 0, 0), lba=9)
        controller.erase(1)
        assert controller.fbst.entry(1).erase_count == 1
        entry = controller.fpst.entry(PageAddress(1, 0, 0))
        assert not entry.valid and entry.lba is None

    def test_ecc_strength_persists_across_erase(self):
        """Strength tracks physical wear, so it must survive the erase."""
        controller = make_controller()
        address = PageAddress(0, 1, 0)
        controller.fpst.entry(address).ecc_strength = 7
        controller.erase(0)
        assert controller.fpst.entry(address).ecc_strength == 7

    def test_invalidate_clears_valid_bit(self):
        controller = make_controller()
        controller.program(PageAddress(0, 0, 0), lba=1)
        controller.invalidate(PageAddress(0, 0, 0))
        assert not controller.fpst.entry(PageAddress(0, 0, 0)).valid


class TestDensityChangeAtErase:
    def test_pended_slc_applied_at_erase(self):
        controller = make_controller()
        address = PageAddress(2, 1, 0)
        controller.request_slc(address)
        assert controller.device.frame_mode(2, 1) is CellMode.MLC
        controller.erase(2)
        assert controller.device.frame_mode(2, 1) is CellMode.SLC
        assert controller.fbst.entry(2).total_slc_pages == 1

    def test_subpage_entries_dropped_on_density_switch(self):
        controller = make_controller()
        controller.fpst.entry(PageAddress(2, 1, 1)).ecc_strength = 5
        controller.request_slc(PageAddress(2, 1, 0))
        controller.erase(2)
        # subpage 1 no longer exists in SLC mode
        assert controller.fpst.get(PageAddress(2, 1, 1)) is None

    def test_pages_of_block_follows_modes(self):
        controller = make_controller()
        assert len(controller.pages_of_block(0)) == 8  # 4 frames x 2 MLC
        controller.request_slc(PageAddress(0, 0, 0))
        controller.erase(0)
        assert len(controller.pages_of_block(0)) == 7


class TestFaultResponse:
    def _age_to_limit(self, controller, block=0, frame=0):
        """Age a frame until its raw errors reach the page's strength."""
        address = PageAddress(block, frame, 0)
        strength = controller.fpst.entry(address).ecc_strength
        threshold = controller.device.next_error_damage(
            block, frame, strength - 1)
        sensitivity = controller.device.frame_read_sensitivity(block, frame)
        controller.device.age_block(block, threshold / sensitivity * 1.001)
        return address

    def test_reconfig_triggered_at_limit(self):
        controller = make_controller(worn=True)
        address = self._age_to_limit(controller)
        result = controller.read(address)
        assert result.reconfig is not None
        assert controller.stats.descriptor_updates == 1

    def test_cold_page_prefers_stronger_ecc(self):
        """delta_tcs ~ freq * code_delay ~ 0 for a never-read page."""
        controller = make_controller(worn=True)
        address = self._age_to_limit(controller)
        entry = controller.fpst.entry(address)
        entry.access_count = 0
        controller.fgst.total_accesses = 1_000_000
        result = controller.read(address)
        assert result.reconfig is ReconfigKind.CODE_STRENGTH
        assert controller.fpst.entry(address).ecc_strength == 2

    def test_hot_page_prefers_density_reduction(self):
        controller = make_controller(worn=True)
        controller.marginal_miss_estimate = 0.0  # short tail: free capacity
        address = self._age_to_limit(controller)
        entry = controller.fpst.entry(address)
        entry.access_count = 500_000
        controller.fgst.total_accesses = 1_000_000
        result = controller.read(address)
        assert result.reconfig is ReconfigKind.DENSITY

    def test_exhausted_page_retires_block(self):
        controller = make_controller(worn=True, max_ecc_strength=1,
                                     initial_ecc_strength=1)
        address = self._age_to_limit(controller)
        entry = controller.fpst.entry(address)
        entry.mode = CellMode.MLC
        # Force SLC mode so neither repair is available.
        controller.request_slc(address)
        controller.erase(0)
        address = self._age_to_limit(controller)
        controller.read(address)
        assert controller.is_retired(0)
        assert controller.stats.blocks_retired == 1

    def test_uncorrectable_read_reported(self):
        controller = make_controller(worn=True)
        address = PageAddress(0, 0, 0)
        # Age far past the strength-1 limit so raw errors exceed t.
        threshold = controller.device.next_error_damage(0, 0, 5)
        controller.device.age_block(0, threshold)
        result = controller.read(address)
        assert not result.recovered
        assert controller.stats.uncorrectable_reads == 1

    def test_hot_promotion_flag_on_saturation(self):
        controller = make_controller(counter_max=3)
        address = PageAddress(0, 0, 0)
        flags = [controller.read(address).hot_promotion for _ in range(4)]
        assert flags[:2] == [False, False]
        assert flags[3] is True  # saturated on an MLC page


class TestFixedBaseline:
    def test_fixed_controller_retires_immediately(self):
        geometry = FlashGeometry(frames_per_block=4, num_blocks=4)
        device = FlashDevice(
            geometry=geometry,
            lifetime_model=CellLifetimeModel(WearModelConfig()), seed=3)
        controller = FixedEccController(device, strength=1)
        threshold = device.next_error_damage(0, 0, 0)
        device.age_block(0, threshold / 10 * 1.001)
        controller.read(PageAddress(0, 0, 0))
        assert controller.is_retired(0)
        assert controller.stats.descriptor_updates == 0

    def test_all_blocks_retired_flag(self):
        geometry = FlashGeometry(frames_per_block=2, num_blocks=2)
        device = FlashDevice(
            geometry=geometry,
            lifetime_model=CellLifetimeModel(WearModelConfig()), seed=3)
        controller = FixedEccController(device)
        assert not controller.all_blocks_retired
        for block in range(2):
            threshold = device.next_error_damage(block, 0, 0)
            device.age_block(block, threshold / 10 * 1.001)
            controller.read(PageAddress(block, 0, 0))
        assert controller.all_blocks_retired
