"""Unit and property tests for GF(2^m) arithmetic and polynomials."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.galois import GF2m, GF2Poly, GFPoly, PRIMITIVE_POLYNOMIALS

FIELD = GF2m(8)
SMALL_FIELD = GF2m(4)

nonzero_elements = st.integers(min_value=1, max_value=FIELD.size)
elements = st.integers(min_value=0, max_value=FIELD.size)


class TestFieldConstruction:
    def test_all_supported_degrees_build(self):
        for m in PRIMITIVE_POLYNOMIALS:
            field = GF2m(m)
            assert field.order == 1 << m

    def test_rejects_unknown_degree(self):
        with pytest.raises(ValueError):
            GF2m(25)

    def test_rejects_wrong_degree_polynomial(self):
        with pytest.raises(ValueError):
            GF2m(4, primitive_poly=0b1011)  # degree 3 poly for m=4

    def test_rejects_non_primitive_polynomial(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive.
        with pytest.raises(ValueError):
            GF2m(4, primitive_poly=0b11111)

    def test_exp_log_are_inverse_bijections(self):
        seen = set()
        for power in range(SMALL_FIELD.size):
            value = SMALL_FIELD.alpha_pow(power)
            assert SMALL_FIELD.log(value) == power
            seen.add(value)
        assert len(seen) == SMALL_FIELD.size

    def test_equality_and_hash(self):
        assert GF2m(8) == GF2m(8)
        assert GF2m(8) != GF2m(7)
        assert hash(GF2m(8)) == hash(GF2m(8))


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_addition_is_xor_and_self_inverse(self, a, b):
        assert FIELD.add(a, b) == a ^ b
        assert FIELD.add(FIELD.add(a, b), b) == a

    @given(a=elements, b=elements, c=elements)
    def test_multiplication_associative(self, a, b, c):
        assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))

    @given(a=elements, b=elements)
    def test_multiplication_commutative(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_distributive(self, a, b, c):
        left = FIELD.mul(a, b ^ c)
        right = FIELD.mul(a, b) ^ FIELD.mul(a, c)
        assert left == right

    @given(a=nonzero_elements)
    def test_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(a=nonzero_elements, b=nonzero_elements)
    def test_div_is_mul_by_inverse(self, a, b):
        assert FIELD.div(a, b) == FIELD.mul(a, FIELD.inv(b))

    @given(a=nonzero_elements,
           e=st.integers(min_value=-300, max_value=300))
    def test_pow_matches_repeated_multiplication(self, a, e):
        expected = 1
        base = a if e >= 0 else FIELD.inv(a)
        for _ in range(abs(e)):
            expected = FIELD.mul(expected, base)
        assert FIELD.pow(a, e) == expected

    def test_zero_division_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    def test_elements_iterates_whole_field(self):
        assert len(set(FIELD.elements())) == FIELD.order


class TestMinimalPolynomials:
    def test_minimal_polynomial_annihilates_element(self):
        for power in (1, 2, 3, 5):
            element = SMALL_FIELD.alpha_pow(power)
            minimal = SMALL_FIELD.minimal_polynomial(element)
            assert minimal.evaluate(SMALL_FIELD, element) == 0

    def test_minimal_polynomial_of_alpha_is_primitive_poly(self):
        minimal = SMALL_FIELD.minimal_polynomial(2)
        assert minimal.bits == SMALL_FIELD.primitive_poly

    def test_conjugates_share_minimal_polynomial(self):
        a = SMALL_FIELD.alpha_pow(3)
        conj = SMALL_FIELD.mul(a, a)
        assert (SMALL_FIELD.minimal_polynomial(a)
                == SMALL_FIELD.minimal_polynomial(conj))


poly_bits = st.integers(min_value=0, max_value=(1 << 24) - 1)


class TestGF2Poly:
    def test_degree(self):
        assert GF2Poly(0).degree == -1
        assert GF2Poly(1).degree == 0
        assert GF2Poly(0b1011).degree == 3

    def test_from_coefficients_roundtrip(self):
        poly = GF2Poly.from_coefficients([1, 0, 1, 1])
        assert poly.bits == 0b1101

    def test_from_coefficients_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GF2Poly.from_coefficients([1, 2])

    @given(a=poly_bits, b=poly_bits)
    def test_addition_is_xor(self, a, b):
        assert GF2Poly(a).add(GF2Poly(b)).bits == a ^ b

    @given(a=poly_bits, b=st.integers(min_value=1, max_value=(1 << 12) - 1))
    def test_divmod_reconstructs(self, a, b):
        dividend, divisor = GF2Poly(a), GF2Poly(b)
        quotient, remainder = dividend.divmod(divisor)
        assert quotient.mul(divisor).add(remainder) == dividend
        assert remainder.degree < divisor.degree

    @given(a=poly_bits, b=poly_bits)
    def test_multiplication_degree_adds(self, a, b):
        pa, pb = GF2Poly(a), GF2Poly(b)
        product = pa.mul(pb)
        if a == 0 or b == 0:
            assert product.is_zero()
        else:
            assert product.degree == pa.degree + pb.degree

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF2Poly(0b101).divmod(GF2Poly(0))

    @given(a=st.integers(min_value=1, max_value=(1 << 10) - 1),
           b=st.integers(min_value=1, max_value=(1 << 10) - 1))
    def test_gcd_divides_both(self, a, b):
        gcd = GF2Poly(a).gcd(GF2Poly(b))
        assert GF2Poly(a).mod(gcd).is_zero()
        assert GF2Poly(b).mod(gcd).is_zero()

    @given(a=st.integers(min_value=1, max_value=(1 << 8) - 1),
           b=st.integers(min_value=1, max_value=(1 << 8) - 1))
    def test_lcm_is_multiple_of_both(self, a, b):
        lcm = GF2Poly(a).lcm(GF2Poly(b))
        assert lcm.mod(GF2Poly(a)).is_zero()
        assert lcm.mod(GF2Poly(b)).is_zero()

    def test_repr_readable(self):
        assert repr(GF2Poly(0b1011)) == "GF2Poly(x^3 + x + 1)"


class TestGFPoly:
    def test_trims_leading_zeros(self):
        poly = GFPoly(SMALL_FIELD, [1, 2, 0, 0])
        assert poly.coeffs == [1, 2]
        assert poly.degree == 1

    def test_evaluate_horner(self):
        # p(x) = 3 + 2x + x^2 over GF(16), at x = 1: 3 ^ 2 ^ 1 = 0.
        poly = GFPoly(SMALL_FIELD, [3, 2, 1])
        assert poly.evaluate(1) == 0

    def test_mul_matches_known_product(self):
        # (x + 1)(x + 1) = x^2 + 1 in characteristic 2.
        one_plus_x = GFPoly(SMALL_FIELD, [1, 1])
        product = one_plus_x.mul(one_plus_x)
        assert product.coeffs == [1, 0, 1]

    def test_derivative_drops_even_terms(self):
        poly = GFPoly(SMALL_FIELD, [5, 4, 3, 2, 1])
        derivative = poly.derivative()
        assert derivative.coeffs == [4, 0, 2]

    def test_shift(self):
        poly = GFPoly(SMALL_FIELD, [1, 2])
        assert poly.shift(2).coeffs == [0, 0, 1, 2]
        with pytest.raises(ValueError):
            poly.shift(-1)

    def test_cross_field_operations_rejected(self):
        a = GFPoly(SMALL_FIELD, [1])
        b = GFPoly(FIELD, [1])
        with pytest.raises(ValueError):
            a.add(b)
