"""Cross-module integration tests.

These exercise the real end-to-end paths the unit tests stub around:
functional BCH protecting real bytes on a wearing device, the full
hierarchy aging under traffic, and experiment runners at reduced scale.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cache import FlashCacheConfig, FlashDiskCache
from repro.core.controller import ProgrammableFlashController
from repro.core.hierarchy import build_flash_system
from repro.ecc.bch import BCHDecodeFailure, design_code_for_page
from repro.ecc.crc import Crc32
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.timing import CellMode
from repro.flash.wear import CellLifetimeModel, WearModelConfig
from repro.workloads.macro import build_workload


class TestFunctionalEccOnDevice:
    """Store real encoded pages on the device and repair injected errors —
    the complete section 4.1 datapath with actual bytes."""

    def test_page_survives_bit_errors_via_bch_plus_crc(self):
        rng = random.Random(77)
        code = design_code_for_page(256, t=4)  # small page for speed
        geometry = FlashGeometry(page_data_bytes=256, frames_per_block=2,
                                 num_blocks=2)
        device = FlashDevice(geometry=geometry, store_data=True)

        payload = bytes(rng.randrange(256) for _ in range(256))
        stored, parity = code.encode(payload)
        crc = Crc32().update(payload).digest()
        device.program_page(PageAddress(0, 0, 0), stored)

        raw = device.read_page(PageAddress(0, 0, 0)).data
        corrupted = bytearray(raw)
        for index in rng.sample(range(256), 3):
            corrupted[index] ^= 1 << rng.randrange(8)

        decoded, corrected = code.decode(bytes(corrupted), parity)
        assert corrected == 3
        assert Crc32.check(decoded, crc)

    def test_overwhelmed_code_caught_by_crc(self):
        rng = random.Random(78)
        code = design_code_for_page(64, t=2)
        payload = bytes(rng.randrange(256) for _ in range(64))
        _, parity = code.encode(payload)
        crc = Crc32().update(payload).digest()
        corrupted = bytearray(payload)
        for index in rng.sample(range(64), 12):
            corrupted[index] ^= 0xFF
        try:
            decoded, _ = code.decode(bytes(corrupted), parity)
        except BCHDecodeFailure:
            return  # detected outright
        assert not Crc32.check(decoded, crc)


class TestWearingCacheEndToEnd:
    def test_cache_survives_wear_and_reconfigures(self):
        """Run a cache over a wearing device long enough for pages to hit
        their correction limits; the controller must reconfigure and the
        cache must keep serving."""
        geometry = FlashGeometry(frames_per_block=4, num_blocks=8)
        device = FlashDevice(
            geometry=geometry,
            lifetime_model=CellLifetimeModel(WearModelConfig()),
            seed=5,
        )
        controller = ProgrammableFlashController(device)
        cache = FlashDiskCache(controller, FlashCacheConfig(
            hot_promotion=False))
        # Pre-age every block close to the MLC limit so traffic tips pages
        # over their thresholds quickly.
        for block in range(8):
            threshold = device.next_error_damage(block, 0, 0)
            device.age_block(block, threshold / 10.0 * 0.95)
        rng = random.Random(1)
        served = 0
        for index in range(4000):
            lba = rng.randrange(64)
            if rng.random() < 0.7:
                outcome = cache.read(lba)
                if outcome is None or not outcome.recovered:
                    cache.insert_clean(lba)
                else:
                    served += 1
            else:
                cache.write(lba)
        assert served > 0
        assert controller.stats.descriptor_updates > 0

    def test_full_system_with_wear_runs(self):
        system = build_flash_system(
            dram_bytes=1 << 20, flash_bytes=4 << 20,
            lifetime_model=CellLifetimeModel(WearModelConfig()),
        )
        trace = build_workload("alpha2", num_records=5000,
                               footprint_pages=4096, seed=4)
        system.run(trace)
        system.drain()
        assert system.stats.requests == 5000
        assert system.flash.stats.read_hits > 0


class TestExperimentRunnersSmoke:
    """Each figure runner executes at reduced scale and keeps its shape."""

    def test_fig1b_shape(self):
        from repro.experiments.fig1b_gc import run_gc_overhead_sweep
        points = run_gc_overhead_sweep(
            occupancies=(0.2, 0.5, 0.9), flash_blocks=16,
            writes_per_page=2.0)
        overheads = [p.gc_overhead for p in points]
        assert overheads[0] < overheads[-1]
        assert points[-1].normalized_overhead == pytest.approx(
            overheads[-1] / 0.10)

    def test_fig4_shape(self):
        from repro.experiments.fig4_split import run_split_sweep
        points = run_split_sweep(flash_sizes_mb=(384, 640),
                                 scale_divisor=64, num_records=120_000)
        # Split wins at the larger sizes and the gap grows (Figure 4).
        assert points[-1].split_miss_rate < points[-1].unified_miss_rate
        assert points[-1].improvement >= points[0].improvement - 0.02

    def test_fig6_series(self):
        from repro.experiments.fig6_ecc import (
            run_decode_latency_series, run_tolerable_cycles_series)
        latencies = run_decode_latency_series(t_values=(2, 6, 11))
        assert latencies[0].total_us < latencies[-1].total_us
        cycles = run_tolerable_cycles_series(t_values=(0, 5, 10))
        assert cycles[0.20][-1][1] > cycles[0.05][-1][1]

    def test_fig7_shapes(self):
        from repro.experiments.fig7_density import run_density_partition
        financial = run_density_partition(
            "financial2", area_fractions=(0.5, 2.2), grid_points=21)
        websearch = run_density_partition(
            "websearch1", area_fractions=(0.5, 2.2), grid_points=21)
        # Paper: Financial2 mostly SLC at half WSS; WebSearch1 mostly MLC.
        assert financial.points[0].optimal_slc_fraction > 0.5
        assert websearch.points[0].optimal_slc_fraction < 0.15

    def test_fig9_direction(self):
        from repro.experiments.fig9_power import run_power_comparison
        result = run_power_comparison("specweb99", scale_divisor=128,
                                      num_records=40_000,
                                      warmup_records=30_000)
        assert result.power_ratio > 1.0

    def test_fig10_degrades_gracefully(self):
        from repro.experiments.fig10_ecc_throughput import \
            run_ecc_throughput_sweep
        points = run_ecc_throughput_sweep(
            "specweb99", strengths=(1, 20), scale_divisor=128,
            num_records=20_000)
        assert points[0].relative_bandwidth == pytest.approx(1.0)
        assert 0.3 < points[1].relative_bandwidth < 1.0

    def test_fig11_tail_trend(self):
        from repro.experiments.fig11_reconfig import run_reconfig_breakdown
        rows = run_reconfig_breakdown(
            workloads=("uniform", "exp2"), num_blocks=8, frames_per_block=4)
        by_name = {row.workload: row for row in rows}
        assert by_name["uniform"].code_strength_fraction \
            > by_name["exp2"].code_strength_fraction

    def test_fig12_improvement(self):
        from repro.experiments.fig12_lifetime import (
            average_improvement, run_lifetime_comparison)
        rows = run_lifetime_comparison(workloads=("alpha2", "exp1"),
                                       num_blocks=8, frames_per_block=4)
        assert all(row.improvement > 3.0 for row in rows)
        assert average_improvement(rows) > 3.0
        assert max(row.normalized_programmable for row in rows) \
            == pytest.approx(1.0)
