"""Error-process model, scrub policy, and regime-simulation tests.

Covers the :mod:`repro.reliability` determinism contract (per-frame
streams, order-independent block multipliers, RNG-free scrub
decisions), the physics shapes (retention growth, wear acceleration,
history resets), the device/controller/cache threading (clock,
``refresh_block``, ``scrub_page``), byte-identity when the model is
off, and the regime simulator's headline result — the adaptive
controller outliving the fixed-ECC baseline.
"""

from __future__ import annotations

import pytest

from repro.core.hierarchy import build_flash_system
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.timing import CellMode
from repro.reliability import (
    ReliabilityConfig,
    ReliabilityModel,
    ScrubConfig,
    Scrubber,
)
from repro.sim.engine import run_trace
from repro.sim.lifetime import (
    ErrorRegime,
    RegimeConfig,
    RegimeSimulator,
    simulate_regime,
    standard_regimes,
)
from repro.workloads.macro import build_workload


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------


class TestReliabilityConfig:
    @pytest.mark.parametrize("field", [
        "base_rber", "retention_rber_per_unit",
        "read_disturb_rber_per_read", "interference_rber_per_program",
    ])
    def test_each_rber_field_rejects_outside_unit_interval(self, field):
        ReliabilityConfig(**{field: 1.0})  # the legal maximum
        with pytest.raises(ValueError, match=field):
            ReliabilityConfig(**{field: 1.0000001})
        with pytest.raises(ValueError, match=field):
            ReliabilityConfig(**{field: -0.1})

    def test_shape_parameter_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(retention_unit_us=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(spec_cycles=-1.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(block_sigma=-0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(mlc_factor=0.5)

    def test_any_enabled(self):
        assert not ReliabilityConfig().any_enabled
        assert not ReliabilityConfig.uniform(0.0).any_enabled
        assert ReliabilityConfig(base_rber=1e-6).any_enabled
        assert ReliabilityConfig.uniform(1e-6).any_enabled

    def test_uniform_derives_rate_hierarchy(self):
        cfg = ReliabilityConfig.uniform(1e-5, seed=9)
        assert cfg.base_rber == 1e-5
        assert cfg.retention_rber_per_unit > cfg.base_rber
        assert cfg.read_disturb_rber_per_read < cfg.base_rber
        assert cfg.interference_rber_per_program < cfg.base_rber
        assert cfg.seed == 9


class TestScrubConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScrubConfig(interval_us=0.0)
        with pytest.raises(ValueError):
            ScrubConfig(min_age_us=-1.0)
        with pytest.raises(ValueError):
            ScrubConfig(max_pages_per_pass=0)

    def test_scrubber_requires_a_model(self):
        system = build_flash_system(dram_bytes=1 << 20,
                                    flash_bytes=1 << 22)
        with pytest.raises(ValueError, match="ReliabilityModel"):
            Scrubber(system.flash)

    def test_build_rejects_scrub_without_reliability(self):
        with pytest.raises(ValueError, match="reliability_config"):
            build_flash_system(dram_bytes=1 << 20, flash_bytes=1 << 22,
                               scrub_config=ScrubConfig())


# ---------------------------------------------------------------------------
# Determinism contract
# ---------------------------------------------------------------------------


def _model(**overrides) -> ReliabilityModel:
    defaults = dict(base_rber=1e-4, retention_rber_per_unit=1e-4,
                    read_disturb_rber_per_read=1e-6, block_sigma=0.4,
                    seed=17)
    defaults.update(overrides)
    return ReliabilityModel(ReliabilityConfig(**defaults))


class TestDeterminism:
    def test_same_seed_same_per_frame_error_counts(self):
        a, b = _model(), _model()
        draws_a = [a.read_errors(0, 1, 100.0, CellMode.MLC, 1e9, 16896)
                   for _ in range(50)]
        draws_b = [b.read_errors(0, 1, 100.0, CellMode.MLC, 1e9, 16896)
                   for _ in range(50)]
        assert draws_a == draws_b

    def test_frames_draw_from_independent_streams(self):
        """A frame's error counts depend only on its own history: reads
        of *other* frames interleaved between its reads change nothing."""
        plain, interleaved = _model(), _model()
        alone = [plain.read_errors(2, 3, 50.0, CellMode.SLC, 1e9, 16896)
                 for _ in range(30)]
        mixed = []
        for _ in range(30):
            interleaved.read_errors(0, 0, 50.0, CellMode.SLC, 1e9, 16896)
            interleaved.read_errors(5, 1, 50.0, CellMode.SLC, 1e9, 16896)
            mixed.append(interleaved.read_errors(2, 3, 50.0, CellMode.SLC,
                                                 1e9, 16896))
        assert alone == mixed

    def test_block_multiplier_is_order_independent(self):
        ascending, descending = _model(), _model()
        up = [ascending.block_multiplier(b) for b in range(32)]
        down = [descending.block_multiplier(b) for b in reversed(range(32))]
        assert up == list(reversed(down))
        assert len(set(up)) > 1  # variation actually present

    def test_expected_rber_consumes_no_rng(self):
        """Scrub policy polls expected_rber freely; the polled and
        unpolled models must keep identical draw streams."""
        polled, unpolled = _model(), _model()
        for _ in range(100):
            polled.expected_rber(1, 1, 10.0, CellMode.MLC, 5e9)
        a = [polled.read_errors(1, 1, 10.0, CellMode.MLC, 5e9, 16896)
             for _ in range(20)]
        b = [unpolled.read_errors(1, 1, 10.0, CellMode.MLC, 5e9, 16896)
             for _ in range(20)]
        assert a == b


# ---------------------------------------------------------------------------
# Physics shapes
# ---------------------------------------------------------------------------


class TestErrorPhysics:
    def test_retention_grows_with_age_and_resets_on_program(self):
        model = _model(block_sigma=0.0)
        young = model.expected_rber(0, 0, 0.0, CellMode.SLC, 1e9)
        old = model.expected_rber(0, 0, 0.0, CellMode.SLC, 50e9)
        assert old > young
        model.note_program(0, 0, 50e9)
        fresh = model.expected_rber(0, 0, 0.0, CellMode.SLC, 50e9)
        assert fresh == pytest.approx(
            model.config.base_rber, rel=1e-12)

    def test_read_disturb_accumulates_and_erase_clears(self):
        model = _model(block_sigma=0.0)
        model.note_program(3, 1, 0.0)
        base = model.expected_rber(3, 1, 0.0, CellMode.SLC, 0.0)
        for _ in range(1000):
            model.note_read(3, 1)
        disturbed = model.expected_rber(3, 1, 0.0, CellMode.SLC, 0.0)
        assert disturbed > base
        model.note_erase(3, 0.0, frames=4)
        assert model.expected_rber(3, 1, 0.0, CellMode.SLC, 0.0) \
            == pytest.approx(base)

    def test_wear_accelerates_every_process(self):
        model = _model(block_sigma=0.0)
        fresh = model.expected_rber(0, 0, 0.0, CellMode.MLC, 1e9)
        worn = model.expected_rber(0, 0, 10_000.0, CellMode.MLC, 1e9)
        assert worn == pytest.approx(fresh * 4.0)  # (1 + 1)**2

    def test_mlc_is_less_robust_than_slc(self):
        model = _model(block_sigma=0.0)
        slc = model.expected_rber(0, 0, 0.0, CellMode.SLC, 1e9)
        mlc = model.expected_rber(0, 0, 0.0, CellMode.MLC, 1e9)
        assert mlc == pytest.approx(slc * model.config.mlc_factor)

    def test_interference_only_hits_neighbours(self):
        model = _model(block_sigma=0.0,
                       interference_rber_per_program=1e-4)
        for frame in range(3):
            model.note_program(0, frame, 0.0)
        model.note_program(0, 1, 0.0)  # middle frame rewritten
        middle = model.expected_rber(0, 1, 0.0, CellMode.SLC, 0.0)
        edge = model.expected_rber(0, 0, 0.0, CellMode.SLC, 0.0)
        assert edge > middle  # neighbours absorbed the interference

    def test_poisson_saturation_shortcut(self):
        model = _model(base_rber=0.5, block_sigma=0.0)
        count = model.read_errors(0, 0, 0.0, CellMode.SLC, 0.0, 16896)
        assert count == pytest.approx(16896 * 0.5, rel=0.01)
        assert model.stats.saturated_reads == 1


# ---------------------------------------------------------------------------
# Device threading
# ---------------------------------------------------------------------------


class TestDeviceIntegration:
    def _device(self, **cfg):
        model = ReliabilityModel(ReliabilityConfig(**cfg))
        device = FlashDevice(
            geometry=FlashGeometry(frames_per_block=4, num_blocks=4),
            initial_mode=CellMode.SLC, seed=3, reliability=model)
        return device, model

    def test_clock_advances_with_operation_latency(self):
        device, _ = self._device(base_rber=1e-6)
        assert device.clock_us == 0.0
        address = PageAddress(0, 0, 0)
        device.erase_block(0)
        device.program_page(address)
        device.read_page(address)
        assert device.clock_us > 0.0
        before = device.clock_us
        device.advance_clock(1e6)
        assert device.clock_us == before + 1e6
        with pytest.raises(ValueError):
            device.advance_clock(-1.0)

    def test_reads_see_model_errors_and_history_hooks_fire(self):
        device, model = self._device(base_rber=5e-4)
        address = PageAddress(0, 0, 0)
        device.erase_block(0)
        device.program_page(address)
        errors = [device.read_page(address).raw_bit_errors
                  for _ in range(40)]
        assert model.stats.modelled_reads == 40
        assert sum(errors) > 0
        assert model._state(0, 0).reads_since_program == 40

    def test_program_resets_retention_age(self):
        device, model = self._device(base_rber=1e-6)
        address = PageAddress(0, 0, 0)
        device.erase_block(0)
        device.advance_clock(5e9)
        device.program_page(address)
        age = model.retention_age_us(0, 0, device.clock_us)
        assert age < 1e6  # only the program latency itself


# ---------------------------------------------------------------------------
# Byte-identity with the model disabled
# ---------------------------------------------------------------------------


class TestDisabledIsIdentical:
    def _run(self, reliability_config, num_records=1500):
        system = build_flash_system(
            dram_bytes=1 << 20, flash_bytes=1 << 22,
            reliability_config=reliability_config)
        records = build_workload("dbt2", num_records=num_records,
                                 footprint_pages=2048, seed=11)
        return run_trace(system, records)

    def test_zero_rate_config_is_bit_identical_to_no_config(self):
        baseline = self._run(None)
        zero = self._run(ReliabilityConfig.uniform(0.0))
        assert zero.reliability is None  # no model was attached at all
        assert zero.scrub is None
        assert zero.average_latency_us == baseline.average_latency_us
        assert zero.wall_clock_us == baseline.wall_clock_us
        assert zero.flash_miss_rate == baseline.flash_miss_rate
        assert zero.disk_reads == baseline.disk_reads
        assert zero.disk_writes == baseline.disk_writes


# ---------------------------------------------------------------------------
# Scrubbing: trace path (cache.scrub_page via Scrubber)
# ---------------------------------------------------------------------------


class TestTraceScrub:
    def _scrubbed_system(self, retention=3e-5, interval_us=1e5):
        return build_flash_system(
            dram_bytes=1 << 20, flash_bytes=1 << 22,
            reliability_config=ReliabilityConfig(
                base_rber=1e-7, retention_rber_per_unit=retention,
                retention_unit_us=1e6, seed=23),
            scrub_config=ScrubConfig(interval_us=interval_us,
                                     min_age_us=interval_us))

    def test_scrub_runs_and_refreshes_pages(self):
        system = self._scrubbed_system()
        records = build_workload("dbt2", num_records=4000,
                                 footprint_pages=2048, seed=11)
        report = run_trace(system, records)
        scrub = report.scrub
        assert scrub is not None
        assert scrub.passes > 0
        assert scrub.page_rewrites > 0
        assert scrub.busy_us > 0.0
        # Rewrites reset retention age: a scrubbed page's age is bounded
        # by the scrub cadence, not the trace length.
        assert report.reliability is not None
        assert report.reliability.modelled_reads > 0

    def test_scrub_decisions_are_deterministic(self):
        def run_once():
            system = self._scrubbed_system()
            records = build_workload("dbt2", num_records=3000,
                                     footprint_pages=2048, seed=11)
            report = run_trace(system, records)
            scrub = report.scrub
            return (scrub.passes, scrub.pages_scanned, scrub.scrub_reads,
                    scrub.page_rewrites, scrub.uncorrectable_found,
                    scrub.busy_us, report.reliability.error_bits)

        assert run_once() == run_once()

    def test_scrub_page_preserves_dirtiness(self):
        system = self._scrubbed_system(interval_us=1e12)  # never auto-runs
        flash = system.flash
        flash.write(77)
        assert 77 in flash._dirty
        address = flash.fcht.lookup(77)
        outcome = flash.scrub_page(77)
        assert outcome.refreshed
        assert 77 in flash._dirty  # rewrite does not launder dirtiness
        assert flash.fcht.lookup(77) is not None
        assert flash.fcht.lookup(77) != address  # moved out of place

    def test_scrub_page_on_unmapped_lba_is_a_noop(self):
        system = self._scrubbed_system(interval_us=1e12)
        outcome = system.flash.scrub_page(12345)
        assert not outcome.refreshed
        assert outcome.latency_us == 0.0


# ---------------------------------------------------------------------------
# Controller refresh (regime path)
# ---------------------------------------------------------------------------


class TestRefreshBlock:
    def test_refresh_rewrites_valid_pages_in_place(self):
        model = ReliabilityModel(ReliabilityConfig(base_rber=1e-7, seed=5))
        device = FlashDevice(
            geometry=FlashGeometry(frames_per_block=4, num_blocks=2),
            initial_mode=CellMode.SLC, seed=3, reliability=model)
        from repro.core.controller import ProgrammableFlashController
        controller = ProgrammableFlashController(device)
        addresses = [PageAddress(0, frame, 0) for frame in range(4)]
        for i, address in enumerate(addresses):
            controller.program(address, lba=100 + i)
            controller.fpst.entry(address).access_count = 7 * (i + 1)
        device.advance_clock(1e9)
        elapsed = controller.refresh_block(0)
        assert elapsed > 0.0
        for i, address in enumerate(addresses):
            entry = controller.fpst.entry(address)
            assert entry.valid
            assert entry.lba == 100 + i
            # +1: the refresh itself read the page once.
            assert entry.access_count == 7 * (i + 1) + 1
        # The erase reset every frame's retention clock.
        assert model.retention_age_us(0, 0, device.clock_us) < 1e9


# ---------------------------------------------------------------------------
# Regime simulation
# ---------------------------------------------------------------------------


class TestRegimes:
    def test_regime_validation(self):
        with pytest.raises(ValueError):
            ErrorRegime(name="x", reliability=ReliabilityConfig(),
                        cycles_per_step=-1.0)
        with pytest.raises(ValueError):
            ErrorRegime(name="x", reliability=ReliabilityConfig(),
                        write_fraction=0.0)
        with pytest.raises(ValueError):
            RegimeConfig(regime=standard_regimes()["archival_cold"],
                         controller="nonsense")

    def test_standard_regimes_cover_the_three_scenarios(self):
        regimes = standard_regimes()
        assert set(regimes) == {"archival_cold", "write_hot",
                                "aged_device"}
        assert regimes["archival_cold"].dwell_us_per_step \
            > regimes["write_hot"].dwell_us_per_step
        assert regimes["write_hot"].cycles_per_step \
            > regimes["archival_cold"].cycles_per_step
        assert regimes["aged_device"].initial_cycles > 0

    def test_same_seed_reproduces_the_trajectory(self):
        def run_once():
            r = simulate_regime("aged_device", "programmable", seed=7,
                                max_steps=60)
            return (r.steps_run, r.probe_reads, r.uncorrectable_reads,
                    r.host_accesses, r.reliability.error_bits,
                    r.controller_stats.ecc_reconfigs,
                    r.controller_stats.density_reconfigs)

        assert run_once() == run_once()

    def test_adaptive_controller_outlives_fixed_ecc(self):
        """The acceptance headline: in every regime the programmable
        controller sustains more host accesses than BCH-1 before total
        failure (checked on the fastest regime here; the full three-way
        comparison is the fig13 sweep)."""
        adaptive = simulate_regime("write_hot", "programmable", seed=42,
                                   max_steps=120)
        fixed = simulate_regime("write_hot", "bch1", seed=42,
                                max_steps=120)
        assert not fixed.survived
        assert adaptive.host_accesses > fixed.host_accesses

    def test_scrub_reduces_uncorrectable_errors_on_cold_data(self):
        scrub = ScrubConfig(interval_us=5e9, min_age_us=1e10)
        unscrubbed = simulate_regime("archival_cold", "programmable",
                                     seed=42, max_steps=150)
        scrubbed = simulate_regime("archival_cold", "programmable",
                                   seed=42, max_steps=150, scrub=scrub)
        assert scrubbed.scrub is not None
        assert scrubbed.scrub.blocks_refreshed > 0
        assert scrubbed.uncorrectable_reads \
            < unscrubbed.uncorrectable_reads
        assert scrubbed.uber < unscrubbed.uber

    def test_simulator_charges_scrub_traffic_to_the_device(self):
        config = RegimeConfig(
            regime=standard_regimes()["archival_cold"], seed=42,
            max_steps=60, scrub=ScrubConfig(interval_us=5e9,
                                            min_age_us=1e10))
        simulator = RegimeSimulator(config)
        result = simulator.run()
        assert result.scrub is not None
        if result.scrub.blocks_refreshed:
            assert result.scrub.scrub_reads > 0
            assert result.scrub.page_rewrites > 0
            assert result.scrub.busy_us > 0.0
