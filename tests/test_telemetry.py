"""Telemetry subsystem: events, metrics math, sampling, exporters, and
the zero-perturbation contract (instrumented runs report the exact same
simulation results as un-instrumented ones)."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.controller import ControllerConfig
from repro.core.hierarchy import build_flash_system
from repro.faults.injector import FaultConfig
from repro.sim.engine import run_trace
from repro.sim.server import ServerModel
from repro.telemetry import (
    Event,
    EventBus,
    EventKind,
    LatencyHistogram,
    MetricsRegistry,
    Telemetry,
    TimeSeries,
    TraceSampler,
)
from repro.telemetry.export import (
    histograms_to_csv,
    series_to_csv,
    telemetry_to_dict,
    to_json,
    write_csv,
    write_json,
)
from repro.workloads.macro import build_workload


def _build_system(fault_rate: float = 0.0, seed: int = 3):
    fault_config = (FaultConfig.uniform(fault_rate, seed=seed)
                    if fault_rate > 0.0 else None)
    return build_flash_system(
        dram_bytes=2 << 20, flash_bytes=8 << 20,
        controller_config=ControllerConfig(read_retry_max=2),
        fault_config=fault_config, seed=seed)


def _trace(num_records: int = 3000, seed: int = 3):
    return build_workload("dbt2", num_records=num_records,
                          footprint_pages=8192, seed=seed)


class TestEventBus:
    def test_no_subscribers_publishes_nothing(self):
        bus = EventBus()
        assert not bus.wants(EventKind.READ)
        bus.publish(Event(EventKind.READ, "x"))
        assert bus.published == 1  # publish still counts if called

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kind=EventKind.GC)
        assert bus.wants(EventKind.GC)
        assert not bus.wants(EventKind.READ)
        bus.publish(Event(EventKind.GC, "flash", value=4.0))
        assert len(seen) == 1 and seen[0].kind is EventKind.GC

    def test_wildcard_subscriber_sees_all_kinds(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        for kind in (EventKind.READ, EventKind.FAULT, EventKind.DEGRADE):
            assert bus.wants(kind)
            bus.publish(Event(kind, "t"))
        assert [e.kind for e in seen] == [
            EventKind.READ, EventKind.FAULT, EventKind.DEGRADE]

    def test_telemetry_hooks_reach_subscribers(self):
        telemetry = Telemetry()
        faults = []
        telemetry.bus.subscribe(faults.append, kind=EventKind.FAULT)
        telemetry.nand_fault("program")
        telemetry.flash_read(100.0, retries=1, recovered=False)
        assert len(faults) == 2
        assert faults[0].detail == "program"
        assert faults[1].detail == "uncorrectable"


class TestLatencyHistogram:
    def test_empty_histogram(self):
        hist = LatencyHistogram("h")
        assert hist.count == 0
        assert hist.percentile(50.0) == 0.0
        assert hist.p99 == 0.0
        assert hist.mean == 0.0
        assert hist.summary()["min"] == 0.0

    def test_single_sample_percentiles_exact(self):
        hist = LatencyHistogram("h")
        hist.observe(3.7)
        # Clamping to [min, max] makes every percentile the sample itself.
        for p in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert hist.percentile(p) == pytest.approx(3.7)

    def test_bucket_boundary_sample_lands_in_owning_bucket(self):
        # Edges are upper-inclusive: a sample exactly on an edge belongs
        # to that edge's bucket (bisect_left semantics).
        hist = LatencyHistogram("h", edges=(10.0, 20.0, 50.0))
        hist.observe(10.0)
        hist.observe(20.0)
        assert hist.counts == [1, 1, 0]
        assert hist.overflow == 0

    def test_overflow_and_max(self):
        hist = LatencyHistogram("h", edges=(10.0, 20.0))
        for v in (5.0, 15.0, 1000.0):
            hist.observe(v)
        assert hist.overflow == 1
        assert hist.max == 1000.0
        # The p99 rank lands in the unbounded overflow bucket; the
        # observed max is the reported bound.
        assert hist.percentile(99.0) == 1000.0

    def test_interpolation_inside_bucket(self):
        hist = LatencyHistogram("h", edges=(10.0, 20.0))
        # 10 samples spread through (10, 20]: median interpolates inside.
        for v in range(11, 21):
            hist.observe(float(v))
        p50 = hist.percentile(50.0)
        assert 10.0 < p50 < 20.0
        assert hist.min == 11.0 and hist.max == 20.0

    def test_percentile_monotone(self):
        hist = LatencyHistogram("h")
        for v in (0.5, 3.0, 40.0, 90.0, 800.0, 4000.0, 70_000.0, 250_000.0):
            hist.observe(v)
        values = [hist.percentile(p) for p in (10, 25, 50, 75, 90, 99)]
        assert values == sorted(values)

    def test_rejects_bad_edges_and_percentiles(self):
        with pytest.raises(ValueError):
            LatencyHistogram("h", edges=(5.0, 5.0))
        with pytest.raises(ValueError):
            LatencyHistogram("h", edges=())
        hist = LatencyHistogram("h")
        with pytest.raises(ValueError):
            hist.percentile(101.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(7.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"]["count"] == 1


class TestTraceSampler:
    def test_multi_window_jump_samples_once(self):
        telemetry = Telemetry(sample_interval=10)
        system = _build_system()
        sampler = TraceSampler(telemetry, system, interval=10)
        sampler.maybe_sample(35)  # jumped three windows at once
        series = telemetry.timeseries["flash_miss_rate"]
        assert series.xs == [35]
        sampler.maybe_sample(39)  # still inside the landed window
        assert series.xs == [35]
        sampler.maybe_sample(40)
        assert series.xs == [35, 40]

    def test_finalize_skips_duplicate_position(self):
        telemetry = Telemetry(sample_interval=10)
        system = _build_system()
        sampler = TraceSampler(telemetry, system, interval=10)
        sampler.maybe_sample(10)
        sampler.finalize(10)
        assert telemetry.timeseries["flash_miss_rate"].xs == [10]
        sampler.finalize(13)
        assert telemetry.timeseries["flash_miss_rate"].xs == [10, 13]

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TraceSampler(Telemetry(), _build_system(), interval=0)
        with pytest.raises(ValueError):
            Telemetry(sample_interval=0)


class TestRunTraceTelemetry:
    def test_disabled_run_has_no_telemetry_fields(self):
        report = run_trace(_build_system(), _trace(800))
        assert report.read_latency is None
        assert report.timeseries is None
        assert report.read_latency_p50 is None
        assert report.write_latency_p99 is None

    def test_instrumented_run_matches_plain_run_exactly(self):
        """The zero-perturbation contract: attaching telemetry must not
        change a single simulated number."""
        plain = run_trace(_build_system(fault_rate=0.05), _trace())
        instrumented = run_trace(_build_system(fault_rate=0.05), _trace(),
                                 telemetry=Telemetry(sample_interval=500))
        assert instrumented.requests == plain.requests
        assert instrumented.average_latency_us == plain.average_latency_us
        assert instrumented.wall_clock_us == plain.wall_clock_us
        assert instrumented.flash_miss_rate == plain.flash_miss_rate
        assert instrumented.flash_live_capacity == plain.flash_live_capacity
        assert instrumented.pdc == plain.pdc
        assert instrumented.flash == plain.flash
        assert instrumented.controller == plain.controller
        assert instrumented.faults == plain.faults
        assert instrumented.disk_reads == plain.disk_reads
        assert instrumented.disk_writes == plain.disk_writes
        assert instrumented.power == plain.power

    def test_report_percentiles_and_series_populated(self):
        telemetry = Telemetry(sample_interval=500)
        report = run_trace(_build_system(), _trace(), telemetry=telemetry)
        assert report.read_latency is not None
        assert report.read_latency.count == report.reads
        assert report.write_latency.count == report.writes
        assert report.read_latency_p50 <= report.read_latency_p95 \
            <= report.read_latency_p99
        assert report.timeseries is telemetry.timeseries
        series = report.timeseries["flash_miss_rate"]
        assert len(series) >= 2
        # End-of-trace finalize: the last x is the full request count.
        assert series.xs[-1] == report.requests

    def test_counters_agree_with_simulation_stats(self):
        telemetry = Telemetry(sample_interval=500)
        report = run_trace(_build_system(), _trace(), drain=False,
                           telemetry=telemetry)
        counters = telemetry.metrics.counters
        assert counters["request.reads"].value == report.reads
        assert counters["request.writes"].value == report.writes
        assert counters["disk.reads"].value == report.disk_reads
        pdc = report.pdc
        assert counters["pdc.hits"].value == pdc.read_hits + pdc.write_hits
        assert counters["pdc.misses"].value \
            == pdc.read_misses + pdc.write_misses

    def test_server_response_bytes_threads_into_bandwidth(self):
        report = run_trace(_build_system(), _trace(600),
                           server=ServerModel(response_bytes=4096))
        assert report.response_bytes == 4096
        assert report.network_bandwidth_bytes_per_s == pytest.approx(
            report.throughput_rps * 4096)
        default = run_trace(_build_system(), _trace(600))
        assert default.response_bytes == ServerModel.response_bytes
        assert default.network_bandwidth_bytes_per_s == pytest.approx(
            default.throughput_rps * ServerModel.response_bytes)

    def test_detach_restores_nil_handles(self):
        system = _build_system()
        telemetry = Telemetry()
        telemetry.attach(system)
        assert system.flash.controller.device.telemetry is telemetry
        telemetry.detach(system)
        assert system.telemetry is None
        assert system.disk.telemetry is None
        assert system.flash.telemetry is None
        assert system.flash.controller.telemetry is None
        assert system.flash.controller.device.telemetry is None


class TestExporters:
    def _run(self):
        telemetry = Telemetry(sample_interval=500)
        run_trace(_build_system(fault_rate=0.05), _trace(),
                  telemetry=telemetry)
        return telemetry

    def test_json_document_shape(self):
        telemetry = self._run()
        doc = json.loads(to_json(telemetry))
        assert doc["version"] == 1
        assert doc["counters"]["request.reads"] > 0
        digest = doc["histograms"]["request.read_latency_us"]
        assert set(digest) == {"count", "mean", "min", "max",
                               "p50", "p95", "p99"}
        series = doc["series"]["flash_miss_rate"]
        assert len(series["x"]) == len(series["y"]) >= 1
        buckets = doc["histogram_buckets"]["request.read_latency_us"]
        assert buckets[-1][0] == "+inf"
        assert sum(count for _, count in buckets) == digest["count"]

    def test_write_json_path_and_stream(self, tmp_path):
        telemetry = self._run()
        path = tmp_path / "telemetry.json"
        write_json(telemetry, str(path))
        assert json.loads(path.read_text())["version"] == 1
        stream = io.StringIO()
        write_json(telemetry, stream)
        assert json.loads(stream.getvalue()) == telemetry_to_dict(telemetry)

    def test_csv_sections(self, tmp_path):
        telemetry = self._run()
        series_rows = series_to_csv(telemetry).splitlines()
        assert series_rows[0] == "series,x,y"
        assert any(row.startswith("flash_miss_rate,")
                   for row in series_rows[1:])
        hist_rows = histograms_to_csv(telemetry).splitlines()
        assert hist_rows[0] == "histogram,upper_edge_us,count"
        assert any(",+inf," in row for row in hist_rows[1:])
        path = tmp_path / "telemetry.csv"
        write_csv(telemetry, str(path))
        content = path.read_text()
        assert "series,x,y" in content
        assert "histogram,upper_edge_us,count" in content
