"""DRAM model, primary disk cache, and disk model tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.disk.model import DESKTOP_DISK_POWER, LAPTOP_DISK_POWER, DiskModel
from repro.dram.model import DramModel, DDR2_BANDWIDTH_BYTES_PER_US
from repro.dram.page_cache import PrimaryDiskCache


class TestDramModel:
    def test_access_latency_includes_transfer(self):
        dram = DramModel(size_bytes=1 << 28)
        expected = 0.055 + 2048 / DDR2_BANDWIDTH_BYTES_PER_US
        assert dram.access_us(2048) == pytest.approx(expected)

    def test_device_count_scales_with_size(self):
        assert DramModel(size_bytes=128 << 20).num_devices == 1
        assert DramModel(size_bytes=512 << 20).num_devices == 4

    def test_power_model_bytes_overrides_device_count(self):
        dram = DramModel(size_bytes=8 << 20,
                         power_model_bytes=512 << 20)
        assert dram.num_devices == 4

    def test_energy_breakdown_splits_read_write_idle(self):
        dram = DramModel(size_bytes=128 << 20)
        dram.read(2048)
        dram.read(2048)
        dram.write(2048)
        split = dram.energy_breakdown(wall_clock_us=10_000.0)
        assert split.read_j == pytest.approx(2 * split.write_j, rel=1e-6)
        assert split.idle_j > 0
        assert split.total_j == pytest.approx(
            split.read_j + split.write_j + split.idle_j)

    def test_powerdown_reduces_idle(self):
        active = DramModel(size_bytes=128 << 20)
        parked = DramModel(size_bytes=128 << 20, powerdown_when_idle=True)
        assert (parked.energy_breakdown(1000.0).idle_j
                < active.energy_breakdown(1000.0).idle_j)

    def test_wall_clock_shorter_than_busy_rejected(self):
        dram = DramModel(size_bytes=1 << 20)
        dram.read(1 << 20)
        with pytest.raises(ValueError):
            dram.energy_breakdown(wall_clock_us=0.001)

    def test_reset_stats(self):
        dram = DramModel(size_bytes=1 << 20)
        dram.read(64)
        dram.reset_stats()
        assert dram.reads == 0 and dram.read_busy_us == 0.0

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            DramModel(size_bytes=0)


class TestPrimaryDiskCache:
    def test_read_miss_then_hit(self):
        pdc = PrimaryDiskCache(capacity_pages=4)
        hit, _ = pdc.read(7)
        assert not hit
        hit, _ = pdc.read(7)
        assert hit
        assert pdc.stats.read_hits == 1 and pdc.stats.read_misses == 1

    def test_lru_eviction_order(self):
        pdc = PrimaryDiskCache(capacity_pages=2)
        pdc.read(1)
        pdc.read(2)
        pdc.read(1)            # 1 becomes MRU
        _, evictions = pdc.read(3)
        assert [e.page for e in evictions] == [2]

    def test_dirty_eviction_reported(self):
        pdc = PrimaryDiskCache(capacity_pages=1)
        pdc.write(5)
        _, evictions = pdc.read(6)
        assert evictions[0].page == 5 and evictions[0].dirty

    def test_write_marks_dirty_until_flush(self):
        pdc = PrimaryDiskCache(capacity_pages=4)
        pdc.write(1)
        pdc.write(2)
        pdc.read(3)
        assert pdc.dirty_pages == 2
        assert sorted(pdc.flush()) == [1, 2]
        assert pdc.dirty_pages == 0

    def test_invalidate(self):
        pdc = PrimaryDiskCache(capacity_pages=2)
        pdc.read(9)
        assert pdc.invalidate(9)
        assert not pdc.invalidate(9)
        assert 9 not in pdc

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PrimaryDiskCache(capacity_pages=0)

    @given(pages=st.lists(st.integers(min_value=0, max_value=30),
                          min_size=1, max_size=200))
    def test_property_capacity_never_exceeded(self, pages):
        pdc = PrimaryDiskCache(capacity_pages=8)
        for page in pages:
            pdc.read(page)
        assert len(pdc) <= 8

    @given(pages=st.lists(st.integers(min_value=0, max_value=5),
                          min_size=1, max_size=60))
    def test_property_working_set_within_capacity_never_misses_twice(
            self, pages):
        """Pages from a set smaller than capacity miss at most once each."""
        pdc = PrimaryDiskCache(capacity_pages=6)
        for page in pages:
            pdc.read(page)
        assert pdc.stats.read_misses == len(set(pages))


class TestDiskModel:
    def test_average_access_latency(self):
        disk = DiskModel()
        assert disk.read() == pytest.approx(4200.0)
        assert disk.write() == pytest.approx(4200.0)

    def test_sequential_extension(self):
        disk = DiskModel()
        assert disk.read(num_pages=11) == pytest.approx(4200.0 + 10 * 40.0)

    def test_batched_write_cheaper_than_individual(self):
        batched, individual = DiskModel(), DiskModel()
        batched.write(num_pages=100)
        for _ in range(100):
            individual.write()
        assert batched.busy_us < individual.busy_us / 10

    def test_energy_blends_active_and_idle(self):
        disk = DiskModel()
        disk.read()
        wall = 10_000.0
        expected = (LAPTOP_DISK_POWER.active_w * 4200.0
                    + LAPTOP_DISK_POWER.idle_w * (wall - 4200.0)) * 1e-6
        assert disk.energy_j(wall) == pytest.approx(expected)

    def test_power_profiles(self):
        assert DESKTOP_DISK_POWER.active_w == 13.0  # Table 2
        assert DESKTOP_DISK_POWER.idle_w == 9.3
        assert LAPTOP_DISK_POWER.active_w < DESKTOP_DISK_POWER.active_w

    def test_invalid_requests_rejected(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.read(num_pages=0)
        disk.read()
        with pytest.raises(ValueError):
            disk.energy_j(wall_clock_us=1.0)
