"""Simulation-layer tests: engine, server model, Table 3 config, power."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import DramOnlySystem, SystemConfig, \
    build_flash_system
from repro.power.models import system_power_breakdown
from repro.sim.config import TABLE3_PLATFORM
from repro.sim.engine import run_trace
from repro.sim.server import ServerModel
from repro.workloads.macro import build_workload


class TestTable3Config:
    def test_paper_values(self):
        platform = TABLE3_PLATFORM
        assert platform.processor_cores == 8
        assert platform.clock_hz == 1e9
        assert platform.l2_bytes == 2 << 20
        assert platform.dram_bytes_max == 512 << 20
        assert platform.flash_bytes_max == 2 << 30
        assert platform.disk.average_access_ms == 4.2
        assert platform.bch_latency_min_us == 58.0
        assert platform.bch_latency_max_us == 400.0
        assert platform.dram_dimm_range == (1, 4)


class TestEngine:
    def test_report_fields(self):
        system = build_flash_system(dram_bytes=1 << 20, flash_bytes=4 << 20)
        trace = build_workload("specweb99", num_records=2000,
                               footprint_pages=4096, seed=9)
        report = run_trace(system, trace)
        assert report.requests == 2000
        assert report.reads + report.writes == report.requests
        assert report.average_latency_us > 0
        assert report.wall_clock_us >= report.requests  # >= 1us each
        assert 0.0 <= report.flash_miss_rate <= 1.0
        assert report.power.total_w > 0
        assert report.network_bandwidth_bytes_per_s == pytest.approx(
            report.throughput_rps * 2048.0)

    def test_dram_only_report_has_no_flash(self):
        system = DramOnlySystem(SystemConfig(dram_bytes=1 << 20))
        trace = build_workload("uniform", num_records=500,
                               footprint_pages=1024, seed=1)
        report = run_trace(system, trace)
        assert report.flash is None
        assert report.flash_miss_rate == 1.0


class TestServerModel:
    MODEL = ServerModel()

    def test_zero_storage_is_cpu_bound(self):
        ceiling = self.MODEL.cores / self.MODEL.cpu_us_per_request * 1e6
        assert self.MODEL.throughput_rps(0.0) == pytest.approx(ceiling)

    def test_throughput_decreases_with_latency(self):
        fast = self.MODEL.throughput_rps(100.0)
        slow = self.MODEL.throughput_rps(4200.0)
        assert slow < fast

    def test_bottleneck_caps_throughput(self):
        unconstrained = self.MODEL.throughput_rps(100.0)
        constrained = self.MODEL.throughput_rps(
            100.0, bottleneck_busy_us_per_request=1000.0)
        assert constrained == pytest.approx(1000.0)  # 1/1000us in rps
        assert constrained < unconstrained

    def test_relative_bandwidth(self):
        assert self.MODEL.relative_bandwidth(100.0, 100.0) == pytest.approx(1.0)
        assert self.MODEL.relative_bandwidth(100.0, 4200.0) < 1.0

    def test_network_bandwidth_scales_with_response(self):
        big = ServerModel(response_bytes=4096)
        small = ServerModel(response_bytes=2048)
        assert big.network_bandwidth_bytes_per_s(100.0) == pytest.approx(
            2 * small.network_bandwidth_bytes_per_s(100.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerModel(cores=0)
        with pytest.raises(ValueError):
            self.MODEL.throughput_rps(-1.0)


class TestPowerBreakdown:
    def test_components_sum(self):
        system = build_flash_system(dram_bytes=1 << 20, flash_bytes=4 << 20)
        trace = build_workload("dbt2", num_records=3000,
                               footprint_pages=4096, seed=2)
        run_trace(system, trace)
        breakdown = system_power_breakdown(system)
        assert breakdown.total_w == pytest.approx(
            breakdown.memory_w + breakdown.disk_w)
        assert breakdown.memory_w == pytest.approx(
            breakdown.mem_read_w + breakdown.mem_write_w
            + breakdown.mem_idle_w)
        as_dict = breakdown.as_dict()
        assert set(as_dict) == {"mem_read_w", "mem_write_w", "mem_idle_w",
                                "disk_w", "total_w", "throughput_rps"}

    def test_empty_system_rejected(self):
        system = DramOnlySystem(SystemConfig(dram_bytes=1 << 20))
        with pytest.raises(ValueError):
            system_power_breakdown(system)

    def test_disk_power_between_idle_and_active(self):
        system = DramOnlySystem(SystemConfig(dram_bytes=1 << 20))
        for page in range(200):
            system.read(page % 50)
        breakdown = system_power_breakdown(system)
        assert (system.disk.power.idle_w * 0.99 <= breakdown.disk_w
                <= system.disk.power.active_w * 1.01)
