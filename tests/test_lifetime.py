"""Accelerated aging simulator tests (Figures 11 and 12)."""

from __future__ import annotations

import pytest

from repro.sim.lifetime import (
    AgingConfig,
    LifetimeSimulator,
    lifetime_ratio,
    simulate_lifetime,
)

SMALL = dict(num_blocks=8, frames_per_block=4)


class TestAgingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AgingConfig(controller="magic")
        with pytest.raises(ValueError):
            AgingConfig(cache_coverage=0.0)
        with pytest.raises(ValueError):
            AgingConfig(num_blocks=0)


class TestAgingRuns:
    def test_runs_to_total_failure(self):
        result = simulate_lifetime("alpha2", "programmable", **SMALL)
        assert result.host_accesses_to_failure > 0
        assert result.erase_cycles_to_failure > 0
        assert result.controller_stats.blocks_retired == SMALL["num_blocks"]

    def test_deterministic_given_seed(self):
        a = simulate_lifetime("alpha1", "programmable", seed=5, **SMALL)
        b = simulate_lifetime("alpha1", "programmable", seed=5, **SMALL)
        assert a.host_accesses_to_failure == b.host_accesses_to_failure
        assert a.events == b.events

    def test_bch1_baseline_fails_near_mlc_endurance(self):
        """A fixed 1-bit controller dies around the 10k-cycle MLC spec."""
        result = simulate_lifetime("uniform", "bch1", **SMALL)
        assert 1_000 < result.erase_cycles_to_failure < 50_000

    def test_programmable_reaches_slc_scale_endurance(self):
        """ECC escalation plus the MLC->SLC switch pushes the failure point
        past the 100k SLC spec."""
        result = simulate_lifetime("uniform", "programmable", **SMALL)
        assert result.erase_cycles_to_failure > 100_000

    def test_half_capacity_precedes_total_failure(self):
        result = simulate_lifetime("alpha2", "programmable", **SMALL)
        assert result.half_capacity_accesses is not None
        assert (result.half_capacity_accesses
                <= result.host_accesses_to_failure)


class TestFigure12:
    def test_programmable_beats_bch1_by_order_of_magnitude(self):
        """The paper's headline: ~20x average lifetime extension."""
        ratio = lifetime_ratio("alpha2", **SMALL)
        assert ratio > 5.0

    def test_improvement_across_workload_families(self):
        for workload in ("uniform", "exp1", "financial1"):
            assert lifetime_ratio(workload, **SMALL) > 3.0


class TestFigure11:
    def test_uniform_prefers_code_strength(self):
        """Long-tail extreme: capacity precious -> ECC updates dominate."""
        result = simulate_lifetime("uniform", "programmable", **SMALL)
        breakdown = result.early_reconfig_breakdown
        assert breakdown["code_strength"] > 0.8

    def test_exponential_prefers_density(self):
        """Short-tail extreme: hot pages + cheap capacity -> MLC->SLC."""
        result = simulate_lifetime("exp2", "programmable", **SMALL)
        breakdown = result.early_reconfig_breakdown
        assert breakdown["density"] > 0.8

    def test_zipf_sits_between_extremes(self):
        uniform = simulate_lifetime(
            "uniform", "programmable", **SMALL).early_reconfig_breakdown
        zipf = simulate_lifetime(
            "alpha2", "programmable", **SMALL).early_reconfig_breakdown
        exponential = simulate_lifetime(
            "exp2", "programmable", **SMALL).early_reconfig_breakdown
        assert (uniform["density"] <= zipf["density"]
                <= exponential["density"])

    def test_breakdown_fractions_sum_to_one(self):
        result = simulate_lifetime("alpha3", "programmable", **SMALL)
        breakdown = result.early_reconfig_breakdown
        assert breakdown["code_strength"] + breakdown["density"] \
            == pytest.approx(1.0)

    def test_bch1_never_reconfigures(self):
        result = simulate_lifetime("alpha2", "bch1", **SMALL)
        assert result.controller_stats.descriptor_updates == 0
        assert result.reconfig_breakdown == {"code_strength": 0.0,
                                             "density": 0.0}
