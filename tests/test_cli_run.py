"""CLI tests for trace replay: ``repro run`` (exit codes, fault and
telemetry flag plumbing) and ``repro stats``."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.workloads.macro import build_workload
from repro.workloads.trace import write_spc


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    records = build_workload("dbt2", num_records=3000,
                             footprint_pages=2048, seed=5)
    path = tmp_path_factory.mktemp("traces") / "trace.spc"
    with open(path, "w") as stream:
        write_spc(records, stream)
    return str(path)


class TestRunCommand:
    def test_plain_run_exit_code_and_output(self, trace_path, capsys):
        assert main(["run", trace_path, "--dram-mb", "1",
                     "--flash-mb", "4"]) == 0
        output = capsys.readouterr().out
        assert "requests:" in output
        assert "flash miss rate:" in output
        # Without --fault-rate the fault section must not print.
        assert "injected faults:" not in output
        # Without --telemetry-out no percentile lines print.
        assert "read latency us:" not in output

    def test_missing_trace_file_raises(self):
        with pytest.raises(FileNotFoundError):
            main(["run", "/nonexistent/trace.spc"])

    def test_missing_required_argument_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run"])
        assert excinfo.value.code == 2

    def test_fault_flags_reach_the_injector(self, trace_path, capsys):
        assert main(["run", trace_path, "--dram-mb", "1", "--flash-mb", "4",
                     "--fault-rate", "0.2", "--fault-seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "injected faults:" in output
        injected = int(output.split("injected faults:")[1].split()[0])
        assert injected > 0

    def test_fault_seed_changes_injection_stream(self, trace_path, capsys):
        def injected_with_seed(seed: str) -> int:
            main(["run", trace_path, "--dram-mb", "1", "--flash-mb", "4",
                  "--fault-rate", "0.1", "--fault-seed", seed])
            out = capsys.readouterr().out
            return int(out.split("injected faults:")[1].split()[0])

        # Same seed reproduces exactly; the counters are deterministic.
        assert injected_with_seed("7") == injected_with_seed("7")

    def test_telemetry_out_writes_json_with_series(self, trace_path,
                                                   tmp_path, capsys):
        out_path = tmp_path / "telemetry.json"
        assert main(["run", trace_path, "--dram-mb", "1", "--flash-mb", "4",
                     "--telemetry-out", str(out_path),
                     "--telemetry-interval", "500"]) == 0
        output = capsys.readouterr().out
        assert "read latency us:" in output
        assert "write latency us:" in output
        doc = json.loads(out_path.read_text())
        assert len(doc["series"]) >= 1
        assert "flash_miss_rate" in doc["series"]
        series = doc["series"]["flash_miss_rate"]
        assert len(series["x"]) == len(series["y"]) >= 1
        assert doc["histograms"]["request.read_latency_us"]["count"] > 0

    def test_telemetry_does_not_change_printed_results(self, trace_path,
                                                       tmp_path, capsys):
        base_args = ["run", trace_path, "--dram-mb", "1", "--flash-mb", "4"]
        assert main(base_args) == 0
        plain = capsys.readouterr().out
        out_path = tmp_path / "telemetry.json"
        assert main(base_args + ["--telemetry-out", str(out_path)]) == 0
        instrumented = capsys.readouterr().out
        # Every line of the plain report reappears verbatim — telemetry
        # only appends, never perturbs.
        for line in plain.strip().splitlines():
            assert line in instrumented


class TestStatsCommand:
    def test_prints_percentiles_counters_series(self, trace_path, capsys):
        assert main(["stats", trace_path, "--dram-mb", "1",
                     "--flash-mb", "4", "--interval", "500"]) == 0
        output = capsys.readouterr().out
        assert "read latency us:" in output
        assert "histograms" in output
        assert "counters" in output
        assert "time-series (last sample)" in output
        assert "flash_miss_rate" in output

    def test_json_and_csv_exports(self, trace_path, tmp_path, capsys):
        json_path = tmp_path / "stats.json"
        csv_path = tmp_path / "stats.csv"
        assert main(["stats", trace_path, "--dram-mb", "1",
                     "--flash-mb", "4", "--interval", "500",
                     "--json", str(json_path),
                     "--csv", str(csv_path)]) == 0
        capsys.readouterr()
        doc = json.loads(json_path.read_text())
        assert doc["version"] == 1
        assert len(doc["series"]) >= 1
        content = csv_path.read_text()
        assert content.startswith("series,x,y")
        assert "histogram,upper_edge_us,count" in content

    def test_fault_flags_accepted(self, trace_path, capsys):
        assert main(["stats", trace_path, "--dram-mb", "1",
                     "--flash-mb", "4", "--fault-rate", "0.1",
                     "--fault-seed", "3", "--limit", "1000"]) == 0
        assert "requests:        1000" in capsys.readouterr().out


class TestFaultsCommand:
    def test_telemetry_out_flag(self, tmp_path, capsys):
        out_path = tmp_path / "faults.json"
        assert main(["faults", "--telemetry-out", str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "Degradation timeline" in output
        doc = json.loads(out_path.read_text())
        assert "live_capacity" in doc["series"]
        assert "flash_miss_rate" in doc["series"]
