"""BCH codec tests: round trips, correction capability, detection, the
paper's 2KB-page budget (section 4.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.bch import (
    BCHCode,
    BCHDecodeFailure,
    design_code_for_page,
    parity_bits_required,
    parity_bytes_required,
)


class TestParameters:
    def test_parity_bound(self):
        assert parity_bits_required(15, 12) == 180
        assert parity_bytes_required(15, 12) == 23  # the paper's 23 bytes

    def test_parameters_satisfy_bound(self):
        for m, t in [(5, 1), (7, 2), (8, 3), (10, 4)]:
            code = BCHCode(m, t)
            assert code.params.parity_bits <= parity_bits_required(m, t)
            assert code.params.n == (1 << m) - 1
            assert code.params.k == code.params.n - code.params.parity_bits

    def test_rate_and_parity_bytes(self):
        code = BCHCode(7, 2)
        assert 0 < code.params.rate < 1
        assert code.params.parity_bytes == (code.params.parity_bits + 7) // 8

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            BCHCode(7, 0)

    def test_rejects_overfull_code(self):
        # BCH(15, k=1, t=7) is the degenerate single-message-bit code; one
        # more root consumes the last message bit and must be rejected.
        assert BCHCode(4, 7).params.k == 1
        with pytest.raises(ValueError):
            BCHCode(4, 8)

    def test_shortening(self):
        code = BCHCode(8, 2, data_bits=64)
        assert code.params.k == 64
        assert code.params.shortening == (255 - code.params.parity_bits) - 64
        assert code.params.n == 64 + code.params.parity_bits

    def test_shortening_beyond_parent_rejected(self):
        with pytest.raises(ValueError):
            BCHCode(5, 1, data_bits=1000)


class TestEncoding:
    def test_encode_is_systematic(self):
        code = BCHCode(7, 2)
        message = 0b101101
        codeword = code.encode_bits(message)
        assert codeword >> code.params.parity_bits == message

    def test_codeword_divisible_by_generator(self):
        from repro.ecc.galois import GF2Poly
        code = BCHCode(7, 2)
        codeword = code.encode_bits(12345)
        assert GF2Poly(codeword).mod(code.generator).is_zero()

    def test_encode_rejects_oversized_message(self):
        code = BCHCode(5, 1)
        with pytest.raises(ValueError):
            code.encode_bits(1 << code.params.k)

    def test_byte_interface_roundtrip(self):
        code = BCHCode(10, 3, data_bits=64 * 8)
        payload = bytes(range(64))
        stored, parity = code.encode(payload)
        assert stored == payload
        assert len(parity) == code.params.parity_bytes
        decoded, corrected = code.decode(payload, parity)
        assert decoded == payload
        assert corrected == 0


class TestDecoding:
    def test_zero_errors(self):
        code = BCHCode(7, 2)
        codeword = code.encode_bits(99)
        result = code.decode_bits(codeword)
        assert result.codeword == codeword
        assert result.error_positions == ()

    @pytest.mark.parametrize("m,t", [(5, 1), (7, 2), (8, 3), (9, 4), (10, 5)])
    def test_corrects_up_to_t_errors(self, m, t):
        code = BCHCode(m, t)
        rng = random.Random(m * 100 + t)
        for trial in range(10):
            message = rng.getrandbits(code.params.k)
            codeword = code.encode_bits(message)
            for num_errors in range(1, t + 1):
                corrupted = codeword
                positions = rng.sample(range(code.params.n), num_errors)
                for position in positions:
                    corrupted ^= 1 << position
                result = code.decode_bits(corrupted)
                assert result.codeword == codeword
                assert result.corrected == num_errors
                assert set(result.error_positions) == set(positions)

    def test_shortened_code_corrects(self):
        code = BCHCode(9, 3, data_bits=128)
        rng = random.Random(4)
        message = rng.getrandbits(128)
        codeword = code.encode_bits(message)
        corrupted = codeword ^ (1 << 5) ^ (1 << 100) ^ (1 << 130)
        result = code.decode_bits(corrupted)
        assert code.extract_message(result.codeword) == message

    def test_beyond_t_mostly_detected_and_never_silently_wrong_with_crc(self):
        """Patterns heavier than t either raise or produce a codeword that
        differs from the original — the CRC catches the latter case."""
        code = BCHCode(8, 2)
        rng = random.Random(11)
        outcomes = {"detected": 0, "miscorrected": 0}
        for trial in range(40):
            message = rng.getrandbits(code.params.k)
            codeword = code.encode_bits(message)
            corrupted = codeword
            for position in rng.sample(range(code.params.n), 2 * code.t + 1):
                corrupted ^= 1 << position
            try:
                result = code.decode_bits(corrupted)
            except BCHDecodeFailure:
                outcomes["detected"] += 1
            else:
                if result.codeword != codeword:
                    outcomes["miscorrected"] += 1
        assert outcomes["detected"] > 0
        # Every non-detected case is a false positive the CRC layer exists
        # to catch; none may silently return the original codeword, because
        # 5 errors can never look like <= 2 errors of the same word.
        assert outcomes["detected"] + outcomes["miscorrected"] == 40

    @pytest.mark.parametrize("m,t", [(7, 2), (8, 3), (9, 4)])
    def test_exactly_t_errors_is_the_correction_boundary(self, m, t):
        """The edge the adaptive controller's ECC ladder lives on: a
        pattern of exactly t errors always corrects, and the same
        pattern plus one more error never quietly returns the original
        codeword — it either raises or lands on a different word."""
        code = BCHCode(m, t)
        rng = random.Random(m * 1000 + t)
        for trial in range(10):
            message = rng.getrandbits(code.params.k)
            codeword = code.encode_bits(message)
            positions = rng.sample(range(code.params.n), t + 1)
            at_t = codeword
            for position in positions[:t]:
                at_t ^= 1 << position
            result = code.decode_bits(at_t)
            assert result.codeword == codeword
            assert result.corrected == t
            beyond_t = at_t ^ (1 << positions[t])
            try:
                beyond = code.decode_bits(beyond_t)
            except BCHDecodeFailure:
                continue
            assert beyond.codeword != codeword

    def test_decode_rejects_oversized_word(self):
        code = BCHCode(5, 1)
        with pytest.raises(ValueError):
            code.decode_bits(1 << code.params.n)

    def test_byte_interface_corrects(self):
        code = BCHCode(10, 4, data_bits=32 * 8)
        payload = bytes(range(32))
        _, parity = code.encode(payload)
        corrupted = bytearray(payload)
        corrupted[3] ^= 0x10
        corrupted[30] ^= 0x01
        decoded, corrected = code.decode(bytes(corrupted), parity)
        assert decoded == payload
        assert corrected == 2


@settings(max_examples=25, deadline=None)
@given(message=st.integers(min_value=0, max_value=(1 << 113) - 1),
       errors=st.sets(st.integers(min_value=0, max_value=126),
                      min_size=0, max_size=2))
def test_property_roundtrip_bch_127_2(message, errors):
    """Property: BCH(127, t=2) corrects any <=2-bit error pattern."""
    code = BCHCode(7, 2)
    codeword = code.encode_bits(message)
    corrupted = codeword
    for position in errors:
        corrupted ^= 1 << position
    result = code.decode_bits(corrupted)
    assert code.extract_message(result.codeword) == message
    assert result.corrected == len(errors)


class TestPageCodec:
    """The section 4.1 design point: 2KB page, up to 12 correctable bits."""

    def test_picks_m15_for_2kb_pages(self):
        for t in (1, 4, 12):
            code = design_code_for_page(2048, t)
            assert code.params.m == 15
            assert code.params.k == 2048 * 8

    def test_parity_fits_spare_budget(self):
        """CRC32 takes 4 of the 64 spare bytes; BCH must fit in 60."""
        code = design_code_for_page(2048, 12)
        assert code.params.parity_bytes <= 60
        assert code.params.parity_bytes <= 23  # paper: "a maximum of 23"

    def test_page_roundtrip_with_errors(self):
        code = design_code_for_page(2048, 3)
        rng = random.Random(21)
        payload = bytes(rng.randrange(256) for _ in range(2048))
        _, parity = code.encode(payload)
        corrupted = bytearray(payload)
        corrupted[0] ^= 0x80
        corrupted[1024] ^= 0x01
        corrupted[2047] ^= 0x40
        decoded, corrected = code.decode(bytes(corrupted), parity)
        assert decoded == payload
        assert corrected == 3

    def test_small_page_uses_smaller_field(self):
        code = design_code_for_page(16, 2)
        assert code.params.m < 15
        assert code.params.k == 16 * 8

    def test_impossible_page_rejected(self):
        with pytest.raises(ValueError):
            design_code_for_page(1 << 16, 12)
