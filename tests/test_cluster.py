"""Cluster service tests: routing, arrivals, failover, determinism.

Covers DESIGN.md section 15's contracts:

* the consistent-hash ring is deterministic, balanced-ish, and minimal
  on exclusion (only the excluded shard's keys move);
* open-loop arrival plans are seeded, time-sorted, and shaped by their
  intensity profile;
* a fixed-seed cluster run — feed included — is byte-identical at any
  worker layout (the acceptance criterion of ISSUE 8);
* killing a shard mid-run keeps the survivors serving with bounded p99
  and zero lost-request accounting drift, and an aged shard retiring
  organically hands its tail traffic to the survivors;
* admission control sheds rather than growing the backlog without
  bound, and the asyncio serving shell streams orchestration events
  without perturbing the result.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ARRIVAL_PATTERNS,
    ClusterScenario,
    ClusterService,
    HashRing,
    build_arrivals,
    feed_lines,
    run_cluster,
    serve,
    write_feed_csv,
    write_feed_jsonl,
)
from repro.cluster.arrivals import intensity, sample_arrival_times


class TestHashRing:
    def test_routing_is_deterministic(self):
        ring = HashRing(range(4))
        other = HashRing(range(4))
        pages = list(range(0, 5000, 7))
        assert [ring.route(p) for p in pages] == \
            [other.route(p) for p in pages]

    def test_distribution_covers_every_shard(self):
        ring = HashRing(range(4))
        counts = {shard: 0 for shard in range(4)}
        for page in range(4096):
            counts[ring.route(page)] += 1
        assert all(count > 0 for count in counts.values())
        # vnodes keep the spread sane: no shard owns > half the keys.
        assert max(counts.values()) < 4096 / 2

    def test_exclusion_moves_only_the_excluded_keys(self):
        ring = HashRing(range(4))
        moved = 0
        for page in range(2048):
            home = ring.route(page)
            rerouted = ring.route(page, exclude=(2,))
            if home == 2:
                assert rerouted != 2
                moved += 1
            else:
                assert rerouted == home
        assert moved > 0

    def test_all_excluded_raises(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.route(123, exclude=(0, 1))


class TestArrivals:
    def test_patterns_are_seeded_and_sorted(self):
        for pattern in ARRIVAL_PATTERNS:
            times = sample_arrival_times(pattern, 2000.0, 0.5, seed=9)
            again = sample_arrival_times(pattern, 2000.0, 0.5, seed=9)
            assert times == again
            assert times == sorted(times)
            assert all(0.0 <= t < 0.5e6 for t in times)
            other_seed = sample_arrival_times(pattern, 2000.0, 0.5, seed=10)
            assert times != other_seed

    def test_intensity_profiles(self):
        assert intensity("steady", 0.3) == 1.0
        # Diurnal: trough at the edges, peak mid-window.
        assert intensity("diurnal", 0.0) < intensity("diurnal", 0.5)
        assert intensity("diurnal", 0.5) == pytest.approx(1.0)
        # Flash crowd: quiet baseline, burst inside [0.45, 0.6).
        assert intensity("flash_crowd", 0.2) < intensity("flash_crowd", 0.5)
        # Drain: ramps linearly to zero.
        assert intensity("drain", 0.0) == 1.0
        assert intensity("drain", 1.0) == 0.0
        with pytest.raises(ValueError):
            intensity("nope", 0.5)

    def test_flash_crowd_bursts(self):
        times = sample_arrival_times("flash_crowd", 8000.0, 1.0, seed=4)
        burst = sum(1 for t in times if 0.45e6 <= t < 0.6e6)
        quiet = sum(1 for t in times if 0.0 <= t < 0.15e6)
        # Same window width, 4x the intensity.
        assert burst > 2 * quiet

    def test_build_arrivals_zips_workload_keys(self):
        arrivals = build_arrivals("steady", 2000.0, 0.25, "specweb99",
                                  footprint_pages=4096, seed=7)
        assert arrivals
        assert [a[1] for a in arrivals] == list(range(len(arrivals)))
        assert all(0 <= a[2] < 4096 for a in arrivals)
        assert arrivals == build_arrivals("steady", 2000.0, 0.25,
                                          "specweb99",
                                          footprint_pages=4096, seed=7)


def _kill_scenario(**overrides):
    base = dict(shards=3, rate_rps=9000.0, duration_s=0.3, seed=3,
                queue_depth=4, shed_queue=16, footprint_pages=4096,
                kill_shard=1, kill_at_us=150_000.0)
    base.update(overrides)
    return ClusterScenario(**base)


class TestRunCluster:
    def test_byte_identical_across_worker_layouts(self):
        scenario = _kill_scenario()
        serial = run_cluster(scenario, workers=1)
        pooled = run_cluster(scenario, workers=3)
        assert feed_lines(serial) == feed_lines(pooled)
        assert serial.as_dict() == pooled.as_dict()

    def test_kill_one_shard_keeps_serving(self):
        result = run_cluster(_kill_scenario(), workers=1)
        killed = next(s for s in result.shards if s["shard_id"] == 1)
        assert killed["retired_at_us"] == 150_000.0
        # Accounting: every planned arrival lands exactly once.
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        # In-flight work at the kill instant is lost, not resurrected.
        assert result.lost >= 0
        assert killed["lost"] == result.lost
        # Survivors keep serving after the kill: completions land in
        # post-kill buckets on shards 0 and 2, never on shard 1.
        post_kill = [row for row in result.bucket_rows()
                     if row["t_ms"] >= 150.0 and row["shard"] != "cluster"]
        survivors = [row for row in post_kill if row["shard"] != "1"]
        assert sum(row["completed"] for row in survivors) > 0
        assert sum(row["completed"] for row in post_kill
                   if row["shard"] == "1") == 0
        # Bounded tail: p99 stays within the shed-bounded backlog
        # (queue_depth + shed_queue requests ahead, each <= a few ms).
        assert 0.0 < result.response.p99 < 100_000.0

    def test_aged_shard_retires_organically_and_redirects(self):
        scenario = ClusterScenario(
            shards=3, rate_rps=6000.0, duration_s=0.6, seed=11,
            flash_bytes=2 << 20, dram_bytes=1 << 20,
            footprint_pages=4096, aged_shard=0, aged_fault_rate=0.9)
        result = run_cluster(scenario, workers=1)
        aged = next(s for s in result.shards if s["shard_id"] == 0)
        assert aged["degraded"]
        assert aged["retired_at_us"] is not None
        assert aged["redirected"] > 0
        assert result.redirected == aged["redirected"]
        # Redirected traffic is served by the survivors, not dropped.
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        # And the run stays worker-layout invariant through failover.
        assert feed_lines(result) == \
            feed_lines(run_cluster(scenario, workers=2))

    def test_overload_sheds_instead_of_unbounded_backlog(self):
        scenario = ClusterScenario(shards=2, rate_rps=20_000.0,
                                   duration_s=0.2, seed=5, queue_depth=2,
                                   shed_queue=4, footprint_pages=4096)
        result = run_cluster(scenario, workers=1)
        assert result.shed > 0
        assert result.shed_fraction > 0.0
        assert result.completed + result.shed == result.arrivals
        # Shed requests never touched the cache, so the p99 of what was
        # admitted stays bounded by the short wait queue.
        assert result.response.p99 < 50_000.0

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            run_cluster(ClusterScenario(shards=0))
        with pytest.raises(ValueError):
            run_cluster(ClusterScenario(pattern="bursty"))
        with pytest.raises(ValueError):
            run_cluster(ClusterScenario(shards=2, kill_shard=5))


class TestFeed:
    def test_jsonl_feed_shape(self, tmp_path):
        result = run_cluster(_kill_scenario(duration_s=0.2), workers=1)
        path = tmp_path / "feed.jsonl"
        write_feed_jsonl(result, str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["totals"]["arrivals"] == result.arrivals
        kinds = {line["type"] for line in lines}
        assert kinds == {"meta", "sample", "series"}
        samples = [line for line in lines if line["type"] == "sample"]
        # Cluster row leads each bucket.
        assert samples[0]["shard"] == "cluster"

    def test_csv_matches_bucket_rows(self, tmp_path):
        result = run_cluster(_kill_scenario(duration_s=0.2), workers=1)
        path = tmp_path / "feed.csv"
        write_feed_csv(result, str(path))
        rows = path.read_text().splitlines()
        assert rows[0].startswith("t_ms,shard,arrivals")
        assert len(rows) == 1 + len(result.bucket_rows())


class TestClusterService:
    def test_serve_matches_run_cluster_and_streams_events(self):
        scenario = _kill_scenario(duration_s=0.2)
        events = []
        served = serve(scenario, workers=2, on_event=events.append)
        direct = run_cluster(scenario, workers=1)
        assert feed_lines(served) == feed_lines(direct)
        kinds = [event["kind"] for event in events]
        assert "stage" in kinds and "shard" in kinds
        stages = [event["stage"] for event in events
                  if event["kind"] == "stage"]
        assert stages == ["retirable", "serving"]
        shard_events = [event for event in events
                        if event["kind"] == "shard"]
        assert all(event["ok"] for event in shard_events)
        assert len(shard_events) == scenario.shards

    def test_service_object_is_reusable(self):
        scenario = ClusterScenario(shards=2, rate_rps=2000.0,
                                   duration_s=0.1, seed=2,
                                   footprint_pages=2048)
        service = ClusterService(scenario, workers=1)
        import asyncio
        first = asyncio.run(service.run())
        second = asyncio.run(service.run())
        assert feed_lines(first) == feed_lines(second)
