"""Cluster service tests: routing, arrivals, failover, determinism.

Covers DESIGN.md section 15's contracts:

* the consistent-hash ring is deterministic, balanced-ish, and minimal
  on exclusion (only the excluded shard's keys move) — and its replica
  walk places R distinct shards or raises the typed
  :class:`ClusterError`, never under-provides silently;
* open-loop arrival plans are seeded, time-sorted, and shaped by their
  intensity profile;
* a fixed-seed cluster run — feed included — is byte-identical at any
  worker layout (the acceptance criterion of ISSUE 8), including under
  cascades, replication, and repair (ISSUE 10);
* killing a shard mid-run keeps the survivors serving with bounded p99
  and zero lost-request accounting drift, and an aged shard retiring
  organically hands its tail traffic to the survivors;
* at R > 1, reads in flight on a dying shard are retried on a
  surviving replica (zero lost reads), a same-instant double kill runs
  as one stage, a later kill cascades, and a repaired shard rejoins
  with a minimal-move catch-up sync of exactly its own keys;
* admission control sheds rather than growing the backlog without
  bound, and the asyncio serving shell streams orchestration events
  without perturbing the result.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ARRIVAL_PATTERNS,
    ChaosSchedule,
    ClusterError,
    ClusterScenario,
    ClusterService,
    HashRing,
    KillSpec,
    RejoinSpec,
    build_arrivals,
    feed_lines,
    run_cluster,
    serve,
    write_feed_csv,
    write_feed_jsonl,
)
from repro.cluster.arrivals import intensity, sample_arrival_times


class TestHashRing:
    def test_routing_is_deterministic(self):
        ring = HashRing(range(4))
        other = HashRing(range(4))
        pages = list(range(0, 5000, 7))
        assert [ring.route(p) for p in pages] == \
            [other.route(p) for p in pages]

    def test_distribution_covers_every_shard(self):
        ring = HashRing(range(4))
        counts = {shard: 0 for shard in range(4)}
        for page in range(4096):
            counts[ring.route(page)] += 1
        assert all(count > 0 for count in counts.values())
        # vnodes keep the spread sane: no shard owns > half the keys.
        assert max(counts.values()) < 4096 / 2

    def test_exclusion_moves_only_the_excluded_keys(self):
        ring = HashRing(range(4))
        moved = 0
        for page in range(2048):
            home = ring.route(page)
            rerouted = ring.route(page, exclude=(2,))
            if home == 2:
                assert rerouted != 2
                moved += 1
            else:
                assert rerouted == home
        assert moved > 0

    def test_all_excluded_raises(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.route(123, exclude=(0, 1))

    def test_all_excluded_raises_typed_cluster_error(self):
        # Regression (ISSUE 10): the exhausted walk must raise the
        # *typed* ClusterError (a ValueError subclass), not loop or
        # fall through to an untyped failure.
        ring = HashRing(range(3))
        with pytest.raises(ClusterError):
            ring.route(123, exclude=(0, 1, 2))
        with pytest.raises(ClusterError):
            ring.route(123, exclude=range(100))
        assert issubclass(ClusterError, ValueError)

    def test_route_replicas_distinct_and_primary_first(self):
        ring = HashRing(range(5))
        for page in range(512):
            replicas = ring.route_replicas(page, 3)
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.route(page)
        # R == fleet size: every shard appears exactly once.
        assert sorted(ring.route_replicas(77, 5)) == list(range(5))

    def test_route_replicas_overflow_raises_instead_of_short_tuple(self):
        ring = HashRing(range(3))
        with pytest.raises(ClusterError):
            ring.route_replicas(1, 4)
        with pytest.raises(ClusterError):
            ring.route_replicas(1, 3, exclude=(0,))
        with pytest.raises(ClusterError):
            ring.route_replicas(1, 0)

    def test_route_replicas_minimal_move_on_exclusion(self):
        # Excluding one shard only touches replica sets it was in, and
        # the surviving members keep their walk order — the failover
        # property repair relies on in reverse.
        ring = HashRing(range(5))
        for page in range(1024):
            home = ring.route_replicas(page, 2)
            moved = ring.route_replicas(page, 2, exclude=(3,))
            if 3 not in home:
                assert moved == home
            else:
                assert 3 not in moved
                survivors = [shard for shard in home if shard != 3]
                assert [shard for shard in moved
                        if shard in survivors] == survivors


class TestArrivals:
    def test_patterns_are_seeded_and_sorted(self):
        for pattern in ARRIVAL_PATTERNS:
            times = sample_arrival_times(pattern, 2000.0, 0.5, seed=9)
            again = sample_arrival_times(pattern, 2000.0, 0.5, seed=9)
            assert times == again
            assert times == sorted(times)
            assert all(0.0 <= t < 0.5e6 for t in times)
            other_seed = sample_arrival_times(pattern, 2000.0, 0.5, seed=10)
            assert times != other_seed

    def test_intensity_profiles(self):
        assert intensity("steady", 0.3) == 1.0
        # Diurnal: trough at the edges, peak mid-window.
        assert intensity("diurnal", 0.0) < intensity("diurnal", 0.5)
        assert intensity("diurnal", 0.5) == pytest.approx(1.0)
        # Flash crowd: quiet baseline, burst inside [0.45, 0.6).
        assert intensity("flash_crowd", 0.2) < intensity("flash_crowd", 0.5)
        # Drain: ramps linearly to zero.
        assert intensity("drain", 0.0) == 1.0
        assert intensity("drain", 1.0) == 0.0
        with pytest.raises(ValueError):
            intensity("nope", 0.5)

    def test_flash_crowd_bursts(self):
        times = sample_arrival_times("flash_crowd", 8000.0, 1.0, seed=4)
        burst = sum(1 for t in times if 0.45e6 <= t < 0.6e6)
        quiet = sum(1 for t in times if 0.0 <= t < 0.15e6)
        # Same window width, 4x the intensity.
        assert burst > 2 * quiet

    def test_build_arrivals_zips_workload_keys(self):
        arrivals = build_arrivals("steady", 2000.0, 0.25, "specweb99",
                                  footprint_pages=4096, seed=7)
        assert arrivals
        assert [a[1] for a in arrivals] == list(range(len(arrivals)))
        assert all(0 <= a[2] < 4096 for a in arrivals)
        assert arrivals == build_arrivals("steady", 2000.0, 0.25,
                                          "specweb99",
                                          footprint_pages=4096, seed=7)


class TestChaosSchedule:
    def test_validation_rejects_malformed_timelines(self):
        with pytest.raises(ClusterError):
            ChaosSchedule(kills=(KillSpec(1, 10.0), KillSpec(1, 20.0)))
        with pytest.raises(ClusterError):
            ChaosSchedule(kills=(KillSpec(1, -5.0),))
        with pytest.raises(ClusterError):
            ChaosSchedule(rejoins=(RejoinSpec(1, 50.0),))
        with pytest.raises(ClusterError):
            ChaosSchedule(kills=(KillSpec(1, 50.0),),
                          rejoins=(RejoinSpec(1, 50.0),))

    def test_dead_windows_and_rejoin(self):
        chaos = ChaosSchedule(kills=(KillSpec(1, 100.0), KillSpec(2, 300.0)),
                              rejoins=(RejoinSpec(1, 400.0),))
        assert chaos.dead_at(0.0) == frozenset()
        assert chaos.dead_at(100.0) == {1}
        assert chaos.dead_at(300.0) == {1, 2}
        assert chaos.dead_at(400.0) == {2}
        assert chaos.kill_at(1) == 100.0
        assert chaos.rejoin_at(1) == 400.0
        assert chaos.rejoin_at(2) is None

    def test_stages_group_same_instant_kills(self):
        chaos = ChaosSchedule(kills=(KillSpec(3, 200.0), KillSpec(1, 100.0),
                                     KillSpec(2, 100.0)))
        assert chaos.stages() == [(100.0, (1, 2)), (200.0, (3,))]

    def test_fleet_validation(self):
        chaos = ChaosSchedule(kills=(KillSpec(5, 10.0),))
        with pytest.raises(ClusterError):
            chaos.validate_fleet(3)
        everyone = ChaosSchedule(kills=(KillSpec(0, 10.0),
                                        KillSpec(1, 20.0)))
        with pytest.raises(ClusterError):
            everyone.validate_fleet(2)

    def test_sample_is_seeded_and_shaped(self):
        one = ChaosSchedule.sample(4, 1.0, kills=2, repair=True, seed=9)
        two = ChaosSchedule.sample(4, 1.0, kills=2, repair=True, seed=9)
        assert one == two
        assert one != ChaosSchedule.sample(4, 1.0, kills=2, repair=True,
                                           seed=10)
        instants = [kill.at_us for kill in one.kills]
        assert instants == sorted(instants)
        assert len(one.rejoins) == 1
        assert one.rejoins[0].shard == one.kills[0].shard


def _kill_scenario(**overrides):
    base = dict(shards=3, rate_rps=9000.0, duration_s=0.3, seed=3,
                queue_depth=4, shed_queue=16, footprint_pages=4096,
                kill_shard=1, kill_at_us=150_000.0)
    base.update(overrides)
    return ClusterScenario(**base)


class TestRunCluster:
    def test_byte_identical_across_worker_layouts(self):
        scenario = _kill_scenario()
        serial = run_cluster(scenario, workers=1)
        pooled = run_cluster(scenario, workers=3)
        assert feed_lines(serial) == feed_lines(pooled)
        assert serial.as_dict() == pooled.as_dict()

    def test_kill_one_shard_keeps_serving(self):
        result = run_cluster(_kill_scenario(), workers=1)
        killed = next(s for s in result.shards if s["shard_id"] == 1)
        assert killed["retired_at_us"] == 150_000.0
        # Accounting: every planned arrival lands exactly once.
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        # In-flight work at the kill instant is lost, not resurrected.
        assert result.lost >= 0
        assert killed["lost"] == result.lost
        # Survivors keep serving after the kill: completions land in
        # post-kill buckets on shards 0 and 2, never on shard 1.
        post_kill = [row for row in result.bucket_rows()
                     if row["t_ms"] >= 150.0 and row["shard"] != "cluster"]
        survivors = [row for row in post_kill if row["shard"] != "1"]
        assert sum(row["completed"] for row in survivors) > 0
        assert sum(row["completed"] for row in post_kill
                   if row["shard"] == "1") == 0
        # Bounded tail: p99 stays within the shed-bounded backlog
        # (queue_depth + shed_queue requests ahead, each <= a few ms).
        assert 0.0 < result.response.p99 < 100_000.0

    def test_aged_shard_retires_organically_and_redirects(self):
        scenario = ClusterScenario(
            shards=3, rate_rps=6000.0, duration_s=0.6, seed=11,
            flash_bytes=2 << 20, dram_bytes=1 << 20,
            footprint_pages=4096, aged_shard=0, aged_fault_rate=0.9)
        result = run_cluster(scenario, workers=1)
        aged = next(s for s in result.shards if s["shard_id"] == 0)
        assert aged["degraded"]
        assert aged["retired_at_us"] is not None
        assert aged["redirected"] > 0
        assert result.redirected == aged["redirected"]
        # Redirected traffic is served by the survivors, not dropped.
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        # And the run stays worker-layout invariant through failover.
        assert feed_lines(result) == \
            feed_lines(run_cluster(scenario, workers=2))

    def test_overload_sheds_instead_of_unbounded_backlog(self):
        scenario = ClusterScenario(shards=2, rate_rps=20_000.0,
                                   duration_s=0.2, seed=5, queue_depth=2,
                                   shed_queue=4, footprint_pages=4096)
        result = run_cluster(scenario, workers=1)
        assert result.shed > 0
        assert result.shed_fraction > 0.0
        assert result.completed + result.shed == result.arrivals
        # Shed requests never touched the cache, so the p99 of what was
        # admitted stays bounded by the short wait queue.
        assert result.response.p99 < 50_000.0

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            run_cluster(ClusterScenario(shards=0))
        with pytest.raises(ValueError):
            run_cluster(ClusterScenario(pattern="bursty"))
        with pytest.raises(ValueError):
            run_cluster(ClusterScenario(shards=2, kill_shard=5))


class TestReplicationAndChaos:
    def test_r2_sustains_zero_lost_reads_through_kill(self):
        # The headline availability claim: at R=1 reads in flight on
        # the dying shard are lost; at R=2 every one is reclassified as
        # a replica retry and served by a surviving sibling.
        r1 = run_cluster(_kill_scenario(replicas=1), workers=1)
        r2 = run_cluster(_kill_scenario(replicas=2), workers=1)
        assert r1.lost_reads > 0
        assert r1.lost == r1.lost_reads + r1.lost_writes
        assert r2.lost_reads == 0
        # Each retried read shows up as a redirect instead.
        assert r2.redirected >= r1.lost_reads

    def test_write_fanout_accounting_identity(self):
        scenario = ClusterScenario(shards=3, rate_rps=4000.0,
                                   duration_s=0.2, seed=7,
                                   footprint_pages=4096, replicas=2,
                                   workload="dbt2")
        result = run_cluster(scenario, workers=1)
        # planned_ops counts one op per read and one per replica per
        # write, so with write traffic it strictly exceeds requests.
        assert result.arrivals > result.requests
        assert result.completed + result.shed + result.lost == \
            result.arrivals

    def test_replicas_validation(self):
        with pytest.raises(ClusterError):
            run_cluster(ClusterScenario(shards=2, replicas=3))
        with pytest.raises(ClusterError):
            run_cluster(ClusterScenario(shards=3, replicas=0))
        # R=3 with one of three shards scripted to die cannot keep
        # three live replicas through the outage.
        with pytest.raises(ClusterError):
            run_cluster(_kill_scenario(replicas=3))

    def test_simultaneous_double_kill_runs_as_one_stage(self):
        scenario = _kill_scenario(shards=4, replicas=2,
                                  cascade=((2, 150_000.0),))
        events = []
        result = serve(scenario, workers=2, on_event=events.append)
        stages = [(event["stage"], event["shards"]) for event in events
                  if event["kind"] == "stage"]
        assert stages == [("kill@150000us", [1, 2]),
                          ("serving", [0, 3])]
        for shard_id in (1, 2):
            summary = next(s for s in result.shards
                           if s["shard_id"] == shard_id)
            assert summary["retired_at_us"] == 150_000.0
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        assert feed_lines(result) == \
            feed_lines(run_cluster(scenario, workers=1))

    def test_survivor_cascade_staged_and_deterministic(self):
        scenario = _kill_scenario(shards=4, replicas=2,
                                  kill_at_us=100_000.0,
                                  cascade=((2, 200_000.0),))
        events = []
        result = serve(scenario, workers=3, on_event=events.append)
        stages = [event["stage"] for event in events
                  if event["kind"] == "stage"]
        assert stages == ["kill@100000us", "kill@200000us", "serving"]
        assert result.lost_reads == 0
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        assert feed_lines(result) == \
            feed_lines(run_cluster(scenario, workers=1))

    def test_kill_at_time_zero(self):
        result = run_cluster(_kill_scenario(kill_at_us=0.0), workers=1)
        killed = next(s for s in result.shards if s["shard_id"] == 1)
        # Dead before the first arrival: the plan routes everything
        # around it and the corpse serves nothing.
        assert killed["arrivals"] == 0
        assert killed["retired_at_us"] == 0.0
        assert result.lost == 0
        assert result.completed + result.shed == result.arrivals

    def test_kill_after_horizon_changes_nothing(self):
        late = run_cluster(_kill_scenario(kill_at_us=10_000_000.0),
                           workers=1)
        baseline = run_cluster(_kill_scenario(kill_shard=None,
                                              kill_at_us=None), workers=1)
        assert late.completed == baseline.completed
        assert late.shed == baseline.shed
        assert late.lost == 0
        killed = next(s for s in late.shards if s["shard_id"] == 1)
        assert killed["retired_at_us"] == 10_000_000.0

    def test_scripted_kill_plus_organic_aging_still_accounts(self):
        scenario = ClusterScenario(
            shards=4, rate_rps=6000.0, duration_s=0.4, seed=11,
            flash_bytes=2 << 20, dram_bytes=1 << 20,
            footprint_pages=4096, replicas=2,
            kill_shard=1, kill_at_us=150_000.0,
            aged_shard=0, aged_fault_rate=0.9)
        events = []
        result = serve(scenario, workers=2, on_event=events.append)
        stages = [event["stage"] for event in events
                  if event["kind"] == "stage"]
        assert stages == ["kill@150000us", "organic", "serving"]
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        assert feed_lines(result) == \
            feed_lines(run_cluster(scenario, workers=1))


def _repair_scenario(**overrides):
    base = dict(shards=3, rate_rps=9000.0, duration_s=0.3, seed=3,
                queue_depth=4, shed_queue=16, footprint_pages=4096,
                replicas=2, kill_shard=1, kill_at_us=120_000.0,
                rejoin_at_us=240_000.0)
    base.update(overrides)
    return ClusterScenario(**base)


class TestRepair:
    def test_rejoin_runs_catch_up_sync(self):
        result = run_cluster(_repair_scenario(), workers=1)
        repaired = next(s for s in result.shards if s["shard_id"] == 1)
        assert repaired["incarnations"] == 2
        assert repaired["retired_at_us"] == 120_000.0
        assert repaired["rejoined_at_us"] == 240_000.0
        # Catch-up ran: the rejoiner wrote its moved keys back and the
        # sources served the paired reads, outside the foreground
        # accounting identity.
        assert result.sync_arrived > 0
        assert result.sync_arrived == (result.sync_completed
                                       + result.sync_lost
                                       + result.sync_skipped)
        # Sync ops come in write/read pairs (one per side per page).
        assert result.sync_arrived % 2 == 0
        assert result.completed + result.shed + result.lost == \
            result.arrivals
        # Post-rejoin foreground traffic flows back to the repaired
        # shard: its second incarnation served requests.
        assert repaired["completed"] > 0

    def test_rejoin_is_worker_layout_invariant(self):
        scenario = _repair_scenario()
        assert feed_lines(run_cluster(scenario, workers=1)) == \
            feed_lines(run_cluster(scenario, workers=3))

    def test_sync_moves_only_the_rejoiners_keys(self):
        # Minimal-move: every page in the catch-up stream would have
        # lived on the rejoiner had it been up, and every planned sync
        # write lands on the rejoined incarnation alone.
        from repro.cluster.cluster import _Planner, _plan_sync
        from repro.cluster.arrivals import build_arrivals as build

        scenario = _repair_scenario()
        chaos = scenario.chaos()
        planner = _Planner(scenario, chaos)
        arrivals = build(scenario.pattern, scenario.rate_rps,
                         scenario.duration_s, scenario.workload,
                         scenario.footprint_pages, scenario.seed)
        sync_streams = _plan_sync(planner, arrivals)
        writes = [a for a in sync_streams[(1, 1)] if not a[3]]
        assert writes
        touched_in_window = {a[2] for a in arrivals
                             if 120_000.0 <= a[0] < 240_000.0}
        for _, _, page, _ in writes:
            assert page in touched_in_window
            # The key's healthy-fleet replica set includes the rejoiner.
            assert 1 in planner.ring.route_replicas(
                page, scenario.replicas)
        # No other node receives sync writes — only paired reads.
        for node, stream in sync_streams.items():
            if node != (1, 1):
                assert all(a[3] for a in stream)

    def test_rejoin_needs_a_kill(self):
        with pytest.raises(ClusterError):
            run_cluster(ClusterScenario(shards=3, rejoin_at_us=10.0))
        with pytest.raises(ClusterError):
            run_cluster(_repair_scenario(rejoin_at_us=120_000.0))

    def test_fig16_availability_rows(self):
        from repro.experiments import fig16_availability

        points = fig16_availability.run_availability_sweep(
            replicas=(1, 2), shards=4, rate_rps=6000.0, duration_s=0.25,
            footprint_pages=2048, workers=2)
        assert [p.replicas for p in points] == [1, 2]
        # The figure's acceptance shape: replication eliminates lost
        # reads and repair streams keys back at both factors.
        assert points[1].lost_reads == 0
        assert all(p.sync_completed > 0 for p in points)
        for point in points:
            assert point.completed + point.shed + point.lost_reads \
                + point.lost_writes == point.planned_ops


class TestFeed:
    def test_jsonl_feed_shape(self, tmp_path):
        result = run_cluster(_kill_scenario(duration_s=0.2), workers=1)
        path = tmp_path / "feed.jsonl"
        write_feed_jsonl(result, str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["totals"]["arrivals"] == result.arrivals
        kinds = {line["type"] for line in lines}
        assert kinds == {"meta", "sample", "series"}
        samples = [line for line in lines if line["type"] == "sample"]
        # Cluster row leads each bucket.
        assert samples[0]["shard"] == "cluster"

    def test_csv_matches_bucket_rows(self, tmp_path):
        result = run_cluster(_kill_scenario(duration_s=0.2), workers=1)
        path = tmp_path / "feed.csv"
        write_feed_csv(result, str(path))
        rows = path.read_text().splitlines()
        assert rows[0].startswith("t_ms,shard,arrivals")
        assert len(rows) == 1 + len(result.bucket_rows())


class TestClusterService:
    def test_serve_matches_run_cluster_and_streams_events(self):
        scenario = _kill_scenario(duration_s=0.2)
        events = []
        served = serve(scenario, workers=2, on_event=events.append)
        direct = run_cluster(scenario, workers=1)
        assert feed_lines(served) == feed_lines(direct)
        kinds = [event["kind"] for event in events]
        assert "stage" in kinds and "shard" in kinds
        stages = [event["stage"] for event in events
                  if event["kind"] == "stage"]
        assert stages == ["kill@150000us", "serving"]
        shard_events = [event for event in events
                        if event["kind"] == "shard"]
        assert all(event["ok"] for event in shard_events)
        assert len(shard_events) == scenario.shards

    def test_service_object_is_reusable(self):
        scenario = ClusterScenario(shards=2, rate_rps=2000.0,
                                   duration_s=0.1, seed=2,
                                   footprint_pages=2048)
        service = ClusterService(scenario, workers=1)
        import asyncio
        first = asyncio.run(service.run())
        second = asyncio.run(service.run())
        assert feed_lines(first) == feed_lines(second)
