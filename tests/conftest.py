"""Shared fixtures: small geometries and pre-wired cache stacks."""

from __future__ import annotations

import pytest

from repro.core.cache import FlashCacheConfig, FlashDiskCache
from repro.core.controller import ProgrammableFlashController
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import CellMode
from repro.flash.wear import CellLifetimeModel, WearModelConfig


@pytest.fixture
def small_geometry() -> FlashGeometry:
    """8 blocks of 4 frames: tiny enough to exhaust in a unit test."""
    return FlashGeometry(frames_per_block=4, num_blocks=8)


@pytest.fixture
def device(small_geometry) -> FlashDevice:
    return FlashDevice(geometry=small_geometry, initial_mode=CellMode.MLC,
                       seed=99)


@pytest.fixture
def worn_device(small_geometry) -> FlashDevice:
    """Device with the wear model enabled."""
    return FlashDevice(
        geometry=small_geometry,
        lifetime_model=CellLifetimeModel(WearModelConfig(stdev_frac=0.05)),
        initial_mode=CellMode.MLC,
        seed=7,
    )


@pytest.fixture
def controller(device) -> ProgrammableFlashController:
    return ProgrammableFlashController(device)


@pytest.fixture
def split_cache(controller) -> FlashDiskCache:
    return FlashDiskCache(controller, FlashCacheConfig(
        split=True, hot_promotion=False))


@pytest.fixture
def unified_cache(controller) -> FlashDiskCache:
    return FlashDiskCache(controller, FlashCacheConfig(
        split=False, hot_promotion=False))


def make_cache(num_blocks: int = 8, frames_per_block: int = 4,
               **config_kwargs) -> FlashDiskCache:
    """Standalone cache factory for tests needing custom parameters."""
    geometry = FlashGeometry(frames_per_block=frames_per_block,
                             num_blocks=num_blocks)
    device = FlashDevice(geometry=geometry, initial_mode=CellMode.MLC)
    controller = ProgrammableFlashController(device)
    config_kwargs.setdefault("hot_promotion", False)
    return FlashDiskCache(controller, FlashCacheConfig(**config_kwargs))
