"""Trace-analysis tests: profiling, tail classification, empirical
popularity distributions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.analysis import (
    EmpiricalPopularity,
    fit_tail,
    popularity_counts,
    profile_trace,
)
from repro.workloads.macro import build_workload
from repro.workloads.trace import OP_READ, OP_WRITE, TraceRecord


class TestPopularityCounts:
    def test_counts_sorted_descending(self):
        records = [TraceRecord(0, OP_READ)] * 5 + [TraceRecord(1, OP_READ)]
        assert popularity_counts(records) == [5, 1]

    def test_extents_expand(self):
        records = [TraceRecord(0, OP_WRITE, pages=3)]
        assert popularity_counts(records) == [1, 1, 1]


class TestTailFit:
    def test_recovers_zipf_parameter(self):
        records = build_workload("alpha2", num_records=30_000,
                                 footprint_pages=8192, seed=4)
        fit = fit_tail(popularity_counts(records))
        assert fit.family == "zipf"
        assert fit.is_long_tailed
        assert 0.8 < fit.parameter < 1.5  # generator alpha = 1.2

    def test_recovers_exponential_parameter(self):
        records = build_workload("exp2", num_records=30_000,
                                 footprint_pages=8192, seed=4)
        fit = fit_tail(popularity_counts(records))
        assert fit.family == "exponential"
        assert not fit.is_long_tailed
        assert fit.parameter == pytest.approx(0.1, rel=0.2)

    def test_degenerate_all_singletons(self):
        fit = fit_tail([1, 1, 1, 1])
        assert fit.family == "zipf"
        assert fit.parameter == 0.0


class TestProfile:
    def test_full_profile(self):
        records = build_workload("specweb99", num_records=10_000,
                                 footprint_pages=4096, seed=2)
        profile = profile_trace(records)
        assert profile.records == 10_000
        assert profile.read_fraction > 0.95
        assert 0 < profile.footprint_pages <= 4096
        assert 0.0 < profile.top_1pct_mass <= 1.0
        assert "reads" in profile.summary()

    def test_skew_ordering_across_workloads(self):
        """Hotter tails concentrate more access mass in the same number of
        top pages (top-1%-of-footprint is not comparable across wildly
        different footprints, so compare a fixed top-32 mass)."""
        masses = {}
        for name in ("uniform", "alpha2", "exp2"):
            records = build_workload(name, num_records=15_000,
                                     footprint_pages=8192, seed=3)
            counts = popularity_counts(records)
            masses[name] = sum(counts[:32]) / sum(counts)
        assert masses["uniform"] < masses["alpha2"] < masses["exp2"]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            profile_trace([])


class TestEmpiricalPopularity:
    def test_from_trace_probabilities(self):
        records = [TraceRecord(0, OP_READ)] * 3 + [TraceRecord(9, OP_READ)]
        dist = EmpiricalPopularity.from_trace(records)
        assert dist.n == 2
        assert dist.rank_probability(0) == pytest.approx(0.75)
        assert dist.rank_probability(1) == pytest.approx(0.25)

    @given(u=st.floats(min_value=0.0, max_value=0.999999))
    def test_property_sampling_in_range(self, u):
        dist = EmpiricalPopularity([10, 5, 2, 1])
        assert 0 <= dist.sample_rank(u) < 4

    def test_sampling_respects_mass(self):
        dist = EmpiricalPopularity([99, 1])
        assert dist.sample_rank(0.5) == 0
        assert dist.sample_rank(0.995) == 1

    def test_feeds_density_optimizer(self):
        """An empirical distribution plugs into the Figure 7 machinery."""
        from repro.core.density import DensityPartitionOptimizer
        records = build_workload("exp2", num_records=8_000,
                                 footprint_pages=2048, seed=7)
        optimizer = DensityPartitionOptimizer(
            EmpiricalPopularity.from_trace(records))
        point = optimizer.optimize(optimizer.working_set_area_mm2,
                                   grid_points=21)
        assert 0.0 <= point.optimal_slc_fraction <= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalPopularity([])
