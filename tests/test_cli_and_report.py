"""CLI (`python -m repro`) and report-generator tests."""

from __future__ import annotations

import io

import pytest

from repro.__main__ import main
from repro.experiments.report import ReportScale, generate_report
from repro.workloads.macro import build_workload
from repro.workloads.trace import write_spc


class TestCli:
    def test_experiments_lists_runners(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        for name in ("fig1b", "fig4", "fig12"):
            assert name in output

    def test_figure_command_prints_series(self, capsys):
        assert main(["fig6"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6(a)" in output
        assert "Figure 6(b)" in output

    def test_profile_command(self, tmp_path, capsys):
        records = build_workload("alpha2", num_records=2000,
                                 footprint_pages=2048, seed=5)
        path = tmp_path / "trace.spc"
        with open(path, "w") as stream:
            write_spc(records, stream)
        assert main(["profile", str(path), "--limit", "1500"]) == 0
        output = capsys.readouterr().out
        assert "records" in output and "tail" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestReport:
    def test_section_selection_and_structure(self):
        report = generate_report(scale=ReportScale.quick(),
                                 sections=["fig6"])
        assert report.startswith("# repro evaluation report")
        assert "Figure 6" in report
        assert "Figure 12" not in report

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError):
            generate_report(sections=["fig99"])

    def test_aging_sections_run_quick(self):
        report = generate_report(scale=ReportScale.quick(),
                                 sections=["fig11", "fig12"])
        assert "average improvement" in report
        assert "| uniform |" in report

    def test_scales(self):
        assert ReportScale.quick().trace_records \
            < ReportScale().trace_records \
            < ReportScale.full().trace_records
