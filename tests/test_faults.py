"""Fault injection and graceful degradation tests.

Covers the injector's determinism contract, fault propagation out of the
device (``ProgramFailure``/``EraseFailure``), the controller's retry
ladder and bad-frame/retirement bookkeeping, the cache's remap/drop/
shrink recovery paths down to the DRAM+disk bypass, and an end-to-end
faulted trace through :func:`repro.sim.engine.run_trace`.
"""

from __future__ import annotations

import pytest

from repro.core.cache import FlashCacheConfig, FlashDiskCache
from repro.core.controller import (
    ControllerConfig,
    ProgrammableFlashController,
)
from repro.core.errors import (
    CacheCapacityError,
    CacheDegradedError,
    CacheError,
    NoEvictableBlockError,
    ReserveBlockLostError,
)
from repro.core.hierarchy import build_flash_system
from repro.faults.injector import FaultConfig, FaultInjector
from repro.flash.device import EraseFailure, FlashDevice, ProgramFailure
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.timing import CellMode
from repro.sim.engine import run_trace
from repro.workloads.macro import build_workload


class ScriptedInjector(FaultInjector):
    """Injector with scripted hard-fault decisions for deterministic
    tests; unscripted queries answer False (no fault)."""

    def __init__(self, program_script=(), erase_script=()):
        super().__init__(FaultConfig())
        self._program_script = list(program_script)
        self._erase_script = list(erase_script)

    def program_fault(self, block, frame):
        if self._program_script and self._program_script.pop(0):
            self.stats.program_faults += 1
            return True
        return False

    def erase_fault(self, block):
        if self._erase_script and self._erase_script.pop(0):
            self.stats.erase_faults += 1
            return True
        return False


def make_device(fault_config=None, injector=None, num_blocks=8,
                frames_per_block=4, seed=99) -> FlashDevice:
    if injector is None and fault_config is not None:
        injector = FaultInjector(fault_config)
    return FlashDevice(
        geometry=FlashGeometry(frames_per_block=frames_per_block,
                               num_blocks=num_blocks),
        initial_mode=CellMode.MLC,
        seed=seed,
        fault_injector=injector,
    )


def make_faulty_cache(injector, controller_config=None, **cache_kwargs):
    device = make_device(injector=injector)
    controller = ProgrammableFlashController(device,
                                             config=controller_config)
    cache_kwargs.setdefault("hot_promotion", False)
    return FlashDiskCache(controller, FlashCacheConfig(**cache_kwargs))


# ---------------------------------------------------------------------------
# Injector semantics
# ---------------------------------------------------------------------------


class TestFaultConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(read_disturb_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(program_fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(read_disturb_bits=0)

    def test_any_enabled(self):
        assert not FaultConfig().any_enabled
        assert not FaultConfig.uniform(0.0).any_enabled
        assert FaultConfig(erase_fail_rate=0.01).any_enabled

    def test_uniform_derives_rarer_hard_faults(self):
        cfg = FaultConfig.uniform(0.1, seed=5)
        assert cfg.read_disturb_rate == 0.1
        assert cfg.program_fail_rate < cfg.read_disturb_rate
        assert cfg.erase_fail_rate < cfg.program_fail_rate
        assert cfg.seed == 5

    @pytest.mark.parametrize("field", [
        "read_disturb_rate", "program_fail_rate",
        "erase_fail_rate", "infant_mortality_rate",
    ])
    def test_each_probability_field_rejects_above_one(self, field):
        # Probabilities live in [0, 1]; 1.0 itself is the legal maximum.
        FaultConfig(**{field: 1.0})
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: 1.0000001})
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: 2.0})


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(FaultConfig(program_fail_rate=0.3, seed=42))
        b = FaultInjector(FaultConfig(program_fail_rate=0.3, seed=42))
        assert [a.program_fault(0, 0) for _ in range(200)] \
            == [b.program_fault(0, 0) for _ in range(200)]

    def test_streams_are_independent(self):
        cfg = FaultConfig(read_disturb_rate=0.2, program_fail_rate=0.2,
                          seed=7)
        plain = FaultInjector(cfg)
        interleaved = FaultInjector(cfg)
        plain_bits = [plain.read_fault_bits(0, 0) for _ in range(100)]
        mixed_bits = []
        for _ in range(100):
            interleaved.program_fault(0, 0)  # must not perturb reads
            mixed_bits.append(interleaved.read_fault_bits(0, 0))
        assert plain_bits == mixed_bits

    def test_infant_mortality_is_order_independent(self):
        cfg = FaultConfig(infant_mortality_rate=0.3, seed=13)
        ascending = FaultInjector(cfg)
        descending = FaultInjector(cfg)
        dead_up = {b for b in range(50) if ascending.block_dead(b)}
        dead_down = {b for b in reversed(range(50))
                     if descending.block_dead(b)}
        assert dead_up == dead_down
        assert 0 < len(dead_up) < 50

    def test_burst_decays_across_senses(self):
        injector = FaultInjector(FaultConfig(
            read_disturb_rate=1.0, read_disturb_bits=8,
            read_disturb_span=3, seed=1))
        assert [injector.read_fault_bits(0, 0) for _ in range(4)] \
            == [8, 4, 2, 1]
        assert injector.stats.read_disturbs == 1
        assert injector.stats.disturbed_reads == 4

    def test_zero_span_burst_is_a_single_full_strength_read(self):
        # span=0 is the degenerate burst: exactly one disturbed read at
        # full strength, no decay tail, and the next burst re-arms
        # independently (rate=1.0 makes every read start one).
        injector = FaultInjector(FaultConfig(
            read_disturb_rate=1.0, read_disturb_bits=8,
            read_disturb_span=0, seed=1))
        assert [injector.read_fault_bits(0, 0) for _ in range(3)] \
            == [8, 8, 8]
        assert injector.stats.read_disturbs == 3
        assert injector.stats.disturbed_reads == 3


# ---------------------------------------------------------------------------
# Device-level propagation
# ---------------------------------------------------------------------------


class TestDevicePropagation:
    def test_program_failure_burns_page_and_costs_latency(self):
        device = make_device(injector=ScriptedInjector(
            program_script=[True]))
        address = PageAddress(0, 0, 0)
        with pytest.raises(ProgramFailure) as excinfo:
            device.program_page(address)
        assert excinfo.value.address == address
        assert excinfo.value.latency_us > 0
        # The attempt burned the page: a retry needs an erase first.
        from repro.flash.device import ProgramError
        with pytest.raises(ProgramError):
            device.program_page(address)

    def test_erase_failure_keeps_contents(self):
        device = make_device(injector=ScriptedInjector(
            erase_script=[True]))
        device.program_page(PageAddress(0, 0, 0))
        with pytest.raises(EraseFailure) as excinfo:
            device.erase_block(0)
        assert excinfo.value.block == 0
        assert excinfo.value.latency_us > 0
        # Second attempt (script exhausted) succeeds.
        result = device.erase_block(0)
        assert result.erase_count == 1

    def test_dead_block_reads_all_errors_and_rejects_writes(self):
        device = make_device(
            fault_config=FaultConfig(infant_mortality_rate=1.0, seed=3))
        read = device.read_page(PageAddress(0, 0, 0))
        assert read.raw_bit_errors == device.geometry.cells_per_frame
        with pytest.raises(ProgramFailure):
            device.program_page(PageAddress(0, 1, 0))
        with pytest.raises(EraseFailure):
            device.erase_block(0)

    def test_transient_bits_ride_on_reads(self):
        device = make_device(fault_config=FaultConfig(
            read_disturb_rate=1.0, read_disturb_bits=8, seed=2))
        first = device.read_page(PageAddress(0, 0, 0)).raw_bit_errors
        second = device.read_page(PageAddress(0, 0, 0)).raw_bit_errors
        assert first == 8
        assert second == 4


# ---------------------------------------------------------------------------
# Controller: retry ladder, bad frames, retirement
# ---------------------------------------------------------------------------


class TestControllerFaults:
    def _controller(self, retry: int) -> ProgrammableFlashController:
        device = make_device(fault_config=FaultConfig(
            read_disturb_rate=1.0, read_disturb_bits=8,
            read_disturb_span=3, seed=1))
        return ProgrammableFlashController(
            device, config=ControllerConfig(read_retry_max=retry))

    def test_single_sense_fails_on_burst(self):
        controller = self._controller(retry=0)
        result = controller.read(PageAddress(0, 0, 0))
        assert not result.recovered
        assert controller.stats.uncorrectable_reads == 1
        assert controller.stats.read_retries == 0

    def test_retry_ladder_rides_out_burst(self):
        controller = self._controller(retry=3)
        baseline = self._controller(retry=0).read(
            PageAddress(0, 0, 0)).latency_us
        result = controller.read(PageAddress(0, 0, 0))
        assert result.recovered
        assert controller.stats.read_retries == 3
        assert controller.stats.retry_recovered_reads == 1
        assert controller.stats.uncorrectable_reads == 0
        # Every re-sense is paid for.
        assert result.latency_us > baseline

    def test_program_failure_marks_frame_bad(self):
        device = make_device(injector=ScriptedInjector(
            program_script=[True]))
        controller = ProgrammableFlashController(device)
        address = PageAddress(0, 0, 0)
        before = controller.block_capacity_pages(0)
        with pytest.raises(ProgramFailure):
            controller.program(address, lba=1)
        assert controller.is_bad_frame(0, 0)
        assert controller.stats.program_faults == 1
        assert controller.stats.frames_marked_bad == 1
        assert controller.block_capacity_pages(0) < before
        assert all(a.frame != 0 for a in controller.pages_of_block(0))

    def test_bad_frame_keeps_valid_entries_for_unmap(self):
        device = make_device(injector=ScriptedInjector(
            program_script=[False, True]))
        controller = ProgrammableFlashController(device)
        controller.program(PageAddress(0, 0, 0), lba=11)
        with pytest.raises(ProgramFailure):
            controller.program(PageAddress(0, 0, 1), lba=12)
        # The valid page's back-pointer survives for the cache layer...
        entry = controller.fpst.get(PageAddress(0, 0, 0))
        assert entry is not None and entry.lba == 11
        # ...while the invalid (never-programmed) pages are dropped.
        assert controller.fpst.get(PageAddress(0, 1, 0)) is None \
            or not controller.is_bad_frame(0, 1)

    def test_block_retires_after_repeated_program_failures(self):
        threshold = 3
        device = make_device(injector=ScriptedInjector(
            program_script=[True] * threshold))
        controller = ProgrammableFlashController(
            device, config=ControllerConfig(
                program_fail_retire_threshold=threshold))
        retired = []
        controller.retire_listener = retired.append
        for frame in range(threshold):
            with pytest.raises(ProgramFailure):
                controller.program(PageAddress(0, frame, 0))
        assert controller.is_retired(0)
        assert retired == [0]

    def test_erase_failure_retires_block_and_reraises(self):
        device = make_device(injector=ScriptedInjector(
            erase_script=[True]))
        controller = ProgrammableFlashController(device)
        retired = []
        controller.retire_listener = retired.append
        with pytest.raises(EraseFailure):
            controller.erase(0)
        assert controller.is_retired(0)
        assert controller.stats.erase_faults == 1
        assert retired == [0]


# ---------------------------------------------------------------------------
# Typed exceptions
# ---------------------------------------------------------------------------


class TestTypedErrors:
    def test_hierarchy(self):
        # Backward compatible with callers that catch RuntimeError.
        assert issubclass(CacheError, RuntimeError)
        assert issubclass(CacheCapacityError, CacheError)
        assert issubclass(ReserveBlockLostError, CacheDegradedError)
        assert issubclass(NoEvictableBlockError, CacheDegradedError)
        # Capacity exhaustion is not a degradation signal.
        assert not issubclass(CacheCapacityError, CacheDegradedError)

    def test_reexported_from_core(self):
        from repro import core
        assert core.CacheCapacityError is CacheCapacityError
        import repro
        assert repro.CacheDegradedError is CacheDegradedError

    def test_ssd_full_raises_capacity_error(self):
        cache = make_faulty_cache(None, split=False,
                                  allow_eviction_for_space=False,
                                  gc_move_budget=None)
        with pytest.raises(CacheCapacityError):
            for lba in range(10_000):
                cache.write(lba)


# ---------------------------------------------------------------------------
# Cache: remap, shrink, degrade, bypass
# ---------------------------------------------------------------------------


class TestCacheRecovery:
    def test_program_failure_remaps_to_fresh_frame(self):
        cache = make_faulty_cache(ScriptedInjector(program_script=[True]))
        outcome = cache.write(1)
        assert outcome.latency_us > 0
        assert cache.stats.remapped_programs == 1
        assert cache.read(1) is not None  # the data landed somewhere

    def test_bad_frame_unmaps_resident_pages(self):
        # First program succeeds (lba 1), second fails, killing the frame
        # holding lba 1's copy: the dirty page must leave via the flush.
        cache = make_faulty_cache(ScriptedInjector(
            program_script=[False, True]))
        cache.write(1)
        cache.write(2)
        assert cache.stats.remapped_programs == 1
        assert cache.stats.unrecovered_faults == 1
        assert cache.read(1) is None       # copy died with the frame
        assert cache.read(2) is not None   # remapped copy survives
        assert 1 in cache.flush()

    def test_erase_failure_shrinks_capacity(self):
        cache = make_faulty_cache(ScriptedInjector(erase_script=[True]),
                                  min_live_blocks=1)
        before = cache.total_pages()
        block = cache._read.free_blocks[0]
        with pytest.raises(EraseFailure):
            cache.controller.erase(block)
        assert cache.stats.retired_blocks == 1
        assert cache.total_pages() < before
        assert cache.live_capacity_fraction() < 1.0
        assert block not in cache._read.free_blocks
        assert not cache.degraded

    def test_degrades_below_min_blocks_floor(self):
        cache = make_faulty_cache(ScriptedInjector(erase_script=[True]),
                                  min_live_blocks=8)
        cache.write(5)  # dirty page that must survive the transition
        block = cache._read.free_blocks[0]
        with pytest.raises(EraseFailure):
            cache.controller.erase(block)
        assert cache.degraded
        assert cache.stats.degraded_events == 1
        # Bypass semantics: reads miss, writes forward to disk, fills
        # are no-ops, and the orphaned dirty page still reaches disk.
        assert cache.read(5) is None
        assert cache.stats.bypass_reads == 1
        outcome = cache.write(6)
        assert outcome.flushed_lbas == (6,)
        assert cache.stats.bypass_writes == 1
        assert cache.insert_clean(7) == 0.0
        assert 5 in cache.flush()

    def test_total_program_failure_degrades_not_crashes(self):
        cache = make_faulty_cache(
            FaultInjector(FaultConfig(program_fail_rate=1.0, seed=4)))
        for lba in range(20):
            cache.write(lba)
        assert cache.degraded
        assert cache.stats.remapped_programs > 0
        assert cache.stats.retired_blocks > 0
        # Still serving, straight to disk.
        assert cache.write(99).flushed_lbas == (99,)

    def test_retire_listener_is_wired_at_construction(self):
        cache = make_faulty_cache(ScriptedInjector())
        assert cache.controller.retire_listener is not None
        assert cache._fault_aware

    def test_no_injector_keeps_advisory_retirement(self):
        """Without an injector (wear-only studies) retirement must not
        shed blocks — the historical figures depend on it."""
        cache = make_faulty_cache(None, min_live_blocks=1)
        assert not cache._fault_aware
        before = len(cache._read.free_blocks)
        cache.controller._retire_block(cache._read.free_blocks[0])
        assert len(cache._read.free_blocks) == before
        assert cache.stats.retired_blocks == 0


# ---------------------------------------------------------------------------
# End to end through run_trace
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def _run(self, fault_config, read_retry_max=0, num_records=2500):
        system = build_flash_system(
            dram_bytes=1 << 20, flash_bytes=4 << 20,
            controller_config=ControllerConfig(
                read_retry_max=read_retry_max),
            fault_config=fault_config, seed=17)
        trace = build_workload("websearch1", num_records=num_records,
                               footprint_pages=4096, seed=17)
        return run_trace(system, trace)

    def test_uncorrectable_reads_become_misses(self):
        report = self._run(FaultConfig(
            read_disturb_rate=0.2, read_disturb_bits=64, seed=11))
        flash = report.flash
        assert flash is not None
        assert flash.uncorrectable > 0
        assert flash.recovered_faults > 0
        assert report.controller.uncorrectable_reads > 0
        assert report.faults is not None
        assert report.faults.read_disturbs > 0
        assert not report.flash_degraded

    def test_retry_ladder_reduces_uncorrectable_reads(self):
        # Bursts of 8 bits decay to 1 over three re-senses — within even
        # the initial ECC strength, so the ladder can actually save them.
        cfg = FaultConfig(read_disturb_rate=0.2, read_disturb_bits=8,
                          read_disturb_span=3, seed=11)
        without = self._run(cfg, read_retry_max=0)
        with_retry = self._run(cfg, read_retry_max=3)
        assert with_retry.controller.retry_recovered_reads > 0
        assert with_retry.controller.uncorrectable_reads \
            < without.controller.uncorrectable_reads

    def test_heavy_faults_complete_without_exception(self):
        report = self._run(FaultConfig.uniform(0.3, seed=2))
        assert report.requests > 0
        assert report.flash_live_capacity < 1.0
        assert report.flash.retired_blocks > 0

    def test_zero_rate_config_is_bit_identical_to_no_config(self):
        baseline = self._run(None, num_records=1500)
        zero = self._run(FaultConfig.uniform(0.0), num_records=1500)
        assert zero.faults is None  # no injector was attached at all
        assert zero.average_latency_us == baseline.average_latency_us
        assert zero.wall_clock_us == baseline.wall_clock_us
        assert zero.flash_miss_rate == baseline.flash_miss_rate
        assert zero.disk_reads == baseline.disk_reads
        assert zero.disk_writes == baseline.disk_writes
        assert zero.flash_live_capacity == 1.0
