"""Power accounting for the Figure 9 evaluation."""

from .models import PowerBreakdown, system_power_breakdown

__all__ = ["PowerBreakdown", "system_power_breakdown"]
