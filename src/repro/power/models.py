"""System power accounting (Figure 9).

Figure 9 reports, for each platform configuration, the average power of
the *system memory + disk* subsystem broken into four stacked components —
memory read power, memory write power, memory idle power, and disk power —
with the achieved network bandwidth on the secondary axis.  "System
memory" covers DRAM and (when present) the NAND Flash, whose active energy
is split between the read and write components in proportion to its
per-kind busy time; NAND idle power (6 uW) joins the idle component.

:func:`system_power_breakdown` derives the whole figure from a simulated
system's accumulated component statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hierarchy import DramOnlySystem, FlashBackedSystem

__all__ = ["PowerBreakdown", "system_power_breakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power in watts over the simulated window (Figure 9 bars)."""

    mem_read_w: float
    mem_write_w: float
    mem_idle_w: float
    disk_w: float
    wall_clock_us: float
    throughput_rps: float

    @property
    def memory_w(self) -> float:
        return self.mem_read_w + self.mem_write_w + self.mem_idle_w

    @property
    def total_w(self) -> float:
        """Memory + disk: the paper's 'overall power' axis."""
        return self.memory_w + self.disk_w

    def as_dict(self) -> dict[str, float]:
        return {
            "mem_read_w": self.mem_read_w,
            "mem_write_w": self.mem_write_w,
            "mem_idle_w": self.mem_idle_w,
            "disk_w": self.disk_w,
            "total_w": self.total_w,
            "throughput_rps": self.throughput_rps,
        }


def system_power_breakdown(system: DramOnlySystem | FlashBackedSystem
                           ) -> PowerBreakdown:
    """Compute the Figure 9 power split for a finished simulation."""
    wall_us = system.wall_clock_us
    if wall_us <= 0:
        raise ValueError("system has not processed any requests")
    window_s = wall_us * 1e-6

    dram_split = system.dram.energy_breakdown(wall_us)
    mem_read_j = dram_split.read_j
    mem_write_j = dram_split.write_j
    mem_idle_j = dram_split.idle_j

    if isinstance(system, FlashBackedSystem):
        device = system.flash.controller.device
        stats = device.stats
        # Split Flash active energy by busy time: reads to the read bar,
        # programs + erases to the write bar (both are write-path work).
        if stats.busy_us > 0:
            read_share = stats.read_busy_us / stats.busy_us
        else:
            read_share = 0.0
        mem_read_j += stats.energy_j * read_share
        mem_write_j += stats.energy_j * (1.0 - read_share)
        mem_idle_j += stats.idle_energy(wall_us, device.power.idle_w)

    disk_j = system.disk.energy_j(wall_us)
    return PowerBreakdown(
        mem_read_w=mem_read_j / window_s,
        mem_write_w=mem_write_j / window_s,
        mem_idle_w=mem_idle_j / window_s,
        disk_w=disk_j / window_s,
        wall_clock_us=wall_us,
        throughput_rps=system.throughput_rps(),
    )
