"""Hard-disk substrate."""

from .model import DESKTOP_DISK_POWER, LAPTOP_DISK_POWER, DiskModel

__all__ = ["DESKTOP_DISK_POWER", "LAPTOP_DISK_POWER", "DiskModel"]
