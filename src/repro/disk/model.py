"""Hard disk drive model: latency and power.

Table 3 configures the simulated platform with an IDE disk averaging
4.2 ms per access; the paper's power numbers come from a laptop drive
(Hitachi Travelstar 7K60) because the scaled-down experiments use a small
disk.  We default to those laptop-class numbers and also export the 750GB
desktop numbers from Table 2 for the device-comparison table bench.

The model distinguishes active seeks from idle spinning and supports an
optional spin-down state so power studies can explore disk idling — the
mechanism by which a bigger effective disk cache (DRAM+Flash) saves disk
power in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..flash.timing import DiskPower, DiskTiming, DEFAULT_DISK_TIMING

__all__ = [
    "LAPTOP_DISK_POWER",
    "DESKTOP_DISK_POWER",
    "DiskModel",
]

#: Hitachi Travelstar 7K60-class laptop drive (paper section 6.1).
LAPTOP_DISK_POWER = DiskPower(active_w=2.5, idle_w=0.85)

#: 750GB desktop drive from Table 2.
DESKTOP_DISK_POWER = DiskPower(active_w=13.0, idle_w=9.3)


@dataclass
class DiskModel:
    """A single hard drive with average-latency timing.

    The paper's platform model uses the drive's *average* access latency
    (Table 3: 4.2 ms) rather than a seek-accurate model; request streams
    that reach the disk after two cache levels are effectively random, so
    the average is representative.
    """

    timing: DiskTiming = field(default_factory=lambda: DEFAULT_DISK_TIMING)
    power: DiskPower = field(default_factory=lambda: LAPTOP_DISK_POWER)

    reads: int = 0
    writes: int = 0
    busy_us: float = 0.0
    #: Optional :class:`repro.telemetry.Telemetry` handle; ``None``
    #: (default) keeps accesses un-instrumented.  Excluded from equality
    #: so instrumented and bare models still compare by behaviour.
    telemetry: object | None = field(default=None, repr=False, compare=False)

    def read(self, num_pages: int = 1) -> float:
        """One read request of ``num_pages`` contiguous pages."""
        latency = self._access(num_pages)
        self.reads += 1
        if self.telemetry is not None:
            self.telemetry.disk_read(latency)
        return latency

    def write(self, num_pages: int = 1) -> float:
        latency = self._access(num_pages)
        self.writes += 1
        if self.telemetry is not None:
            self.telemetry.disk_write(latency)
        return latency

    def _access(self, num_pages: int) -> float:
        if num_pages < 1:
            raise ValueError("disk access must transfer at least one page")
        # Sequential pages after the first stream at media rate; the
        # average-access figure already contains seek + rotation + transfer
        # for one page.  ~50 MB/s media rate => ~40 us per extra 2KB page.
        latency = self.timing.average_access_us + (num_pages - 1) * 40.0
        self.busy_us += latency
        return latency

    # -- power -------------------------------------------------------------------

    def energy_j(self, wall_clock_us: float) -> float:
        """Active + idle energy over the simulated window."""
        if wall_clock_us < self.busy_us - 1e-6:
            raise ValueError(
                f"wall clock {wall_clock_us}us shorter than busy {self.busy_us}us"
            )
        idle_us = wall_clock_us - self.busy_us
        return (self.power.active_w * self.busy_us
                + self.power.idle_w * idle_us) * 1e-6

    def average_power_w(self, wall_clock_us: float) -> float:
        if wall_clock_us <= 0:
            return 0.0
        return self.energy_j(wall_clock_us) / (wall_clock_us * 1e-6)

    def reset_stats(self) -> None:
        self.reads = self.writes = 0
        self.busy_us = 0.0
