"""Simulator self-benchmark: ``repro bench``.

Measures how fast the *simulator* runs (not the modelled device):
wall-clock requests/sec for a fixed deterministic workload, plus a
per-subsystem breakdown of where that wall time goes, from a
``cProfile`` pass aggregated by ``repro.*`` subpackage.  The result is
written to ``BENCH_<date>.json`` so successive PRs can diff simulator
performance the way they diff figure outputs.

The benchmark workload itself is deterministic (fixed seed, fixed
record count); only the wall-clock numbers vary run to run.
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import json
import pstats
import time
from typing import Any, Dict, List, Tuple

from .atomicio import atomic_write_text
from .core.hierarchy import build_flash_system
from .sim.concurrent import run_trace_concurrent
from .workloads.macro import build_workload

__all__ = ["run_bench", "run_bench_command"]

_SRC_MARKER = "/repro/"


def _fresh_system_and_records(num_records: int):
    records = build_workload("specweb99", num_records=num_records, seed=11)
    system = build_flash_system(dram_bytes=64 << 20, flash_bytes=256 << 20)
    return system, records


def _subsystem_of(filename: str) -> str:
    """Map a profiled frame's file to its ``repro`` subpackage."""
    marker = filename.rfind(_SRC_MARKER)
    if marker < 0:
        return "other"
    parts = filename[marker + len(_SRC_MARKER):].split("/")
    return f"repro.{parts[0].removesuffix('.py')}" if parts else "other"


def _profile_shares(num_records: int) -> List[Dict[str, Any]]:
    """One profiled serial replay, grouped into subsystem time shares.

    Shares are of *total* time (``tottime``: time inside the frame,
    excluding callees) so they sum to ~1.0 across subsystems instead of
    multiply-counting the call stack.
    """
    system, records = _fresh_system_and_records(num_records)
    profiler = cProfile.Profile()
    profiler.enable()
    run_trace_concurrent(system, records)
    profiler.disable()
    stats = pstats.Stats(profiler)
    totals: Dict[str, float] = {}
    overall = 0.0
    for (filename, _line, _name), row in stats.stats.items():  # type: ignore[attr-defined]
        tottime = row[2]
        totals[_subsystem_of(filename)] = (
            totals.get(_subsystem_of(filename), 0.0) + tottime)
        overall += tottime
    if overall <= 0:
        return []
    shares = [{"subsystem": subsystem,
               "seconds": round(seconds, 4),
               "share": round(seconds / overall, 4)}
              for subsystem, seconds in totals.items()]
    shares.sort(key=lambda entry: (-entry["seconds"], entry["subsystem"]))
    return shares


def _timed_replay(num_records: int, queue_depth: int, channels: int,
                  planes: int) -> Tuple[float, int]:
    """Wall seconds and request count for one un-profiled replay."""
    system, records = _fresh_system_and_records(num_records)
    # Benchmarking the simulator's own speed is the one place wall
    # clocks belong; simulated time stays inside the engines.
    start = time.perf_counter()  # simlint: ignore[SIM001] -- host-side benchmark timing, not simulated time
    report = run_trace_concurrent(system, records, queue_depth=queue_depth,
                                  channels=channels, planes=planes)
    elapsed = time.perf_counter() - start  # simlint: ignore[SIM001] -- host-side benchmark timing, not simulated time
    return elapsed, report.requests


def run_bench(num_records: int = 40_000) -> Dict[str, Any]:
    """Run the benchmark suite; returns the JSON-ready result."""
    modes = [
        {"name": "serial", "queue_depth": 1, "channels": 1, "planes": 1},
        {"name": "concurrent_qd16_ch4", "queue_depth": 16, "channels": 4,
         "planes": 2},
    ]
    results = []
    for mode in modes:
        elapsed, requests = _timed_replay(num_records,
                                          mode["queue_depth"],
                                          mode["channels"], mode["planes"])
        results.append({
            **mode,
            "wall_seconds": round(elapsed, 4),
            "requests": requests,
            "requests_per_sec": round(requests / elapsed, 1)
            if elapsed > 0 else 0.0,
        })
    return {
        "num_records": num_records,
        "modes": results,
        "profile_shares": _profile_shares(num_records),
    }


def run_bench_command(args: argparse.Namespace) -> int:
    result = run_bench(num_records=args.num_records)
    today = datetime.date.today().isoformat()  # simlint: ignore[SIM001] -- report filename stamp, not simulated time
    out_path = args.out if args.out else f"BENCH_{today}.json"
    result["date"] = today
    atomic_write_text(out_path, json.dumps(result, indent=2) + "\n")
    for mode in result["modes"]:
        print(f"{mode['name']:<22} {mode['requests_per_sec']:>10.0f} "
              f"req/s  ({mode['wall_seconds']:.2f} s for "
              f"{mode['requests']} requests)")
    print("profile shares (simulator wall time by subsystem)")
    for entry in result["profile_shares"][:8]:
        print(f"  {entry['subsystem']:<18} {entry['share']:>6.1%}")
    print(f"benchmark JSON written to {out_path}")
    return 0
