"""Simulator self-benchmark: ``repro bench``.

Measures how fast the *simulator* runs (not the modelled device):
wall-clock requests/sec for a fixed deterministic workload, plus a
per-subsystem breakdown of where that wall time goes, from a
``cProfile`` pass aggregated by ``repro.*`` subpackage.  The result is
written to ``BENCH_<date>.json`` so successive PRs can diff simulator
performance the way they diff figure outputs.

``BENCH_<date>.json`` holds *every* run of that day — a
``{"format": "repro-bench", "date": ..., "runs": [...]}`` document that
same-day reruns append to rather than clobber, each run stamped with
the git commit it measured (so a before/after optimisation pair
survives in one file).  A legacy single-run file from before this
format is migrated into the first entry of the list; a file that is
neither is refused unless ``--force`` discards it.

The benchmark workload itself is deterministic (fixed seed, fixed
record count); only the wall-clock numbers vary run to run.
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import json
import os
import pstats
import subprocess
import time
from typing import Any, Dict, List, Optional, Tuple

from .atomicio import atomic_write_text
from .core.hierarchy import build_flash_system
from .sim.concurrent import run_trace_concurrent
from .workloads.macro import build_workload

__all__ = ["run_bench", "run_bench_command", "load_bench_document",
           "BENCH_FORMAT"]

_SRC_MARKER = "/repro/"

#: Format tag of the runs-list document in ``BENCH_<date>.json``.
BENCH_FORMAT = "repro-bench"


def _fresh_system_and_records(num_records: int):
    records = build_workload("specweb99", num_records=num_records, seed=11)
    system = build_flash_system(dram_bytes=64 << 20, flash_bytes=256 << 20)
    return system, records


def _subsystem_of(filename: str) -> str:
    """Map a profiled frame's file to its ``repro`` subpackage."""
    marker = filename.rfind(_SRC_MARKER)
    if marker < 0:
        return "other"
    parts = filename[marker + len(_SRC_MARKER):].split("/")
    return f"repro.{parts[0].removesuffix('.py')}" if parts else "other"


def _profile_shares(num_records: int) -> List[Dict[str, Any]]:
    """One profiled serial replay, grouped into subsystem time shares.

    Shares are of *total* time (``tottime``: time inside the frame,
    excluding callees) so they sum to ~1.0 across subsystems instead of
    multiply-counting the call stack.
    """
    system, records = _fresh_system_and_records(num_records)
    profiler = cProfile.Profile()
    profiler.enable()
    run_trace_concurrent(system, records)
    profiler.disable()
    stats = pstats.Stats(profiler)
    totals: Dict[str, float] = {}
    overall = 0.0
    for (filename, _line, _name), row in stats.stats.items():  # type: ignore[attr-defined]
        tottime = row[2]
        totals[_subsystem_of(filename)] = (
            totals.get(_subsystem_of(filename), 0.0) + tottime)
        overall += tottime
    if overall <= 0:
        return []
    shares = [{"subsystem": subsystem,
               "seconds": round(seconds, 4),
               "share": round(seconds / overall, 4)}
              for subsystem, seconds in totals.items()]
    shares.sort(key=lambda entry: (-entry["seconds"], entry["subsystem"]))
    return shares


def _timed_replay(num_records: int, queue_depth: int, channels: int,
                  planes: int) -> Tuple[float, int]:
    """Wall seconds and request count for one un-profiled replay."""
    system, records = _fresh_system_and_records(num_records)
    # Benchmarking the simulator's own speed is the one place wall
    # clocks belong; simulated time stays inside the engines.
    start = time.perf_counter()  # simlint: ignore[SIM001] -- host-side benchmark timing, not simulated time
    report = run_trace_concurrent(system, records, queue_depth=queue_depth,
                                  channels=channels, planes=planes)
    elapsed = time.perf_counter() - start  # simlint: ignore[SIM001] -- host-side benchmark timing, not simulated time
    return elapsed, report.requests


def run_bench(num_records: int = 40_000) -> Dict[str, Any]:
    """Run the benchmark suite; returns the JSON-ready result."""
    modes = [
        {"name": "serial", "queue_depth": 1, "channels": 1, "planes": 1},
        {"name": "concurrent_qd16_ch4", "queue_depth": 16, "channels": 4,
         "planes": 2},
    ]
    results = []
    for mode in modes:
        elapsed, requests = _timed_replay(num_records,
                                          mode["queue_depth"],
                                          mode["channels"], mode["planes"])
        results.append({
            **mode,
            "wall_seconds": round(elapsed, 4),
            "requests": requests,
            "requests_per_sec": round(requests / elapsed, 1)
            if elapsed > 0 else 0.0,
        })
    return {
        "num_records": num_records,
        "modes": results,
        "profile_shares": _profile_shares(num_records),
    }


def _git_commit() -> Optional[str]:
    """The commit being benchmarked, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def load_bench_document(path: str) -> Dict[str, Any]:
    """Parse an existing bench file into the runs-list document.

    Accepts the current ``{"format": "repro-bench", "runs": [...]}``
    shape and the legacy single-run shape (migrated into a one-entry
    ``runs`` list).  Anything else — unparseable bytes, JSON that is not
    a bench document — raises ``ValueError`` so a rerun cannot quietly
    destroy a file it does not understand.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON ({exc}); "
                             "refusing to overwrite it") from exc
    if not isinstance(document, dict):
        raise ValueError(f"{path} is not a bench document; "
                         "refusing to overwrite it")
    if document.get("format") == BENCH_FORMAT:
        runs = document.get("runs")
        if not isinstance(runs, list):
            raise ValueError(f"{path} claims format {BENCH_FORMAT!r} "
                             "but has no runs list")
        return document
    if "modes" in document and "num_records" in document:
        # Legacy layout: the whole file was one run.
        legacy = dict(document)
        date = legacy.pop("date", None)
        return {"format": BENCH_FORMAT, "date": date, "runs": [legacy]}
    raise ValueError(f"{path} is not a bench document; "
                     "refusing to overwrite it")


def run_bench_command(args: argparse.Namespace) -> int:
    result = run_bench(num_records=args.num_records)
    today = datetime.date.today().isoformat()  # simlint: ignore[SIM001] -- report filename stamp, not simulated time
    out_path = args.out if args.out else f"BENCH_{today}.json"
    result["git_commit"] = _git_commit()
    document: Dict[str, Any] = {"format": BENCH_FORMAT, "date": today,
                                "runs": []}
    force = getattr(args, "force", False)
    if os.path.exists(out_path) and not force:
        try:
            document = load_bench_document(out_path)
        except ValueError as exc:
            print(f"error: {exc} (pass --force to start the file fresh)")
            return 2
        document["date"] = document.get("date") or today
    document["runs"].append(result)
    atomic_write_text(out_path,
                      json.dumps(document, indent=2) + "\n")
    for mode in result["modes"]:
        print(f"{mode['name']:<22} {mode['requests_per_sec']:>10.0f} "
              f"req/s  ({mode['wall_seconds']:.2f} s for "
              f"{mode['requests']} requests)")
    print("profile shares (simulator wall time by subsystem)")
    for entry in result["profile_shares"][:8]:
        print(f"  {entry['subsystem']:<18} {entry['share']:>6.1%}")
    commit = result["git_commit"] or "unknown"
    print(f"benchmark JSON written to {out_path} "
          f"(run {len(document['runs'])} of {document['date']}, "
          f"commit {commit})")
    return 0
