"""DRAM substrate: DDR2 timing/power model and the primary disk cache."""

from .model import DramEnergyBreakdown, DramModel, DDR2_BANDWIDTH_BYTES_PER_US
from .page_cache import Eviction, PdcStats, PrimaryDiskCache

__all__ = [
    "DramEnergyBreakdown",
    "DramModel",
    "DDR2_BANDWIDTH_BYTES_PER_US",
    "Eviction",
    "PdcStats",
    "PrimaryDiskCache",
]
