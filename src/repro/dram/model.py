"""DDR2 DRAM timing and power model.

Reproduces the accounting the paper did with the Micron system-power
calculator: each 1Gb DDR2 device draws ``active_w`` while a read or write
burst is in flight and ``idle_active_w`` otherwise (``idle_powerdown_w``
when the rank is in power-down).  Latency is the Table 2/3 55 ns access
plus a bandwidth term for the burst length, which matters because the disk
cache moves whole 2KB pages over the memory bus via DMA.

Figure 9 splits memory power into read / write / idle components, so the
model keeps read and write busy time separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..flash.timing import (
    DramPower,
    DramTiming,
    DEFAULT_DRAM_POWER,
    DEFAULT_DRAM_TIMING,
)

__all__ = ["DramEnergyBreakdown", "DramModel"]

#: DDR2-533 x8 peak transfer rate used for page DMA bursts (bytes/us).
DDR2_BANDWIDTH_BYTES_PER_US = 4266.0

#: Table 2 describes per-1Gb-device power; sizes scale device count.
DEVICE_BITS = 1 << 30


@dataclass
class DramEnergyBreakdown:
    """Energy split matching the Figure 9 stacked bars (joules)."""

    read_j: float = 0.0
    write_j: float = 0.0
    idle_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.read_j + self.write_j + self.idle_j


@dataclass
class DramModel:
    """A DRAM subsystem of ``size_bytes`` built from 1Gb DDR2 devices."""

    size_bytes: int
    timing: DramTiming = field(default_factory=lambda: DEFAULT_DRAM_TIMING)
    power: DramPower = field(default_factory=lambda: DEFAULT_DRAM_POWER)
    powerdown_when_idle: bool = False
    #: When simulations scale capacities down for speed, power should still
    #: reflect the platform being modelled: device count is derived from
    #: this size when set (e.g. the paper's 512MB) instead of the scaled
    #: ``size_bytes``.
    power_model_bytes: int | None = None

    read_busy_us: float = 0.0
    write_busy_us: float = 0.0
    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise ValueError("DRAM size must be positive")

    @property
    def num_devices(self) -> int:
        """1Gb devices needed for this capacity (a DIMM is 8 of them)."""
        modeled = self.power_model_bytes or self.size_bytes
        return max(1, -(-modeled * 8 // DEVICE_BITS))

    # -- timed accesses --------------------------------------------------------

    def access_us(self, num_bytes: int) -> float:
        """Latency of one access moving ``num_bytes`` over the bus."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.timing.access_us + num_bytes / DDR2_BANDWIDTH_BYTES_PER_US

    def read(self, num_bytes: int) -> float:
        latency = self.access_us(num_bytes)
        self.read_busy_us += latency
        self.reads += 1
        return latency

    def write(self, num_bytes: int) -> float:
        latency = self.access_us(num_bytes)
        self.write_busy_us += latency
        self.writes += 1
        return latency

    # -- power -------------------------------------------------------------------

    def energy_breakdown(self, wall_clock_us: float) -> DramEnergyBreakdown:
        """Energy over a simulated window of ``wall_clock_us``.

        Only one rank bursts at a time (the paper's single-channel platform),
        so burst power applies to busy time and all devices idle otherwise.
        """
        busy_us = self.read_busy_us + self.write_busy_us
        if wall_clock_us < busy_us - 1e-6:
            raise ValueError(
                f"wall clock {wall_clock_us}us shorter than busy time {busy_us}us"
            )
        idle_w = (
            self.power.idle_powerdown_w
            if self.powerdown_when_idle
            else self.power.idle_active_w
        )
        devices = self.num_devices
        burst_extra_w = self.power.active_w - idle_w
        return DramEnergyBreakdown(
            read_j=burst_extra_w * self.read_busy_us * 1e-6,
            write_j=burst_extra_w * self.write_busy_us * 1e-6,
            idle_j=devices * idle_w * wall_clock_us * 1e-6,
        )

    def average_power_w(self, wall_clock_us: float) -> float:
        if wall_clock_us <= 0:
            return 0.0
        return self.energy_breakdown(wall_clock_us).total_j / (wall_clock_us * 1e-6)

    def reset_stats(self) -> None:
        self.read_busy_us = self.write_busy_us = 0.0
        self.reads = self.writes = 0
