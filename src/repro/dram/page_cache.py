"""The primary disk cache (PDC): the OS page cache living in DRAM.

In both of the paper's configurations (Figure 2) the OS keeps its page
cache in DRAM; with Flash present the PDC shrinks (e.g. 512MB -> 256MB)
and the Flash secondary cache absorbs the rest of the working set.

The PDC is a write-back LRU cache over fixed-size disk pages.  Reads and
writes hit or allocate; dirty pages are written back to the next level
when evicted (the paper's "periodically scheduled to be written back"
collapses to eviction-driven write-back, plus an explicit ``flush``
used at simulation barriers).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["PdcStats", "Eviction", "PrimaryDiskCache"]


@dataclass
class PdcStats:
    """Hit/miss counters for the primary disk cache."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def read_miss_rate(self) -> float:
        reads = self.read_hits + self.read_misses
        return self.read_misses / reads if reads else 0.0

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        misses = self.read_misses + self.write_misses
        return misses / total if total else 0.0


@dataclass(frozen=True)
class Eviction:
    """A page pushed out of the PDC; ``dirty`` pages must be written back."""

    page: int
    dirty: bool


class PrimaryDiskCache:
    """Write-back LRU page cache in DRAM.

    Parameters
    ----------
    capacity_pages:
        Number of page slots (DRAM bytes reserved for caching divided by
        the disk-page size).
    """

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("PDC capacity must be at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, bool]" = OrderedDict()  # page -> dirty
        self.stats = PdcStats()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    @property
    def dirty_pages(self) -> int:
        return sum(1 for dirty in self._pages.values() if dirty)

    # -- accesses -------------------------------------------------------------

    def read(self, page: int) -> tuple[bool, List[Eviction]]:
        """Look up ``page`` for a read.

        Returns ``(hit, evictions)``.  On a miss the page is installed
        clean (the caller fetches the contents from the next level) and the
        LRU victim, if any, is reported for write-back.
        """
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.read_hits += 1
            return True, []
        self.stats.read_misses += 1
        return False, self._install(page, dirty=False)

    def write(self, page: int) -> tuple[bool, List[Eviction]]:
        """Write ``page``: mark dirty, installing it on a miss."""
        if page in self._pages:
            self._pages[page] = True
            self._pages.move_to_end(page)
            self.stats.write_hits += 1
            return True, []
        self.stats.write_misses += 1
        return False, self._install(page, dirty=True)

    def invalidate(self, page: int) -> bool:
        """Drop a page (e.g. trimmed file); returns whether it was present."""
        return self._pages.pop(page, None) is not None

    def _install(self, page: int, dirty: bool) -> List[Eviction]:
        evictions: List[Eviction] = []
        while len(self._pages) >= self.capacity_pages:
            victim, victim_dirty = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
            evictions.append(Eviction(victim, victim_dirty))
        self._pages[page] = dirty
        return evictions

    # -- maintenance ----------------------------------------------------------

    def flush(self) -> List[int]:
        """Clean every dirty page, returning the pages needing write-back."""
        flushed = [page for page, dirty in self._pages.items() if dirty]
        for page in flushed:
            self._pages[page] = False
        return flushed

    def lru_order(self) -> Iterator[int]:
        """Pages from least- to most-recently used (for tests/inspection)."""
        return iter(self._pages)
