"""Physics-grounded NAND error-process model (robustness studies).

The event-style :mod:`repro.faults` injector covers *discrete* failures
(read-disturb bursts, program/erase status faults, infant mortality);
this module covers the slow error physics that actually drives the
paper's adaptive controller, following the error taxonomy of Luo's
thesis ("Architectural Techniques for Improving NAND Flash Memory
Reliability", PAPERS.md):

* **wear** — the raw bit error rate (RBER) grows polynomially with P/E
  cycles; the per-frame damage the wear model already tracks feeds a
  ``(1 + damage/spec_cycles) ** wear_accel`` acceleration factor;
* **retention** — charge leaks while data sits: RBER grows with the
  *device-time* age of the data since it was programmed, and faster on
  worn cells (retention loss dominates end-of-life error budgets);
* **read disturb** — every read of a frame weakly programs it; errors
  accumulate with the read count since the last program;
* **program interference** — programming a page shifts the threshold
  voltages of already-programmed neighbour frames;
* **process variation** — blocks are not born equal: each block carries
  a lognormal RBER multiplier drawn from the seed alone.

Determinism contract (the same one :class:`~repro.faults.FaultInjector`
honours): every random quantity flows from an independent
``derive_seed``-keyed stream.  The per-block multiplier is a pure
function of (seed, block); per-frame error draws come from a per-frame
RNG, so the error counts a frame observes depend only on the seed and on
that frame's own operation history — never on the order other frames
were touched — which makes results identical at any sweep worker count.

The model *composes with* the injector: :class:`~repro.flash.device.
FlashDevice` adds the model's error count to the wear-sampler and
injector errors on every read.  ``None`` (the default everywhere)
changes nothing, so every pre-existing figure stays byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Dict, Tuple

from ..flash.timing import CellMode
from ..parallel import derive_seed

__all__ = ["ReliabilityConfig", "ReliabilityStats", "ReliabilityModel"]

#: Above this expected error count a read is deeply uncorrectable (the
#: hardware tops out at t=12); the Poisson draw is replaced by its
#: rounded mean, which avoids pathological Knuth-loop lengths without
#: changing any reachable decode outcome.
_POISSON_MEAN_LIMIT = 64.0


@dataclass(frozen=True)
class ReliabilityConfig:
    """Error-process rates and shapes; all rates default to zero.

    RBER contributions are per-bit probabilities and must lie in
    ``[0, 1]`` — the same bound :class:`~repro.faults.FaultConfig`
    enforces on its rates.
    """

    #: Per-bit error probability of fresh, unworn, just-programmed data.
    base_rber: float = 0.0
    #: Added RBER per ``retention_unit_us`` of data age.
    retention_rber_per_unit: float = 0.0
    #: Device time (us) of one retention unit.
    retention_unit_us: float = 1e9
    #: Added RBER per read of the frame since its last program.
    read_disturb_rber_per_read: float = 0.0
    #: Added RBER per program of a neighbouring frame.
    interference_rber_per_program: float = 0.0
    #: Rated P/E endurance anchoring the wear acceleration.
    spec_cycles: float = 10_000.0
    #: Exponent of the ``(1 + damage/spec_cycles)`` wear factor.
    wear_accel: float = 2.0
    #: Sigma of the per-block lognormal RBER multiplier (0 = identical
    #: blocks).
    block_sigma: float = 0.0
    #: MLC frames see this multiple of the SLC RBER (tighter margins).
    mlc_factor: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("base_rber", "retention_rber_per_unit",
                     "read_disturb_rber_per_read",
                     "interference_rber_per_program"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.retention_unit_us <= 0:
            raise ValueError("retention_unit_us must be positive")
        if self.spec_cycles <= 0:
            raise ValueError("spec_cycles must be positive")
        if self.wear_accel < 0:
            raise ValueError("wear_accel must be non-negative")
        if self.block_sigma < 0:
            raise ValueError("block_sigma must be non-negative")
        if self.mlc_factor < 1.0:
            raise ValueError("mlc_factor must be >= 1 (MLC is never "
                             "more robust than SLC)")

    @property
    def any_enabled(self) -> bool:
        return (self.base_rber > 0.0
                or self.retention_rber_per_unit > 0.0
                or self.read_disturb_rber_per_read > 0.0
                or self.interference_rber_per_program > 0.0)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "ReliabilityConfig":
        """One knob for sweeps and the CLI: ``rate`` is the base RBER;
        retention is an order of magnitude above it per unit (retention
        dominates end-of-life budgets), disturb and interference orders
        of magnitude below (they need thousands of events to matter)."""
        return cls(
            base_rber=rate,
            retention_rber_per_unit=min(rate * 10.0, 1.0),
            read_disturb_rber_per_read=rate / 100.0,
            interference_rber_per_program=rate / 50.0,
            block_sigma=0.35,
            seed=seed,
        )


@dataclass
class ReliabilityStats:
    """Counts of physics-modelled error activity on the read path."""

    modelled_reads: int = 0     # reads the model attached errors to
    error_bits: int = 0         # total raw bit errors contributed
    saturated_reads: int = 0    # reads whose expected errors hit the
    #                             Poisson bulk limit (deep wear-out)

    @property
    def bits_per_read(self) -> float:
        return (self.error_bits / self.modelled_reads
                if self.modelled_reads else 0.0)


@dataclass
class _FrameErrorState:
    """Per-frame history the error processes integrate over."""

    programmed_at_us: float = 0.0
    reads_since_program: int = 0
    neighbor_programs: int = 0


class ReliabilityModel:
    """Seeded, deterministic error-process model queried by the device.

    :class:`~repro.flash.device.FlashDevice` notifies the model of every
    program and erase (which reset a frame's retention/disturb history)
    and asks for an error count on every read.  The scrubbing policy
    (:mod:`repro.reliability.scrub`) reads the same state to pick
    refresh candidates without perturbing any RNG stream.
    """

    def __init__(self, config: ReliabilityConfig | None = None) -> None:
        self.config = config or ReliabilityConfig()
        self.stats = ReliabilityStats()
        self._block_mult: Dict[int, float] = {}
        self._frame_rngs: Dict[Tuple[int, int], Random] = {}
        self._states: Dict[Tuple[int, int], _FrameErrorState] = {}

    # -- per-block process variation -------------------------------------------

    def block_multiplier(self, block: int) -> float:
        """Lognormal RBER multiplier of ``block``.

        A pure function of (seed, block) — independent of query order —
        so sweeps that touch blocks in different orders still see the
        same weak and strong blocks.
        """
        sigma = self.config.block_sigma
        if sigma <= 0.0:
            return 1.0
        cached = self._block_mult.get(block)
        if cached is None:
            block_seed = derive_seed(self.config.seed,
                                     f"reliability:block:{block}")
            cached = math.exp(sigma * Random(block_seed).gauss(0.0, 1.0))
            self._block_mult[block] = cached
        return cached

    # -- frame history ----------------------------------------------------------

    def _state(self, block: int, frame: int) -> _FrameErrorState:
        key = (block, frame)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _FrameErrorState()
        return state

    def note_program(self, block: int, frame: int, now_us: float) -> None:
        """A frame was programmed: its own history resets (fresh data),
        and already-written neighbour frames absorb interference."""
        state = self._state(block, frame)
        state.programmed_at_us = now_us
        state.reads_since_program = 0
        state.neighbor_programs = 0
        if self.config.interference_rber_per_program > 0.0:
            if frame > 0:
                self._state(block, frame - 1).neighbor_programs += 1
            self._state(block, frame + 1).neighbor_programs += 1

    def note_read(self, block: int, frame: int) -> None:
        self._state(block, frame).reads_since_program += 1

    def note_erase(self, block: int, now_us: float, frames: int) -> None:
        """A block erase wipes every frame's accumulated error history."""
        for frame in range(frames):
            state = self._states.get((block, frame))
            if state is None:
                continue
            state.programmed_at_us = now_us
            state.reads_since_program = 0
            state.neighbor_programs = 0

    def accumulate(self, block: int, frame: int, reads: int = 0,
                   neighbor_programs: int = 0) -> None:
        """Bulk history deposit for accelerated simulations: account for
        ``reads`` reads and ``neighbor_programs`` neighbour programs
        without replaying each operation."""
        state = self._state(block, frame)
        state.reads_since_program += reads
        state.neighbor_programs += neighbor_programs

    def retention_age_us(self, block: int, frame: int,
                         now_us: float) -> float:
        """Device-time age of the frame's data (scrub candidate signal)."""
        state = self._states.get((block, frame))
        programmed_at = state.programmed_at_us if state is not None else 0.0
        return max(now_us - programmed_at, 0.0)

    # -- error process ----------------------------------------------------------

    def expected_rber(self, block: int, frame: int, damage: float,
                      mode: CellMode, now_us: float) -> float:
        """Deterministic expected RBER of a read right now (no RNG
        consumed — safe for scrub policy and tests to poll)."""
        cfg = self.config
        state = self._states.get((block, frame))
        if state is not None:
            age_us = max(now_us - state.programmed_at_us, 0.0)
            reads = state.reads_since_program
            neighbors = state.neighbor_programs
        else:
            age_us = max(now_us, 0.0)
            reads = 0
            neighbors = 0
        wear = (1.0 + max(damage, 0.0) / cfg.spec_cycles) ** cfg.wear_accel
        rber = (cfg.base_rber
                + cfg.retention_rber_per_unit
                * (age_us / cfg.retention_unit_us)
                + cfg.read_disturb_rber_per_read * reads
                + cfg.interference_rber_per_program * neighbors) * wear
        rber *= self.block_multiplier(block)
        if mode is CellMode.MLC:
            rber *= cfg.mlc_factor
        return min(rber, 1.0)

    def read_errors(self, block: int, frame: int, damage: float,
                    mode: CellMode, now_us: float, cells: int) -> int:
        """Raw bit errors this read observes (Poisson around the
        expected count, from the frame's own RNG stream)."""
        rber = self.expected_rber(block, frame, damage, mode, now_us)
        if rber <= 0.0:
            return 0
        count = self._poisson(block, frame, rber * cells)
        count = min(count, cells)
        self.stats.modelled_reads += 1
        self.stats.error_bits += count
        return count

    def _poisson(self, block: int, frame: int, mean: float) -> int:
        if mean > _POISSON_MEAN_LIMIT:
            # Deeply uncorrectable either way; skip the O(mean) loop.
            self.stats.saturated_reads += 1
            return int(round(mean))
        key = (block, frame)
        rng = self._frame_rngs.get(key)
        if rng is None:
            rng = self._frame_rngs[key] = Random(derive_seed(
                self.config.seed, f"reliability:frame:{block}:{frame}"))
        limit = math.exp(-mean)
        count = 0
        product = rng.random()
        while product > limit:
            count += 1
            product *= rng.random()
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (f"ReliabilityModel(base={c.base_rber}, "
                f"retention={c.retention_rber_per_unit}/"
                f"{c.retention_unit_us}us, "
                f"disturb={c.read_disturb_rber_per_read}, "
                f"interference={c.interference_rber_per_program}, "
                f"sigma={c.block_sigma}, seed={c.seed})")
