"""``repro.reliability`` — physics-grounded NAND error processes + scrub.

The deterministic, seeded error-process model
(:class:`~repro.reliability.model.ReliabilityModel`) computes per-frame
raw bit error counts from wear, retention age, read-disturb and
program-interference accumulation, and per-block process variation; the
scrub policy (:class:`~repro.reliability.scrub.Scrubber`) is the
countermeasure.  Both are off (``None``) by default everywhere, keeping
every pre-existing figure byte-identical.  See DESIGN.md section 13.
"""

from .model import ReliabilityConfig, ReliabilityModel, ReliabilityStats
from .scrub import ScrubConfig, ScrubStats, Scrubber

__all__ = [
    "ReliabilityConfig",
    "ReliabilityModel",
    "ReliabilityStats",
    "ScrubConfig",
    "ScrubStats",
    "Scrubber",
]
