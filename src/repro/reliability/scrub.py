"""Background scrub/refresh: the countermeasure retention errors force.

Once the error-process model (:mod:`repro.reliability.model`) is on,
cold data rots: retention RBER grows with data age until even the
strongest BCH code cannot correct a read.  Real controllers answer with
a *scrub* pass — periodically re-read resident data and rewrite anything
that has aged past a threshold, resetting its retention clock at the
cost of extra read/program/erase traffic (which this module charges to
the ordinary wear, latency, and energy accounting; nothing is free).

Two consumers share the policy vocabulary here:

* :class:`Scrubber` drives the trace-path cache
  (:class:`~repro.core.cache.FlashDiskCache`): each pass walks the
  cached LBAs in deterministic (sorted) order, refreshes aged pages via
  :meth:`~repro.core.cache.FlashDiskCache.scrub_page` (an ordinary
  out-of-place rewrite, so every cache invariant holds), and hands any
  eviction-flushed dirty LBAs back to the hierarchy's write-back queue.
* the regime simulator (:mod:`repro.sim.lifetime`) reuses
  :class:`ScrubConfig`/:class:`ScrubStats` around
  :meth:`~repro.core.controller.ProgrammableFlashController.refresh_block`.

Determinism: scrub decisions are pure functions of the device clock and
the model's frame state — no RNG — so the same seed and trace produce
the same scrub schedule at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = ["ScrubConfig", "ScrubStats", "Scrubber"]


@dataclass(frozen=True)
class ScrubConfig:
    """Scrub cadence and refresh thresholds."""

    #: Device time (us) between scan passes.
    interval_us: float = 5e9
    #: Refresh pages whose retention age is at least this (us).
    min_age_us: float = 1e10
    #: Upper bound on pages refreshed per pass (traffic guard so one
    #: pass cannot monopolise the device).
    max_pages_per_pass: int = 256

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if self.min_age_us <= 0:
            raise ValueError("min_age_us must be positive")
        if self.max_pages_per_pass < 1:
            raise ValueError("max_pages_per_pass must be >= 1")


@dataclass
class ScrubStats:
    """Scrub traffic and findings (reported per run and per regime)."""

    passes: int = 0
    pages_scanned: int = 0        # candidates examined (metadata only)
    scrub_reads: int = 0          # timed re-reads issued
    page_rewrites: int = 0        # pages rewritten fresh
    blocks_refreshed: int = 0     # whole-block refreshes (regime path)
    uncorrectable_found: int = 0  # latent errors past correction
    busy_us: float = 0.0          # device time consumed by scrubbing

    @property
    def traffic_ops(self) -> int:
        """NAND operations attributable to scrubbing."""
        return self.scrub_reads + self.page_rewrites


class Scrubber:
    """Periodic retention scrub over a Flash disk cache.

    The hierarchy calls :meth:`maybe_scrub` from its periodic-flush tick
    (cheap no-op until the device clock crosses the next interval); a
    pass re-reads and rewrites aged pages through the cache's own
    machinery so FCHT mappings, region bookkeeping, and GC stay exact.
    """

    def __init__(self, cache: Any, config: ScrubConfig | None = None) -> None:
        self.cache = cache
        self.config = config or ScrubConfig()
        self.stats = ScrubStats()
        model = cache.controller.device.reliability
        if model is None:
            raise ValueError("scrubbing needs a ReliabilityModel on the "
                             "device (there is nothing to age without one)")
        self.model = model
        self._last_pass_us = 0.0

    def maybe_scrub(self) -> Tuple[float, List[int]]:
        """Run a pass if the scrub interval elapsed on the device clock.

        Returns ``(background latency us, dirty LBAs flushed by scrub
        evictions)`` — ``(0.0, [])`` almost always.
        """
        now_us = self.cache.controller.device.clock_us
        if now_us - self._last_pass_us < self.config.interval_us:
            return 0.0, []
        self._last_pass_us = now_us
        return self.scrub_pass(now_us)

    def scrub_pass(self, now_us: float) -> Tuple[float, List[int]]:
        """One full scan: refresh every aged page within the pass budget."""
        cache = self.cache
        model = self.model
        config = self.config
        stats = self.stats
        stats.passes += 1
        rewrites_before = stats.page_rewrites
        elapsed = 0.0
        flushed: List[int] = []
        budget = config.max_pages_per_pass
        for lba in cache.cached_lbas():
            if budget <= 0:
                break
            address = cache.fcht.lookup(lba)
            if address is None:
                continue
            stats.pages_scanned += 1
            age_us = model.retention_age_us(address.block, address.frame,
                                            now_us)
            if age_us < config.min_age_us:
                continue
            budget -= 1
            stats.scrub_reads += 1
            outcome = cache.scrub_page(lba)
            elapsed += outcome.latency_us
            flushed.extend(outcome.flushed_lbas)
            if outcome.refreshed:
                stats.page_rewrites += 1
            elif outcome.uncorrectable:
                stats.uncorrectable_found += 1
            if cache.degraded:
                break
        stats.busy_us += elapsed
        telemetry = cache.telemetry
        if telemetry is not None:
            telemetry.scrub(elapsed,
                            stats.page_rewrites - rewrites_before)
        return elapsed, flushed
