"""Micro-benchmark trace generators (Table 4, top half).

The paper generates synthetic disk traces to span the space of access
skew, because "disk access behavior is often found to follow a power law":

* ``uniform`` — uniform page popularity over a 512MB footprint (the
  longest-tail extreme, alpha = 0);
* ``alpha1/alpha2/alpha3`` — Zipf-distributed popularity ``x^-alpha`` with
  alpha = 0.8, 1.2, 1.6;
* ``exp1/exp2`` — exponential popularity ``e^-lambda*x`` with lambda =
  0.01, 0.1 (the shortest-tail extreme).

All generators are deterministic given a seed, page-granular, and scatter
popularity ranks across the address space with a bijective affine map so
"hot" pages are not physically adjacent (as in real filesystems).  The
read/write mix defaults to the 90%-read server mix the paper's split-cache
sizing assumes ("Based on the observed write behavior, 90% of Flash is
dedicated to the read cache").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Iterator, List, Sequence

from .trace import OP_READ, OP_WRITE, PAGE_BYTES, TraceRecord

__all__ = [
    "SyntheticConfig",
    "PopularityDistribution",
    "UniformPopularity",
    "ZipfPopularity",
    "ExponentialPopularity",
    "generate_trace",
    "uniform_trace",
    "zipf_trace",
    "exponential_trace",
    "MICRO_FOOTPRINT_BYTES",
]

#: All micro-benchmarks use a 512MB footprint (Table 4).
MICRO_FOOTPRINT_BYTES = 512 << 20


@dataclass(frozen=True)
class SyntheticConfig:
    """Shared knobs for the synthetic generators."""

    footprint_pages: int = MICRO_FOOTPRINT_BYTES // PAGE_BYTES
    num_records: int = 100_000
    read_fraction: float = 0.9
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.footprint_pages < 1:
            raise ValueError("footprint must be at least one page")
        if self.num_records < 0:
            raise ValueError("num_records must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


class PopularityDistribution:
    """Maps a uniform random draw to a popularity *rank* in [0, n)."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("distribution needs at least one item")
        self.n = n

    def sample_rank(self, u: float) -> int:
        raise NotImplementedError

    def rank_probability(self, rank: int) -> float:
        raise NotImplementedError


class UniformPopularity(PopularityDistribution):
    """Every page equally likely — the alpha = 0 extreme."""

    def sample_rank(self, u: float) -> int:
        return min(int(u * self.n), self.n - 1)

    def rank_probability(self, rank: int) -> float:
        return 1.0 / self.n


class ZipfPopularity(PopularityDistribution):
    """Bounded Zipf: P(rank k) proportional to (k+1)^-alpha.

    Sampling uses binary search on the precomputed CDF; for the 256K-page
    micro footprint this costs ~18 comparisons per draw.
    """

    def __init__(self, n: int, alpha: float):
        super().__init__(n)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        weights = [(k + 1) ** -alpha for k in range(n)]
        total = math.fsum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0
        self._total = total

    def sample_rank(self, u: float) -> int:
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def rank_probability(self, rank: int) -> float:
        return (rank + 1) ** -self.alpha / self._total


class ExponentialPopularity(PopularityDistribution):
    """P(rank k) proportional to exp(-lambda * k): the short-tail extreme.

    Closed-form inverse CDF (truncated geometric), no tables needed.
    """

    def __init__(self, n: int, lam: float):
        super().__init__(n)
        if lam <= 0:
            raise ValueError("lambda must be positive")
        self.lam = lam
        self._tail = math.exp(-lam * n)  # probability mass beyond n, removed

    def sample_rank(self, u: float) -> int:
        # Inverse CDF of the truncated exponential.
        scaled = u * (1.0 - self._tail)
        rank = int(-math.log(1.0 - scaled) / self.lam)
        return min(rank, self.n - 1)

    def rank_probability(self, rank: int) -> float:
        lam = self.lam
        mass = math.exp(-lam * rank) - math.exp(-lam * (rank + 1))
        return mass / (1.0 - self._tail)


def _scatter(rank: int, n: int) -> int:
    """Bijective affine map spreading popularity ranks across the space.

    Multiplication by an odd constant modulo n is a bijection when
    gcd(a, n) = 1; we nudge the multiplier until that holds.
    """
    multiplier = 2_654_435_761  # Knuth's golden-ratio constant (odd)
    while math.gcd(multiplier, n) != 1:
        multiplier += 2
    return (rank * multiplier + 12_345) % n


def generate_trace(distribution: PopularityDistribution,
                   config: SyntheticConfig) -> Iterator[TraceRecord]:
    """Stream records sampling pages from ``distribution``.

    Reads and writes share the popularity distribution (the paper's
    micro-benchmarks stress the cache's skew response, not read/write
    locality differences).
    """
    rng = Random(config.seed)
    n = config.footprint_pages
    for index in range(config.num_records):
        rank = distribution.sample_rank(rng.random())
        page = _scatter(rank, n)
        op = OP_READ if rng.random() < config.read_fraction else OP_WRITE
        yield TraceRecord(page=page, op=op, timestamp=index * 1e-4)


def uniform_trace(config: SyntheticConfig | None = None) -> List[TraceRecord]:
    """Table 4 ``uniform``: uniform popularity over 512MB."""
    config = config or SyntheticConfig()
    return list(generate_trace(UniformPopularity(config.footprint_pages), config))


def zipf_trace(alpha: float,
               config: SyntheticConfig | None = None) -> List[TraceRecord]:
    """Table 4 ``alpha1/2/3``: Zipf popularity (alpha = 0.8, 1.2, 1.6)."""
    config = config or SyntheticConfig()
    return list(generate_trace(
        ZipfPopularity(config.footprint_pages, alpha), config))


def exponential_trace(lam: float,
                      config: SyntheticConfig | None = None) -> List[TraceRecord]:
    """Table 4 ``exp1/2``: exponential popularity (lambda = 0.01, 0.1)."""
    config = config or SyntheticConfig()
    return list(generate_trace(
        ExponentialPopularity(config.footprint_pages, lam), config))
