"""Trace analysis: characterise a disk trace the way the paper does.

The paper's methodology leans on workload *shape*: read/write mix,
working-set size, and popularity tail length (Zipf-vs-exponential) drive
the split-cache sizing (section 3.5), the SLC/MLC optimum (Figure 7), and
the controller's repair choices (Figure 11).  This module extracts those
properties from any trace — a generated one, or a real UMass SPC file —
so users can (a) verify that the bundled generators match a real trace
they hold and (b) feed measured popularity curves into
:class:`~repro.core.density.DensityPartitionOptimizer`.

The tail classifier fits both candidate models to the empirical
rank-frequency curve:

* Zipf:        log f(r) = c - alpha * log(r+1)
* exponential: log f(r) = c - lam * r

and reports the family with the smaller least-squares residual, together
with the fitted parameter — the quantity Figure 11's x-axis orders by.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .synthetic import PopularityDistribution
from .trace import PAGE_BYTES, TraceRecord

__all__ = [
    "TailFit",
    "TraceProfile",
    "popularity_counts",
    "fit_tail",
    "profile_trace",
    "EmpiricalPopularity",
]


@dataclass(frozen=True)
class TailFit:
    """Best-fit popularity tail of a trace."""

    family: str            # "zipf" | "exponential"
    parameter: float       # alpha (zipf) or lambda (exponential)
    zipf_residual: float
    exponential_residual: float

    @property
    def is_long_tailed(self) -> bool:
        """Long-tailed means the Zipf family fits better — the regime in
        which Figure 11 shows ECC updates dominating."""
        return self.family == "zipf"


@dataclass(frozen=True)
class TraceProfile:
    """A trace's paper-relevant statistics."""

    records: int
    read_fraction: float
    footprint_pages: int
    footprint_bytes: int
    top_1pct_mass: float       # popularity mass of the hottest 1% of pages
    tail: TailFit

    def summary(self) -> str:
        return (f"{self.records} records, {self.read_fraction:.0%} reads, "
                f"{self.footprint_bytes / (1 << 20):.1f}MB footprint, "
                f"top-1% mass {self.top_1pct_mass:.0%}, "
                f"{self.tail.family} tail "
                f"(param {self.tail.parameter:.3g})")


def popularity_counts(records: Iterable[TraceRecord]) -> List[int]:
    """Per-page access counts, sorted most-popular first."""
    counter: Counter[int] = Counter()
    for record in records:
        for page in record.expand():
            counter[page] += 1
    return sorted(counter.values(), reverse=True)


def _least_squares(xs: Sequence[float], ys: Sequence[float]
                   ) -> Tuple[float, float, float]:
    """Fit y = a + b*x; returns (a, b, mean squared residual)."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return mean_y, 0.0, 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    residual = sum((y - (intercept + slope * x)) ** 2
                   for x, y in zip(xs, ys)) / n
    return intercept, slope, residual


def fit_tail(counts: Sequence[int], max_points: int = 4096) -> TailFit:
    """Classify a rank-frequency curve as Zipf or exponential.

    Only pages with at least 2 accesses carry tail information; singleton
    pages are the flat noise floor and are excluded from the fit.
    """
    informative = [count for count in counts if count >= 2]
    if len(informative) < 3:
        # Degenerate: everything touched once — indistinguishable from a
        # uniform sweep, which the paper treats as the alpha -> 0 Zipf
        # extreme.
        return TailFit(family="zipf", parameter=0.0,
                       zipf_residual=0.0, exponential_residual=0.0)
    step = max(1, len(informative) // max_points)
    ranks = list(range(0, len(informative), step))
    log_freq = [math.log(informative[rank]) for rank in ranks]

    _, zipf_slope, zipf_residual = _least_squares(
        [math.log(rank + 1.0) for rank in ranks], log_freq)
    _, exp_slope, exp_residual = _least_squares(
        [float(rank) for rank in ranks], log_freq)

    if zipf_residual <= exp_residual:
        return TailFit(family="zipf", parameter=max(-zipf_slope, 0.0),
                       zipf_residual=zipf_residual,
                       exponential_residual=exp_residual)
    return TailFit(family="exponential", parameter=max(-exp_slope, 0.0),
                   zipf_residual=zipf_residual,
                   exponential_residual=exp_residual)


def profile_trace(records: Sequence[TraceRecord]) -> TraceProfile:
    """Full paper-relevant profile of a trace."""
    if not records:
        raise ValueError("cannot profile an empty trace")
    reads = sum(1 for record in records if record.is_read)
    counts = popularity_counts(records)
    total_accesses = sum(counts)
    top = max(1, len(counts) // 100)
    top_mass = sum(counts[:top]) / total_accesses
    return TraceProfile(
        records=len(records),
        read_fraction=reads / len(records),
        footprint_pages=len(counts),
        footprint_bytes=len(counts) * PAGE_BYTES,
        top_1pct_mass=top_mass,
        tail=fit_tail(counts),
    )


class EmpiricalPopularity(PopularityDistribution):
    """A popularity distribution measured from a trace.

    Plugs a *real* trace's popularity curve into the Figure 7 partition
    optimizer: ``DensityPartitionOptimizer(EmpiricalPopularity.from_trace(
    records))``.
    """

    def __init__(self, counts: Sequence[int]):
        if not counts:
            raise ValueError("empirical distribution needs counts")
        ordered = sorted(counts, reverse=True)
        super().__init__(len(ordered))
        total = float(sum(ordered))
        self._probabilities = [count / total for count in ordered]
        self._cdf: List[float] = []
        acc = 0.0
        for probability in self._probabilities:
            acc += probability
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    @classmethod
    def from_trace(cls, records: Iterable[TraceRecord]
                   ) -> "EmpiricalPopularity":
        return cls(popularity_counts(records))

    def sample_rank(self, u: float) -> int:
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def rank_probability(self, rank: int) -> float:
        return self._probabilities[rank]
