"""Disk-access trace records and the UMass SPC trace format.

The paper's reliability and miss-rate studies are trace driven: synthetic
micro-benchmark traces plus the UMass Trace Repository's WebSearch and
Financial traces (Table 4, reference [8]).  The repository distributes
traces in the SPC format — CSV lines of

    ASU, LBA, Size, Opcode, Timestamp [, extra fields ignored]

with LBA/Size in 512-byte sectors and Opcode ``r``/``R`` or ``w``/``W``.
This module defines the in-memory record type used throughout the
simulator (page-granular, matching the 2KB Flash page the disk cache
manages) and a reader/writer pair for SPC files, so the real traces can be
dropped in when available while the bundled generators provide
statistically matched substitutes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List

__all__ = [
    "OP_READ",
    "OP_WRITE",
    "PAGE_BYTES",
    "SECTOR_BYTES",
    "TraceRecord",
    "TraceStats",
    "read_spc",
    "write_spc",
    "records_from_spc_file",
    "summarize",
]

OP_READ = "r"
OP_WRITE = "w"

#: The disk-cache management granularity: one Flash page payload.
PAGE_BYTES = 2048
#: SPC traces address 512-byte sectors.
SECTOR_BYTES = 512
_SECTORS_PER_PAGE = PAGE_BYTES // SECTOR_BYTES


@dataclass(frozen=True)
class TraceRecord:
    """One page-granular disk access.

    ``page`` is the logical block address divided down to 2KB pages —
    the unit the FlashCache hash table maps.  ``pages`` is the run length
    of the request (>= 1).  ``timestamp`` is seconds from trace start and
    may be 0 for generated traces replayed closed-loop.
    """

    page: int
    op: str
    pages: int = 1
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be '{OP_READ}' or '{OP_WRITE}'")
        if self.page < 0 or self.pages < 1:
            raise ValueError(f"invalid extent page={self.page} pages={self.pages}")

    @property
    def is_read(self) -> bool:
        return self.op == OP_READ

    def expand(self) -> Iterator[int]:
        """Yield each page the request touches."""
        return iter(range(self.page, self.page + self.pages))


@dataclass
class TraceStats:
    """Summary statistics of a trace (used by Table 4 reporting)."""

    records: int = 0
    reads: int = 0
    writes: int = 0
    pages_read: int = 0
    pages_written: int = 0
    footprint_pages: int = 0

    @property
    def read_fraction(self) -> float:
        return self.reads / self.records if self.records else 0.0

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_pages * PAGE_BYTES


def summarize(records: Iterable[TraceRecord]) -> TraceStats:
    """Single-pass trace summary."""
    stats = TraceStats()
    seen: set[int] = set()
    for record in records:
        stats.records += 1
        if record.is_read:
            stats.reads += 1
            stats.pages_read += record.pages
        else:
            stats.writes += 1
            stats.pages_written += record.pages
        seen.update(record.expand())
    stats.footprint_pages = len(seen)
    return stats


def read_spc(stream: IO[str], limit: int | None = None) -> Iterator[TraceRecord]:
    """Parse SPC-format lines into page-granular records.

    Sector extents are converted to the covering 2KB-page extent.  Malformed
    lines raise ``ValueError`` with the offending line number — silent
    truncation of a trace would invisibly change an experiment.
    """
    count = 0
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 5:
            raise ValueError(
                f"SPC line {line_number}: expected >=5 fields, got {len(fields)}"
            )
        try:
            lba_sector = int(fields[1])
            size_bytes_or_sectors = int(fields[2])
            opcode = fields[3].strip().lower()
            timestamp = float(fields[4])
        except ValueError as exc:
            raise ValueError(f"SPC line {line_number}: {exc}") from exc
        if opcode not in ("r", "w"):
            raise ValueError(f"SPC line {line_number}: bad opcode {fields[3]!r}")
        # UMass traces record size in bytes; some SPC dialects use sectors.
        # Heuristic: multiples of 512 >= 512 are bytes.
        if size_bytes_or_sectors >= SECTOR_BYTES and \
                size_bytes_or_sectors % SECTOR_BYTES == 0:
            sectors = size_bytes_or_sectors // SECTOR_BYTES
        else:
            sectors = max(size_bytes_or_sectors, 1)
        first_page = lba_sector // _SECTORS_PER_PAGE
        last_page = (lba_sector + sectors - 1) // _SECTORS_PER_PAGE
        yield TraceRecord(
            page=first_page,
            op=OP_READ if opcode == "r" else OP_WRITE,
            pages=last_page - first_page + 1,
            timestamp=timestamp,
        )
        count += 1
        if limit is not None and count >= limit:
            return


def records_from_spc_file(path: str, limit: int | None = None) -> List[TraceRecord]:
    """Read a whole SPC trace file into memory."""
    with open(path, "r", encoding="ascii") as stream:
        return list(read_spc(stream, limit=limit))


def write_spc(records: Iterable[TraceRecord], stream: IO[str],
              asu: int = 0) -> int:
    """Serialise records back to SPC (byte-size dialect); returns count."""
    count = 0
    for record in records:
        stream.write(
            f"{asu},{record.page * _SECTORS_PER_PAGE},"
            f"{record.pages * PAGE_BYTES},{record.op},"
            f"{record.timestamp:.6f}\n"
        )
        count += 1
    return count


def spc_roundtrip(records: List[TraceRecord]) -> List[TraceRecord]:
    """Serialise + reparse (test helper proving format fidelity)."""
    buffer = io.StringIO()
    write_spc(records, buffer)
    buffer.seek(0)
    return list(read_spc(buffer))
