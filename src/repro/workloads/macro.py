"""Macro-benchmark trace generators (Table 4, bottom half).

The paper's macro workloads are dbt2 (OLTP over a 2GB database),
SPECWeb99 (a 1.8GB web-server image), and the four UMass Trace Repository
traces (WebSearch1/2, Financial1/2).  We do not ship the UMass traces
(they are a separate download; `repro.workloads.trace.read_spc` ingests
them directly when available), so each macro workload here is a synthetic
generator *statistically matched* to the published characteristics that
drive the paper's results:

* **footprint / working-set size** — the paper states them where they
  matter (Figure 7 titles: Financial2 = 443.8MB, WebSearch1 = 5116.7MB);
* **read/write mix** — web search is ~99% reads, Financial1 is
  write-dominated, dbt2 is a ~2:1 OLTP mix;
* **popularity tail** — web workloads are classic Zipf ("many accesses to
  files in a server platform are spatially and temporally a tailed
  distribution (Zipf)", section 5.2.2); the Financial OLTP traces
  concentrate on a small hot set (short tail), which is why Figure 7(a)
  finds a 70%-SLC optimum for Financial2 while WebSearch1 wants capacity.

Every generator is deterministic given a seed.  ``build_workload(name)``
resolves both macro and micro names, giving experiments one registry for
the full Table 4 suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List

from .synthetic import (
    ExponentialPopularity,
    PopularityDistribution,
    SyntheticConfig,
    UniformPopularity,
    ZipfPopularity,
    _scatter,
)
from .trace import OP_READ, OP_WRITE, PAGE_BYTES, TraceRecord

__all__ = [
    "MacroWorkloadSpec",
    "MACRO_WORKLOADS",
    "ALL_WORKLOAD_NAMES",
    "generate_macro_trace",
    "build_workload",
    "workload_footprint_pages",
]


@dataclass(frozen=True)
class MacroWorkloadSpec:
    """Statistical profile of one macro benchmark.

    ``tail`` selects the popularity family: ``("zipf", alpha)``,
    ``("exp", lam)`` or ``("uniform",)``.  ``sequential_write_fraction``
    models OLTP log appends: that share of writes walks a dedicated
    sequential region instead of sampling the popularity distribution.
    """

    name: str
    description: str
    footprint_bytes: int
    read_fraction: float
    tail: tuple
    sequential_write_fraction: float = 0.0

    @property
    def footprint_pages(self) -> int:
        return max(1, self.footprint_bytes // PAGE_BYTES)

    def make_distribution(self, n: int) -> PopularityDistribution:
        family = self.tail[0]
        if family == "zipf":
            return ZipfPopularity(n, self.tail[1])
        if family == "exp":
            return ExponentialPopularity(n, self.tail[1])
        if family == "uniform":
            return UniformPopularity(n)
        raise ValueError(f"unknown tail family {family!r}")


#: Table 4 macro rows.  Footprints the paper states are used verbatim;
#: the rest follow the public characterisations of the original traces.
MACRO_WORKLOADS: Dict[str, MacroWorkloadSpec] = {
    "dbt2": MacroWorkloadSpec(
        name="dbt2",
        description="OLTP (TPC-C-like) over a 2GB database",
        footprint_bytes=2 << 30,
        read_fraction=0.65,
        tail=("zipf", 1.0),
        sequential_write_fraction=0.30,
    ),
    "specweb99": MacroWorkloadSpec(
        name="specweb99",
        description="SPECWeb99 1.8GB web-server disk image",
        footprint_bytes=int(1.8 * (1 << 30)),
        read_fraction=0.99,
        tail=("zipf", 1.2),
    ),
    "websearch1": MacroWorkloadSpec(
        name="websearch1",
        description="Search-engine access pattern 1 (UMass WebSearch1)",
        footprint_bytes=int(5116.7 * (1 << 20)),  # Figure 7(b) title
        read_fraction=0.99,
        tail=("zipf", 0.85),
    ),
    "websearch2": MacroWorkloadSpec(
        name="websearch2",
        description="Search-engine access pattern 2 (UMass WebSearch2)",
        footprint_bytes=int(4300 * (1 << 20)),
        read_fraction=0.99,
        tail=("zipf", 0.9),
    ),
    "financial1": MacroWorkloadSpec(
        name="financial1",
        description="OLTP financial application 1 (UMass Financial1, write-heavy)",
        footprint_bytes=int(800 * (1 << 20)),
        read_fraction=0.23,
        tail=("exp", 0.00015),
        sequential_write_fraction=0.10,
    ),
    "financial2": MacroWorkloadSpec(
        name="financial2",
        description="OLTP financial application 2 (UMass Financial2, read-mostly)",
        footprint_bytes=int(443.8 * (1 << 20)),  # Figure 7(a) title
        read_fraction=0.82,
        tail=("exp", 0.00020),
    ),
}

#: The full Table 4 suite in paper order (micro then macro); resolvable
#: through :func:`build_workload`.
ALL_WORKLOAD_NAMES = (
    "uniform", "alpha1", "alpha2", "alpha3", "exp1", "exp2",
    "dbt2", "specweb99", "websearch1", "websearch2",
    "financial1", "financial2",
)

_MICRO_SPECS: Dict[str, tuple] = {
    "uniform": ("uniform",),
    "alpha1": ("zipf", 0.8),
    "alpha2": ("zipf", 1.2),
    "alpha3": ("zipf", 1.6),
    "exp1": ("exp", 0.01),
    "exp2": ("exp", 0.1),
}


def generate_macro_trace(spec: MacroWorkloadSpec, num_records: int,
                         seed: int = 1234,
                         footprint_pages: int | None = None
                         ) -> Iterator[TraceRecord]:
    """Stream ``num_records`` accesses following ``spec``.

    ``footprint_pages`` overrides the spec's natural footprint — used by
    experiments that scale working sets down to simulation-friendly sizes
    the way the paper scaled its benchmarks (section 6.1).
    """
    if num_records < 0:
        raise ValueError("num_records must be non-negative")
    rng = Random(seed)
    n = footprint_pages or spec.footprint_pages
    distribution = spec.make_distribution(n)
    log_cursor = 0
    # Reserve the top 5% of the footprint as the sequential log region.
    log_region_start = n - max(n // 20, 1)
    for index in range(num_records):
        is_read = rng.random() < spec.read_fraction
        if not is_read and rng.random() < spec.sequential_write_fraction:
            page = log_region_start + log_cursor % (n - log_region_start)
            log_cursor += 1
            yield TraceRecord(page=page, op=OP_WRITE, timestamp=index * 1e-4)
            continue
        rank = distribution.sample_rank(rng.random())
        page = _scatter(rank, n)
        yield TraceRecord(
            page=page,
            op=OP_READ if is_read else OP_WRITE,
            timestamp=index * 1e-4,
        )


def workload_footprint_pages(name: str) -> int:
    """Footprint of a Table 4 workload in 2KB pages."""
    if name in MACRO_WORKLOADS:
        return MACRO_WORKLOADS[name].footprint_pages
    if name in _MICRO_SPECS:
        return SyntheticConfig().footprint_pages
    raise KeyError(f"unknown workload {name!r}")


def build_workload(name: str, num_records: int, seed: int = 1234,
                   footprint_pages: int | None = None,
                   read_fraction: float | None = None) -> List[TraceRecord]:
    """Materialise any Table 4 workload by name.

    Micro names (``uniform``, ``alpha1..3``, ``exp1..2``) use the 512MB
    micro footprint; macro names use their published footprints.  Both can
    be overridden for scaled-down experiments.
    """
    if name in MACRO_WORKLOADS:
        spec = MACRO_WORKLOADS[name]
        if read_fraction is not None:
            spec = MacroWorkloadSpec(
                name=spec.name, description=spec.description,
                footprint_bytes=spec.footprint_bytes,
                read_fraction=read_fraction, tail=spec.tail,
                sequential_write_fraction=spec.sequential_write_fraction,
            )
        return list(generate_macro_trace(
            spec, num_records, seed=seed, footprint_pages=footprint_pages))
    if name in _MICRO_SPECS:
        config = SyntheticConfig(
            footprint_pages=footprint_pages or SyntheticConfig().footprint_pages,
            num_records=num_records,
            read_fraction=0.9 if read_fraction is None else read_fraction,
            seed=seed,
        )
        tail = _MICRO_SPECS[name]
        spec = MacroWorkloadSpec(
            name=name, description=f"micro benchmark {name}",
            footprint_bytes=config.footprint_pages * PAGE_BYTES,
            read_fraction=config.read_fraction, tail=tail,
        )
        return list(generate_macro_trace(
            spec, num_records, seed=seed,
            footprint_pages=config.footprint_pages))
    raise KeyError(
        f"unknown workload {name!r}; known: {', '.join(ALL_WORKLOAD_NAMES)}"
    )
