"""Derive disk-level traces by filtering application traces through a PDC.

The paper's Figure 4 (and the UMass traces generally) operate on *disk*
traces: the access stream below the OS page cache.  That stream looks very
different from raw application accesses — the DRAM primary disk cache
absorbs the hottest reads entirely and converts write bursts into
write-backs of pages going cold.  Feeding a raw application trace to the
Flash cache would therefore mis-state every Figure 4/9/10 result.

:func:`derive_disk_trace` replays an application-level trace through a
:class:`~repro.dram.page_cache.PrimaryDiskCache` of the configured size
and records what emerges below it: a read record per PDC read miss and a
write record per dirty write-back — the same capture the paper performed
with its full-system simulator (section 6.1).
"""

from __future__ import annotations

from typing import Iterable, List

from ..dram.page_cache import PrimaryDiskCache
from .trace import OP_READ, OP_WRITE, TraceRecord

__all__ = ["derive_disk_trace"]


def derive_disk_trace(records: Iterable[TraceRecord],
                      pdc_pages: int,
                      flush_tail: bool = True) -> List[TraceRecord]:
    """Filter an application trace through a page cache of ``pdc_pages``.

    Returns the disk-level stream: reads that missed the PDC plus dirty
    write-backs, in arrival order.  ``flush_tail`` appends the write-backs
    of pages still dirty at the end of the trace.
    """
    pdc = PrimaryDiskCache(capacity_pages=pdc_pages)
    disk: List[TraceRecord] = []
    for record in records:
        for page in record.expand():
            if record.is_read:
                hit, evictions = pdc.read(page)
                if not hit:
                    disk.append(TraceRecord(page=page, op=OP_READ,
                                            timestamp=record.timestamp))
            else:
                _, evictions = pdc.write(page)
            for eviction in evictions:
                if eviction.dirty:
                    disk.append(TraceRecord(page=eviction.page, op=OP_WRITE,
                                            timestamp=record.timestamp))
    if flush_tail:
        for page in pdc.flush():
            disk.append(TraceRecord(page=page, op=OP_WRITE))
    return disk
