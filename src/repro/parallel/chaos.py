"""Self-chaos harness: deterministic failure injection for the runner.

The simulator's fault injector (:mod:`repro.faults`) exercises the
*modelled* system's failure paths; this module does the same for the
sweep runner itself.  It provides module-level (hence picklable, hence
``SweepTask``-legal) task functions that fail in the three ways the
resilience layer must survive — worker death, hangs, and in-task
exceptions — plus a journal-truncation helper for crash-recovery tests.

Everything is deterministic in the :mod:`repro.faults` style: whether an
attempt fails is decided by on-disk attempt markers (a file per
``(key, attempt)`` under a caller-supplied state directory), never by
RNG draws or wall-clock races, so a chaos test's k-th attempt behaves
identically on every machine and every rerun.  The state directory is
the cross-process channel: worker processes cannot share memory with the
test, but they do share the filesystem.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Union

__all__ = ["echo", "slow_echo", "kill_worker", "crash_until_attempt",
           "fail_always", "fail_until_attempt", "hang",
           "truncate_journal_tail"]

_PathLike = Union[str, "os.PathLike[str]"]


def _mark_attempt(state_dir: str, key: str) -> int:
    """Record one attempt of *key*; returns this attempt's 1-based number."""
    root = Path(state_dir)
    root.mkdir(parents=True, exist_ok=True)
    attempt = 1
    while True:
        marker = root / f"{key}.attempt{attempt}"
        try:
            marker.touch(exist_ok=False)
            return attempt
        except FileExistsError:
            attempt += 1


def echo(value: int, state_dir: str = "", key: str = "") -> int:
    """Succeed immediately; marks an attempt when given a state dir."""
    if state_dir:
        _mark_attempt(state_dir, key or f"echo-{value}")
    return value


def slow_echo(value: int, delay_s: float = 0.2, state_dir: str = "",
              key: str = "") -> int:
    """Succeed after sleeping — makes a parent-SIGKILL window for tests."""
    if state_dir:
        _mark_attempt(state_dir, key or f"slow-{value}")
    time.sleep(delay_s)
    return value


def kill_worker(value: int = 0) -> int:
    """Die the way an OOM-killed worker dies: SIGKILL, no cleanup."""
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - unreachable


def crash_until_attempt(state_dir: str, key: str, succeed_at: int,
                        value: int = 0) -> int:
    """SIGKILL the worker until attempt *succeed_at*, then return *value*.

    Models a transiently dying worker (flaky node, memory pressure): the
    retry budget should absorb ``succeed_at - 1`` crashes.
    """
    attempt = _mark_attempt(state_dir, key)
    if attempt < succeed_at:
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def fail_always(state_dir: str = "", key: str = "",
                message: str = "deterministic failure") -> None:
    """Raise the same exception every attempt (the fail-fast case)."""
    if state_dir:
        _mark_attempt(state_dir, key)
    raise ValueError(message)


def fail_until_attempt(state_dir: str, key: str, succeed_at: int,
                       value: int = 0) -> int:
    """Raise (with an attempt-specific message) until *succeed_at*.

    The changing message keeps the failure signature distinct between
    attempts, so the runner's repeated-signature fail-fast does not kick
    in — this is the "genuinely transient exception" shape.
    """
    attempt = _mark_attempt(state_dir, key)
    if attempt < succeed_at:
        raise RuntimeError(f"transient failure on attempt {attempt}")
    return value


def hang(hang_s: float = 3600.0, state_dir: str = "", key: str = "",
         value: int = 0) -> int:
    """Sleep far past any sane timeout — a hung configuration.

    Sleeps in short slices so an un-timed-out test that accidentally
    runs this still dies to pytest's own timeout rather than blocking
    a worker forever after the suite is torn down.
    """
    if state_dir:
        _mark_attempt(state_dir, key)
    deadline_slices = max(1, int(hang_s / 0.1))
    for _ in range(deadline_slices):
        time.sleep(0.1)
    return value


def truncate_journal_tail(path: _PathLike, drop_bytes: int) -> None:
    """Chop *drop_bytes* off a journal — a torn final append.

    Emulates the on-disk state after a SIGKILL mid-``write()``: the last
    line is partial, everything before it intact.  The journal loader
    must replay the intact prefix and drop the tail.
    """
    size = os.path.getsize(path)
    with open(path, "a", encoding="utf-8") as stream:
        stream.truncate(max(0, size - drop_bytes))
