"""Journaled sweep checkpoints: durable re-execution for long sweeps.

A :class:`SweepJournal` is an append-only JSONL file recording every
*finished* task of one sweep, keyed by ``(sweep_id, task.key,
kwargs-hash)``:

* the first line is a header naming the format and the ``sweep_id`` — a
  stable digest of the task list (keys, kwargs, seeds, function names)
  plus a caller label, so a journal can only resume the sweep that wrote
  it;
* every subsequent line is one task's final outcome: key, kwargs hash,
  status, attempt count, elapsed wall time, and either the pickled value
  (base64, so arbitrary experiment dataclasses survive) or the error
  text.

Durability model
----------------

The journal file itself is *created* atomically (header via
``tmp + os.replace``, see :mod:`repro.atomicio`), and records are
*appended* with flush + fsync, so a SIGKILL between tasks loses nothing
and a SIGKILL mid-append loses at most the line being written.  The
loader tolerates exactly that failure mode: a torn or corrupt trailing
line ends the replay (everything before it is intact by construction)
and is reported via :attr:`SweepJournal.corrupt_tail`, and the next
:meth:`record` call first truncates the torn tail via an atomic rewrite
so the journal never accumulates garbage.

Resume contract
---------------

``resume()`` returns only *successful* entries — failed tasks are re-run
by the resumed sweep, which is the point of resuming.  Values round-trip
through pickle, so a combiner fed journal-replayed results produces
output byte-identical to an uninterrupted run (the ``resumed == fresh``
extension of the PR 3 determinism contract, enforced by the chaos tests
and the CI kill-and-resume job).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..atomicio import atomic_write_text
from .runner import SweepResult, SweepTask

__all__ = ["JOURNAL_FORMAT", "JOURNAL_VERSION", "kwargs_hash",
           "compute_sweep_id", "SweepJournal"]

JOURNAL_FORMAT = "repro-sweep-journal"
JOURNAL_VERSION = 1

_PathLike = Union[str, "os.PathLike[str]"]


def _stable_json(payload: Any) -> str:
    # repr() fallback keeps non-JSON kwargs (enums, dataclasses) hashable;
    # their repr is stable across processes for the plain data tasks carry.
    return json.dumps(payload, sort_keys=True, default=repr,
                      separators=(",", ":"))


def _fn_name(task: SweepTask) -> str:
    fn = task.fn
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"


def kwargs_hash(task: SweepTask) -> str:
    """Digest of everything that determines a task's output.

    Covers the function's qualified name, the kwargs, and the injected
    seed — so a journal entry only matches a task that would recompute
    the identical value, and an edited grid invalidates exactly the
    entries whose configuration changed.
    """
    payload = _stable_json({"fn": _fn_name(task), "kwargs": task.kwargs,
                            "seed": task.seed})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def compute_sweep_id(tasks: Iterable[SweepTask], label: str = "") -> str:
    """Stable identity of one sweep: its label plus every task's identity.

    Order-sensitive on purpose — results are aggregated in task order,
    so a reordered grid is a different sweep.
    """
    digest = hashlib.sha256()
    digest.update(label.encode("utf-8"))
    for task in tasks:
        digest.update(b"\x00")
        digest.update(task.key.encode("utf-8"))
        digest.update(b"\x01")
        digest.update(kwargs_hash(task).encode("utf-8"))
    return digest.hexdigest()[:16]


def _encode_value(value: Any) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def _decode_value(encoded: str) -> Any:
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))


class SweepJournal:
    """One sweep's append-only completion journal.

    Use :meth:`create` for a fresh run, :meth:`resume` to reopen after a
    crash; both return a journal ready for :meth:`record` calls.
    """

    def __init__(self, path: _PathLike, sweep_id: str,
                 entries: Optional[List[Dict[str, Any]]] = None,
                 corrupt_tail: int = 0) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        self.entries: List[Dict[str, Any]] = list(entries or [])
        #: Torn/corrupt trailing lines dropped by the loader (0 or 1 for
        #: a SIGKILL mid-append; more only for external corruption).
        self.corrupt_tail = corrupt_tail
        self._dirty_tail = corrupt_tail > 0

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: _PathLike, sweep_id: str) -> "SweepJournal":
        """Start a fresh journal, atomically replacing any previous file."""
        journal = cls(path, sweep_id)
        header = {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION,
                  "sweep_id": sweep_id}
        atomic_write_text(journal.path, _stable_json(header) + "\n")
        return journal

    @classmethod
    def resume(cls, path: _PathLike, sweep_id: str) -> "SweepJournal":
        """Reopen an existing journal, validating it belongs to *sweep_id*.

        Raises ``FileNotFoundError`` when the journal does not exist and
        ``ValueError`` when it records a different sweep (changed grid,
        scale, or figure selection) or is not a journal at all.
        """
        journal = cls.load(path)
        if journal.sweep_id != sweep_id:
            raise ValueError(
                f"journal {path} records sweep {journal.sweep_id}, not "
                f"{sweep_id}: the task grid, scale, or figure selection "
                "changed since the journal was written")
        return journal

    @classmethod
    def load(cls, path: _PathLike) -> "SweepJournal":
        """Read a journal, tolerating a torn trailing line.

        Replay stops at the first unparsable or structurally invalid
        line: with fsync'd appends everything before a torn tail is
        intact, and everything after it cannot be trusted.
        """
        raw = Path(path).read_text(encoding="utf-8")
        lines = raw.splitlines()
        if not lines:
            raise ValueError(f"{path} is empty, not a sweep journal")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} has no journal header: {exc}") from exc
        if (not isinstance(header, dict)
                or header.get("format") != JOURNAL_FORMAT):
            raise ValueError(f"{path} is not a {JOURNAL_FORMAT} file")
        if header.get("version") != JOURNAL_VERSION:
            raise ValueError(f"unsupported journal version "
                             f"{header.get('version')!r} in {path}")
        entries: List[Dict[str, Any]] = []
        corrupt_tail = 0
        for index, line in enumerate(lines[1:], start=2):
            entry = cls._parse_entry(line)
            if entry is None:
                corrupt_tail = len(lines) - index + 1
                break
            entries.append(entry)
        return cls(path, str(header["sweep_id"]), entries, corrupt_tail)

    @staticmethod
    def _parse_entry(line: str) -> Optional[Dict[str, Any]]:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(entry, dict):
            return None
        if not {"key", "kwargs_hash", "status"} <= set(entry):
            return None
        if entry["status"] == "ok" and "value_b64" not in entry:
            return None
        return entry

    # -- recording -----------------------------------------------------------

    def record(self, task: SweepTask, result: SweepResult) -> None:
        """Append one finished task's outcome, fsync'd before returning."""
        entry: Dict[str, Any] = {
            "key": task.key,
            "kwargs_hash": kwargs_hash(task),
            "status": "ok" if result.ok else "error",
            "attempts": result.attempts,
            "elapsed_s": round(result.elapsed_s, 6),
        }
        if result.ok:
            entry["value_b64"] = _encode_value(result.value)
        else:
            entry["error"] = result.error
        if self._dirty_tail:
            self._rewrite()
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(_stable_json(entry) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        self.entries.append(entry)

    def _rewrite(self) -> None:
        """Atomically drop a torn tail before the first new append."""
        header = {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION,
                  "sweep_id": self.sweep_id}
        lines = [_stable_json(header)]
        lines.extend(_stable_json(entry) for entry in self.entries)
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._dirty_tail = False

    # -- replay --------------------------------------------------------------

    def completed(self) -> Dict[Tuple[str, str], SweepResult]:
        """Successful results by ``(key, kwargs_hash)``, ready to reuse.

        Failed entries are excluded (a resumed sweep re-runs them);
        duplicate keys keep the *last* record, matching append order.
        """
        replayed: Dict[Tuple[str, str], SweepResult] = {}
        for entry in self.entries:
            if entry["status"] != "ok":
                continue
            replayed[(entry["key"], entry["kwargs_hash"])] = SweepResult(
                key=entry["key"],
                value=_decode_value(entry["value_b64"]),
                elapsed_s=float(entry.get("elapsed_s", 0.0)),
                attempts=int(entry.get("attempts", 1)),
            )
        return replayed
