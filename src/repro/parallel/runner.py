"""The sweep runner: deterministic fan-out of independent configurations.

Determinism contract
--------------------

A sweep's output depends only on its task list — never on worker count,
scheduling, or completion order:

* every task carries everything its worker needs (picklable primitives
  only); workers share no state and rebuild workloads/systems locally;
* seeds are either passed explicitly by the experiment (tasks that must
  replay *the same* trace share one seed — e.g. the two Figure 9
  platform arms) or derived via :func:`derive_seed`, a stable hash of
  the task key and a base seed (tasks that need *independent* streams);
* results are aggregated in task order regardless of completion order.

``sweep(tasks, workers=1)`` executes in-process with no executor at all,
so the serial experiment paths run through the identical task functions
and the parallel==serial comparison is exact, not approximate.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "derive_seed",
    "SweepTask",
    "SweepResult",
    "SweepError",
    "sweep",
    "merge_telemetry",
]

#: Derived seeds live in [0, 2**63): comfortably inside every RNG's seed
#: space and unaffected by platform ``int`` quirks.
_SEED_SPACE = 2 ** 63

#: ``progress(result, done, total)`` — invoked in the parent process,
#: once per finished task, in completion order.
ProgressCallback = Callable[["SweepResult", int, int], None]


def derive_seed(base_seed: int, key: str) -> int:
    """Stable per-task seed: SHA-256 of ``"{base_seed}:{key}"``.

    Unlike :func:`hash`, the value is independent of ``PYTHONHASHSEED``,
    the interpreter, and the process, so a task keyed ``"fig6:t=4"``
    sees the same stream whether it runs serially, on worker 0 of 2, or
    on worker 7 of 8 — and reruns reproduce it exactly.
    """
    digest = hashlib.sha256(f"{base_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class SweepTask:
    """One independent configuration of a sweep.

    ``fn`` must be a module-level callable (workers import it by
    qualified name) and ``kwargs`` picklable plain data.  When ``seed``
    is set the runner injects it as ``kwargs["seed"]`` just before the
    call; task builders that need per-task independence set
    ``seed=derive_seed(base, key)``, builders whose configurations must
    replay one identical trace pass the experiment seed unchanged.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one task: a value, or an error traceback — never both."""

    key: str
    value: Any
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """The value, or raise :class:`SweepError` for a failed task."""
        if self.error is not None:
            raise SweepError(
                f"sweep task {self.key!r} failed:\n{self.error}")
        return self.value


class SweepError(RuntimeError):
    """A combiner was handed a failed task result."""


def _execute(task: SweepTask) -> SweepResult:
    """Run one task, trapping any failure into an error result.

    This is the worker entry point: exceptions must not escape, or one
    crashed configuration would poison the whole pool.
    """
    started = time.perf_counter()  # simlint: ignore[SIM001] -- per-task elapsed metadata
    kwargs = dict(task.kwargs)
    if task.seed is not None:
        kwargs["seed"] = task.seed
    try:
        value = task.fn(**kwargs)
    except Exception:
        return SweepResult(key=task.key, value=None,
                           error=traceback.format_exc(),
                           elapsed_s=time.perf_counter() - started)  # simlint: ignore[SIM001] -- per-task elapsed metadata
    return SweepResult(key=task.key, value=value,
                       elapsed_s=time.perf_counter() - started)  # simlint: ignore[SIM001] -- per-task elapsed metadata


def sweep(tasks: Iterable[SweepTask], workers: int = 1,
          progress: Optional[ProgressCallback] = None) -> List[SweepResult]:
    """Run every task and return results **in task order**.

    ``workers <= 1`` executes serially in-process (no executor, no
    pickling); ``workers > 1`` fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  A task that
    raises reports an error result; a worker process that dies outright
    (OOM kill, segfault) is likewise confined to the tasks it held.
    """
    task_list = list(tasks)
    keys = [task.key for task in task_list]
    if len(set(keys)) != len(keys):
        duplicates = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate sweep task keys: {duplicates}")
    total = len(task_list)
    if workers <= 1 or total <= 1:
        results: List[SweepResult] = []
        for task in task_list:
            result = _execute(task)
            results.append(result)
            if progress is not None:
                progress(result, len(results), total)
        return results

    slots: List[Optional[SweepResult]] = [None] * total
    done = 0
    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        futures = {pool.submit(_execute, task): index
                   for index, task in enumerate(task_list)}
        for future in as_completed(futures):
            index = futures[future]
            try:
                result = future.result()
            except BaseException as exc:  # e.g. BrokenProcessPool
                result = SweepResult(key=task_list[index].key, value=None,
                                     error=f"worker died: {exc!r}")
            slots[index] = result
            done += 1
            if progress is not None:
                progress(result, done, total)
    return [result for result in slots if result is not None]


def merge_telemetry(handles: Iterable[Any]) -> Optional[Any]:
    """Fold per-task :class:`~repro.telemetry.Telemetry` handles into one.

    Counters add, histograms merge bucket-wise, time-series concatenate
    in task order — the aggregate a serial run sharing a single handle
    across the same tasks would have produced.  ``None`` entries are
    skipped; returns ``None`` when nothing was observed.
    """
    from ..telemetry import Telemetry

    merged: Optional[Telemetry] = None
    for handle in handles:
        if handle is None:
            continue
        if merged is None:
            merged = Telemetry(sample_interval=handle.sample_interval)
        merged.merge(handle)
    return merged
