"""The sweep runner: deterministic fan-out of independent configurations.

Determinism contract
--------------------

A sweep's output depends only on its task list — never on worker count,
scheduling, or completion order:

* every task carries everything its worker needs (picklable primitives
  only); workers share no state and rebuild workloads/systems locally;
* seeds are either passed explicitly by the experiment (tasks that must
  replay *the same* trace share one seed — e.g. the two Figure 9
  platform arms) or derived via :func:`derive_seed`, a stable hash of
  the task key and a base seed (tasks that need *independent* streams);
* results are aggregated in task order regardless of completion order.

``sweep(tasks, workers=1)`` executes in-process with no executor at all,
so the serial experiment paths run through the identical task functions
and the parallel==serial comparison is exact, not approximate.

Resilience layer
----------------

On top of that contract the runner is hardened for long sweeps (see
DESIGN.md section 12):

* a :class:`~repro.parallel.checkpoint.SweepJournal` records every
  finished task; a resumed sweep replays completed results from the
  journal instead of recomputing them, and the replayed results are
  value-identical to fresh ones (``resumed == fresh``);
* a :class:`~repro.parallel.retry.RetryPolicy` adds per-task
  ``timeout_s`` and ``retries`` with deterministic exponential backoff
  (jitter from :func:`derive_seed`, never wall-clock entropy), failing
  fast when the same exception signature repeats;
* worker crash recovery: a ``BrokenProcessPool`` poisons *every* future
  the pool held, so the runner kills and respawns the pool, then re-runs
  each suspect in an isolated single-worker pool — innocents complete,
  and the configuration that actually killed the worker is quarantined
  to its own pool where it can only take itself down.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Union,
)

from .retry import RetryPolicy, TaskFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import SweepJournal

__all__ = [
    "derive_seed",
    "SweepTask",
    "SweepResult",
    "SweepError",
    "sweep",
    "merge_telemetry",
]

#: Derived seeds live in [0, 2**63): comfortably inside every RNG's seed
#: space and unaffected by platform ``int`` quirks.
_SEED_SPACE = 2 ** 63

#: Scheduler poll interval: how often the pool path checks deadlines and
#: backoff readiness while futures are outstanding.
_POLL_S = 0.05

#: ``progress(result, done, total)`` — invoked in the parent process,
#: once per finished task, in completion order.
ProgressCallback = Callable[["SweepResult", int, int], None]


def derive_seed(base_seed: int, key: str) -> int:
    """Stable per-task seed: SHA-256 of ``"{base_seed}:{key}"``.

    Unlike :func:`hash`, the value is independent of ``PYTHONHASHSEED``,
    the interpreter, and the process, so a task keyed ``"fig6:t=4"``
    sees the same stream whether it runs serially, on worker 0 of 2, or
    on worker 7 of 8 — and reruns reproduce it exactly.
    """
    digest = hashlib.sha256(f"{base_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class SweepTask:
    """One independent configuration of a sweep.

    ``fn`` must be a module-level callable (workers import it by
    qualified name) and ``kwargs`` picklable plain data.  When ``seed``
    is set the runner injects it as ``kwargs["seed"]`` just before the
    call; task builders that need per-task independence set
    ``seed=derive_seed(base, key)``, builders whose configurations must
    replay one identical trace pass the experiment seed unchanged.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one task: a value, or an error traceback — never both."""

    key: str
    value: Any
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: How many attempts the task consumed (1 = first try succeeded).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """The value, or raise :class:`SweepError` for a failed task."""
        if self.error is not None:
            raise SweepError(self.key, self.attempts, self.error)
        return self.value


class SweepError(RuntimeError):
    """A combiner was handed a failed task result.

    Carries the task key, the attempt count, and the worker's traceback
    text both as attributes and in the rendered message, so the failure
    stays diagnosable however far from the sweep it surfaces.
    """

    def __init__(self, key: str, attempts: int, error: str) -> None:
        noun = "attempt" if attempts == 1 else "attempts"
        super().__init__(
            f"sweep task {key!r} failed after {attempts} {noun}; "
            f"worker traceback:\n{error}")
        self.key = key
        self.attempts = attempts
        self.worker_traceback = error


def _execute(task: SweepTask) -> SweepResult:
    """Run one task, trapping any failure into an error result.

    This is the worker entry point: exceptions must not escape, or one
    crashed configuration would poison the whole pool.
    """
    started = time.perf_counter()  # simlint: ignore[SIM001] -- per-task elapsed metadata
    kwargs = dict(task.kwargs)
    if task.seed is not None:
        kwargs["seed"] = task.seed
    try:
        value = task.fn(**kwargs)
    except Exception:
        return SweepResult(key=task.key, value=None,
                           error=traceback.format_exc(),
                           elapsed_s=time.perf_counter() - started)  # simlint: ignore[SIM001] -- per-task elapsed metadata
    return SweepResult(key=task.key, value=value,
                       elapsed_s=time.perf_counter() - started)  # simlint: ignore[SIM001] -- per-task elapsed metadata


def sweep(tasks: Iterable[SweepTask], workers: int = 1,
          progress: Optional[ProgressCallback] = None,
          policy: Optional[RetryPolicy] = None,
          journal: Optional["SweepJournal"] = None) -> List[SweepResult]:
    """Run every task and return results **in task order**.

    ``workers <= 1`` executes serially in-process (no executor, no
    pickling); ``workers > 1`` fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  A task that
    raises reports an error result; a worker process that dies outright
    (OOM kill, segfault) is confined to the task it held — the pool is
    respawned and the implicated tasks re-run in isolation.

    ``policy`` adds per-task retries, deterministic backoff, and (on the
    pool path) a per-attempt timeout; ``journal`` makes the sweep
    durable — finished tasks are recorded as they complete, and tasks
    already recorded as successful are replayed instead of re-executed,
    with results value-identical to an uninterrupted run.
    """
    task_list = list(tasks)
    keys = [task.key for task in task_list]
    if len(set(keys)) != len(keys):
        duplicates = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate sweep task keys: {duplicates}")
    policy = policy or RetryPolicy()

    cached: Dict[int, SweepResult] = {}
    if journal is not None:
        from .checkpoint import kwargs_hash

        completed = journal.completed()
        for index, task in enumerate(task_list):
            hit = completed.get((task.key, kwargs_hash(task)))
            if hit is not None:
                cached[index] = hit

    run = _SweepRun(task_list, policy, journal, progress, cached)
    # workers >= 2 always uses the pool, even for a single task: the
    # caller asked for a process boundary, and crash/timeout recovery
    # only exists on the pool path.
    if workers <= 1 or not task_list:
        run.run_serial()
    else:
        run.run_pool(min(workers, len(task_list)))
    return [result for result in run.slots if result is not None]


# ---------------------------------------------------------------------------
# resilient execution engine
# ---------------------------------------------------------------------------


@dataclass
class _Attempt:
    """One scheduled attempt of one task."""

    index: int
    attempt: int
    previous: Optional[TaskFailure]
    ready_at: float = 0.0
    #: Run in a dedicated single-worker pool (set after the task was
    #: implicated in a worker death or a timeout): a quarantined task
    #: can only take itself down, never its neighbours.
    isolate: bool = False


@dataclass
class _Running:
    """Bookkeeping for one outstanding pool future."""

    attempt: _Attempt
    deadline: Optional[float]


class _SweepRun:
    """Execution state shared by the serial and pool paths."""

    def __init__(self, task_list: List[SweepTask], policy: RetryPolicy,
                 journal: Optional["SweepJournal"],
                 progress: Optional[ProgressCallback],
                 cached: Dict[int, SweepResult]) -> None:
        self.tasks = task_list
        self.policy = policy
        self.journal = journal
        self.progress = progress
        self.total = len(task_list)
        self.slots: List[Optional[SweepResult]] = [None] * self.total
        self.done = 0
        self.queue: List[_Attempt] = []
        self._pool_broken = False
        # Replayed results count as done immediately, in task order.
        for index in sorted(cached):
            self._finish(index, cached[index], record=False)
        for index in range(self.total):
            if index not in cached:
                self.queue.append(_Attempt(index=index, attempt=1,
                                           previous=None))

    # -- shared bookkeeping --------------------------------------------------

    def _finish(self, index: int, result: SweepResult,
                record: bool = True) -> None:
        self.slots[index] = result
        self.done += 1
        if record and self.journal is not None:
            self.journal.record(self.tasks[index], result)
        if self.progress is not None:
            self.progress(result, self.done, self.total)

    def _failure_result(self, index: int, failure: TaskFailure) -> SweepResult:
        key = self.tasks[index].key
        if failure.kind == "exception":
            error = failure.detail
        elif failure.kind == "timeout":
            error = (f"task {key!r} exceeded timeout_s="
                     f"{self.policy.timeout_s} on attempt "
                     f"{failure.attempt}: {failure.detail}")
        else:
            error = (f"worker running task {key!r} died on attempt "
                     f"{failure.attempt}: {failure.detail}")
        return SweepResult(key=key, value=None, error=error,
                           attempts=failure.attempt)

    def _settle(self, attempt: _Attempt,
                outcome: Union[SweepResult, TaskFailure],
                now: float) -> None:
        """Route one attempt's outcome: finish, or schedule a retry."""
        if isinstance(outcome, SweepResult) and outcome.ok:
            self._finish(attempt.index,
                         replace(outcome, attempts=attempt.attempt))
            return
        if isinstance(outcome, SweepResult):
            failure = TaskFailure(kind="exception",
                                  detail=outcome.error or "",
                                  attempt=attempt.attempt)
        else:
            failure = outcome
        if self.policy.should_retry(failure, attempt.previous):
            key = self.tasks[attempt.index].key
            delay = self.policy.backoff_s(key, attempt.attempt)
            self.queue.append(_Attempt(
                index=attempt.index, attempt=attempt.attempt + 1,
                previous=failure, ready_at=now + delay,
                isolate=attempt.isolate or failure.transient))
        else:
            self._finish(attempt.index,
                         self._failure_result(attempt.index, failure))

    # -- serial path ---------------------------------------------------------

    def run_serial(self) -> None:
        """In-process execution with retries (timeouts need the pool:
        a single-process run cannot preempt its own task)."""
        while self.queue:
            self.queue.sort(key=lambda a: (a.ready_at, a.index))
            attempt = self.queue.pop(0)
            if attempt.attempt > 1:
                wait_s = self.policy.backoff_s(
                    self.tasks[attempt.index].key, attempt.attempt - 1)
                time.sleep(wait_s)
            result = _execute(self.tasks[attempt.index])
            # ready_at is wall-clock scheduling state; results never
            # depend on it, so 0.0 keeps the serial path clock-free.
            self._settle(attempt, result, now=0.0)

    # -- pool path -----------------------------------------------------------

    def run_pool(self, workers: int) -> None:
        pool = ProcessPoolExecutor(max_workers=workers)
        running: Dict[Future[SweepResult], _Running] = {}
        try:
            while self.queue or running:
                now = time.monotonic()  # simlint: ignore[SIM001] -- scheduler deadlines
                self._run_ready_isolated(now)
                self._submit_ready(pool, running, workers,
                                   time.monotonic())  # simlint: ignore[SIM001] -- scheduler deadlines
                if self._pool_broken:
                    self._pool_broken = False
                    pool = self._recover_crash(pool, running)
                    continue
                if not running:
                    self._sleep_until_ready()
                    continue
                crashed = self._collect(running)
                if crashed:
                    pool = self._recover_crash(pool, running)
                    continue
                expired = self._expire_deadlines(running)
                if expired:
                    pool = self._recover_timeout(pool, running, expired)
        finally:
            _kill_pool(pool)

    def _submit_ready(self, pool: ProcessPoolExecutor,
                      running: Dict[Future[SweepResult], _Running],
                      workers: int, now: float) -> None:
        """Keep at most *workers* futures outstanding.

        Windowed submission (rather than submitting the whole grid up
        front) means every outstanding future is actually executing, so
        ``submit time + timeout_s`` is a faithful per-attempt deadline
        and a crash implicates at most *workers* suspects.
        """
        self.queue.sort(key=lambda a: (a.ready_at, a.index))
        while len(running) < workers:
            attempt = self._pop_eligible(now, isolate=False)
            if attempt is None:
                return
            deadline = (now + self.policy.timeout_s
                        if self.policy.timeout_s is not None else None)
            try:
                future = pool.submit(_execute, self.tasks[attempt.index])
            except RuntimeError:
                # Pool broke between iterations; requeue and let the
                # crash path rebuild the pool this same loop turn.
                self.queue.append(attempt)
                self._pool_broken = True
                return
            running[future] = _Running(attempt=attempt, deadline=deadline)

    def _pop_eligible(self, now: float, isolate: bool) -> Optional[_Attempt]:
        for position, attempt in enumerate(self.queue):
            if attempt.isolate == isolate and attempt.ready_at <= now:
                return self.queue.pop(position)
        return None

    def _run_ready_isolated(self, now: float) -> None:
        """Run quarantined attempts, one at a time, each in its own
        single-worker pool."""
        while True:
            attempt = self._pop_eligible(now, isolate=True)
            if attempt is None:
                return
            outcome = _run_isolated(self.tasks[attempt.index],
                                    attempt.attempt, self.policy.timeout_s)
            self._settle(attempt, outcome,
                         time.monotonic())  # simlint: ignore[SIM001] -- scheduler deadlines

    def _sleep_until_ready(self) -> None:
        if not self.queue:
            return
        now = time.monotonic()  # simlint: ignore[SIM001] -- scheduler deadlines
        wake = min(attempt.ready_at for attempt in self.queue)
        if wake > now:
            time.sleep(min(wake - now, _POLL_S * 4))

    def _collect(self,
                 running: Dict[Future[SweepResult], _Running]) -> bool:
        """Harvest finished futures; True when the pool broke."""
        done, _ = wait(set(running), timeout=_POLL_S,
                       return_when=FIRST_COMPLETED)
        crashed = False
        for future in done:
            info = running.pop(future)
            try:
                result = future.result()
            except BaseException:  # BrokenProcessPool and kin
                # Any worker's death breaks every outstanding future, so
                # this future's task is a *suspect*, not necessarily the
                # culprit.  Requeue it, un-charged, for an isolated
                # rerun: the rerun acquits innocents (they just run) and
                # convicts the culprit in a pool of its own.
                crashed = True
                self.queue.append(replace(info.attempt, isolate=True,
                                          ready_at=0.0))
                continue
            self._settle(info.attempt, result,
                         time.monotonic())  # simlint: ignore[SIM001] -- scheduler deadlines
        return crashed

    def _recover_crash(self, pool: ProcessPoolExecutor,
                       running: Dict[Future[SweepResult], _Running],
                       ) -> ProcessPoolExecutor:
        """A worker died: every outstanding future is poisoned.

        The dead worker's own future raised ``BrokenProcessPool`` in
        :meth:`_collect` and its attempt was already requeued as an
        isolated suspect; the remaining futures belong to tasks that
        merely shared the pool, so they requeue as isolated suspects too
        — the isolated rerun acquits the innocents (they just succeed)
        and convicts the culprit without collateral damage.  The main
        pool is killed and respawned once per crash event.
        """
        for info in running.values():
            self.queue.append(replace(info.attempt, isolate=True,
                                      ready_at=0.0))
        running.clear()
        _kill_pool(pool)
        return ProcessPoolExecutor(max_workers=pool._max_workers)

    def _expire_deadlines(self, running: Dict[Future[SweepResult], _Running],
                          ) -> List[_Running]:
        now = time.monotonic()  # simlint: ignore[SIM001] -- scheduler deadlines
        return [info for future, info in running.items()
                if info.deadline is not None and now > info.deadline
                and not future.done()]

    def _recover_timeout(self, pool: ProcessPoolExecutor,
                         running: Dict[Future[SweepResult], _Running],
                         expired: List[_Running]) -> ProcessPoolExecutor:
        """A worker hung past its deadline.

        ``ProcessPoolExecutor`` cannot cancel a running call, so the
        whole pool is killed and respawned.  The expired attempts are
        charged a (transient, retryable) timeout failure and quarantined
        for any further attempts; tasks that were merely running beside
        them requeue at the *same* attempt number — we killed their
        workers, they did nothing wrong.
        """
        expired_indices = {info.attempt.index for info in expired}
        now = time.monotonic()  # simlint: ignore[SIM001] -- scheduler deadlines
        for info in expired:
            failure = TaskFailure(
                kind="timeout",
                detail="worker killed after missing its deadline",
                attempt=info.attempt.attempt)
            self._settle(replace(info.attempt, isolate=True), failure, now)
        for info in running.values():
            if info.attempt.index not in expired_indices:
                self.queue.append(replace(info.attempt, ready_at=0.0))
        running.clear()
        _kill_pool(pool)
        return ProcessPoolExecutor(max_workers=pool._max_workers)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: SIGKILL the workers, then reap the executor.

    Reaches into ``_processes`` (stdlib-private but stable since 3.7);
    ``shutdown`` alone would block forever on a hung worker.
    """
    process_map = getattr(pool, "_processes", None) or {}
    for process in list(process_map.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-reaped process
            pass
    pool.shutdown(wait=True, cancel_futures=True)


def _run_isolated(task: SweepTask, attempt: int,
                  timeout_s: Optional[float],
                  ) -> Union[SweepResult, TaskFailure]:
    """Run one attempt in a dedicated single-worker pool.

    Used for quarantined tasks (prior crash or timeout) and for crash
    suspects: whatever happens in here — a clean result, an exception,
    another worker death, a hang — is confined to this pool.
    """
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        future = pool.submit(_execute, task)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            return TaskFailure(
                kind="timeout",
                detail="isolated worker killed after missing its deadline",
                attempt=attempt)
        except BaseException as exc:  # BrokenProcessPool and kin
            return TaskFailure(kind="worker-lost", detail=repr(exc),
                               attempt=attempt)
    finally:
        _kill_pool(pool)


def merge_telemetry(handles: Iterable[Any]) -> Optional[Any]:
    """Fold per-task :class:`~repro.telemetry.Telemetry` handles into one.

    Counters add, histograms merge bucket-wise, time-series concatenate
    in task order — the aggregate a serial run sharing a single handle
    across the same tasks would have produced.  Entries that carry no
    telemetry are skipped: ``None`` handles, and — as a convenience for
    resilient sweeps — :class:`SweepResult` items, whose ``value`` is
    used when the task succeeded and ignored when it failed.  Returns
    ``None`` when nothing was observed.
    """
    from ..telemetry import Telemetry

    merged: Optional[Telemetry] = None
    for handle in handles:
        if isinstance(handle, SweepResult):
            handle = handle.value if handle.ok else None
        if handle is None:
            continue
        if merged is None:
            merged = Telemetry(sample_interval=handle.sample_interval)
        merged.merge(handle)
    return merged
