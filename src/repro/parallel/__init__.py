"""``repro.parallel`` — process-pool fan-out for experiment sweeps.

The paper's headline results (Figures 4, 6, 7, 10, 11, 12) are parameter
sweeps whose configurations are independent of each other — exactly the
"embarrassingly parallel per-configuration" structure of the design-space
studies this literature runs.  This package fans those configurations out
to shared-nothing worker processes while keeping results bit-identical to
the serial path:

* :func:`~repro.parallel.runner.derive_seed` — stable per-task seed
  derivation (SHA-256 of task key + base seed), independent of
  ``PYTHONHASHSEED``, worker count, and completion order;
* :class:`~repro.parallel.runner.SweepTask` /
  :class:`~repro.parallel.runner.SweepResult` — picklable task and
  result records;
* :func:`~repro.parallel.runner.sweep` — the runner itself: serial
  in-process at ``workers <= 1`` (the exact code path the experiments
  always ran), ``concurrent.futures.ProcessPoolExecutor`` beyond, with
  ordered aggregation, failure isolation (a crashed configuration
  becomes an error result instead of killing the sweep), and a progress
  callback;
* :func:`~repro.parallel.runner.merge_telemetry` — recombines per-task
  :class:`~repro.telemetry.Telemetry` handles (histogram bucket merge,
  counter addition, time-series concatenation) into the single handle a
  serial run would have produced.

Every ``repro.experiments.fig*`` module exposes a pure
``tasks()``/``combine()`` pair built on these types; both the historical
serial entry points and ``repro sweep --workers N`` consume the same
pair, which is what makes the parallel==serial equivalence testable.

Resilience layer (DESIGN.md section 12):

* :class:`~repro.parallel.checkpoint.SweepJournal` /
  :func:`~repro.parallel.checkpoint.compute_sweep_id` — append-only
  JSONL completion journal behind ``repro sweep --journal/--resume``;
  resumed sweeps replay completed tasks and aggregate byte-identically
  to an uninterrupted run;
* :class:`~repro.parallel.retry.RetryPolicy` /
  :class:`~repro.parallel.retry.TaskFailure` — per-task timeouts and
  retries with deterministic, :func:`derive_seed`-jittered backoff and
  a transient/deterministic failure taxonomy;
* :mod:`~repro.parallel.chaos` — deterministic worker-crash / hang /
  journal-truncation injection for the runner's own tests.
"""

from .checkpoint import SweepJournal, compute_sweep_id, kwargs_hash
from .retry import RetryPolicy, TaskFailure
from .runner import (
    SweepError,
    SweepResult,
    SweepTask,
    derive_seed,
    merge_telemetry,
    sweep,
)

__all__ = [
    "RetryPolicy",
    "SweepError",
    "SweepJournal",
    "SweepResult",
    "SweepTask",
    "TaskFailure",
    "compute_sweep_id",
    "derive_seed",
    "kwargs_hash",
    "merge_telemetry",
    "sweep",
]
