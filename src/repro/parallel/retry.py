"""Retry policy and failure taxonomy for the resilient sweep runner.

The runner distinguishes three ways a task attempt can fail:

* **exception** — the task function raised inside the worker.  The
  worker survives, the traceback comes back intact.  Usually
  deterministic: the same configuration will raise the same exception
  again, so the policy retries *once* to rule out environmental flukes
  and then fails fast when the second attempt dies with the same
  signature (exception type + message).  Burning the full retry budget
  on a deterministic bug only delays the sweep's verdict.
* **timeout** — the attempt exceeded ``timeout_s``.  Transient by
  classification (a loaded machine can starve one worker), so the full
  retry budget applies.
* **worker-lost** — the worker process died outright (OOM kill,
  segfault, ``BrokenProcessPool``).  Also transient: the retry budget
  applies, and the runner re-runs the task in an isolated single-worker
  pool so a genuinely poisonous configuration cannot take innocent
  neighbours down with it again.

Backoff between attempts is deterministic: exponential in the attempt
number with jitter drawn from :func:`~repro.parallel.runner.derive_seed`
on ``(policy seed, task key, attempt)`` — never from wall-clock entropy
or process-global RNG state.  Two runs of the same sweep back off
identically; the jitter exists to decorrelate *different tasks'* retry
storms, not to randomise a single task's schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "TaskFailure", "failure_signature"]

#: Matches runner._SEED_SPACE; kept local to avoid an import cycle.
_SEED_SPACE = 2 ** 63


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt: what happened and whether retrying can help."""

    #: "exception" | "timeout" | "worker-lost"
    kind: str
    #: Traceback text for exceptions, a one-line description otherwise.
    detail: str
    #: Attempt number that produced this failure (1-based).
    attempt: int

    @property
    def transient(self) -> bool:
        """Transient failures get the full retry budget; deterministic
        in-task exceptions fail fast on a repeated signature instead."""
        return self.kind in ("timeout", "worker-lost")

    @property
    def signature(self) -> str:
        return failure_signature(self.kind, self.detail)


def failure_signature(kind: str, detail: str) -> str:
    """Stable identity of a failure for repeat detection.

    For exceptions the last non-empty traceback line (``ValueError:
    boom``) identifies the failure; file/line noise above it may drift
    between attempts (e.g. a retry wrapper) without changing what went
    wrong.  Timeouts and lost workers collapse onto their kind.
    """
    if kind != "exception":
        return kind
    lines = [line.strip() for line in detail.splitlines() if line.strip()]
    return f"exception:{lines[-1] if lines else detail.strip()}"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry, timeout, and deterministic-backoff configuration.

    ``retries`` is the number of *additional* attempts after the first,
    so a task runs at most ``retries + 1`` times.  ``timeout_s`` bounds
    one attempt's wall time and is enforced on the process-pool path
    (``workers > 1``), where a hung worker can be killed; the serial
    in-process path cannot preempt a running task and documents the
    limitation rather than pretending otherwise.
    """

    retries: int = 0
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got "
                             f"{self.timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be non-negative")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before re-running *key* after failed attempt *attempt*.

        Exponential (base * 2^(attempt-1)) capped at ``backoff_cap_s``,
        scaled by a deterministic jitter factor in [0.5, 1.5) derived
        from the policy seed, the task key, and the attempt number.
        """
        from .runner import derive_seed  # late: avoid import cycle

        base = min(self.backoff_base_s * (2 ** (attempt - 1)),
                   self.backoff_cap_s)
        jitter = derive_seed(self.seed, f"backoff:{key}:{attempt}")
        return base * (0.5 + jitter / _SEED_SPACE)

    def should_retry(self, failure: TaskFailure,
                     previous: Optional[TaskFailure]) -> bool:
        """Decide whether *failure* earns another attempt.

        Budget exhausted -> no.  Transient failures (timeout, lost
        worker) -> yes.  In-task exceptions -> once, and only while the
        signature keeps changing: the same exception twice in a row is
        deterministic and fails fast.
        """
        if failure.attempt > self.retries:
            return False
        if failure.transient:
            return True
        return previous is None or previous.signature != failure.signature
