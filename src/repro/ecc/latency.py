"""Latency and area model of the hardware BCH accelerator.

Section 4.1.1 of the paper measures a software BCH decoder at 0.1–1 s per
page — unusable — and therefore designs an accelerator: a Berlekamp engine
plus a 16-way parallel Chien-search engine running on a 100 MHz in-order
embedded core with parallelised finite-field arithmetic, at a cost of about
1 mm^2 (including a 2^15-entry field lookup table and 16 finite-field
adders/multipliers).  Figure 6(a) reports the resulting decode latency,
split into syndrome-computation and Chien-search components, for 2–11
correctable errors; Table 3 budgets 58–400 us for BCH in the system
simulations.

This module reproduces that model analytically:

* syndrome computation streams the n-bit codeword through ``lanes``
  parallel syndrome accumulators, 8 bits per cycle — its cost steps up each
  time another group of ``lanes`` syndromes (2t total) is needed;
* the Chien search sweeps all n candidate positions through ``engines``
  parallel evaluators, with per-position work growing with the locator
  degree (about (t+1)/2 cycles per position per engine);
* Berlekamp–Massey cost is retained but small (the paper: "Berlekamp
  algorithm overhead is insignificant and was omitted from the figure").

The constants are calibrated so the modelled totals land inside the paper's
58–400 us envelope with the published shape (near-linear growth in t,
Chien-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AcceleratorConfig",
    "DecodeLatency",
    "BCHLatencyModel",
    "AreaModel",
]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Microarchitectural parameters of the BCH accelerator.

    Defaults correspond to the paper's design point: a 100 MHz embedded
    core, 16 Chien-search engines, 16 syndrome lanes, operating on the
    shortened m=15 code that covers a 2KB page.
    """

    clock_hz: float = 100e6
    chien_engines: int = 16
    syndrome_lanes: int = 16
    bits_per_syndrome_cycle: int = 8
    codeword_bits: int = (1 << 15) - 1  # parent code length for 2KB pages
    max_t: int = 12                     # controller hardware limit

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if min(self.chien_engines, self.syndrome_lanes,
               self.bits_per_syndrome_cycle, self.codeword_bits) < 1:
            raise ValueError("accelerator resources must be >= 1")


@dataclass(frozen=True)
class DecodeLatency:
    """Decode latency broken into the Figure 6(a) components (microseconds)."""

    syndrome_us: float
    berlekamp_us: float
    chien_us: float

    @property
    def total_us(self) -> float:
        return self.syndrome_us + self.berlekamp_us + self.chien_us

    @property
    def total_s(self) -> float:
        return self.total_us * 1e-6


class BCHLatencyModel:
    """Analytical decode/encode latency for the programmable controller.

    The model is evaluated once per (t) by the system simulator and cached
    by callers; it is purely functional.
    """

    def __init__(self, config: AcceleratorConfig | None = None):
        self.config = config or AcceleratorConfig()

    # -- component latencies -------------------------------------------------

    def syndrome_us(self, t: int) -> float:
        """Syndrome computation time for a t-error-correcting decode.

        2t syndromes are computed in groups of ``syndrome_lanes``; each group
        requires one streaming pass over the codeword at
        ``bits_per_syndrome_cycle`` bits per cycle.
        """
        self._check_t(t, allow_beyond_hw=True)
        cfg = self.config
        groups = -(-2 * t // cfg.syndrome_lanes)  # ceil division
        cycles_per_pass = cfg.codeword_bits / cfg.bits_per_syndrome_cycle
        return groups * cycles_per_pass / cfg.clock_hz * 1e6

    def berlekamp_us(self, t: int) -> float:
        """Berlekamp–Massey time: O(t^2) field operations, tiny in practice."""
        self._check_t(t, allow_beyond_hw=True)
        # ~4 field ops per (i, j) iteration pair on the accelerated datapath.
        cycles = 4.0 * t * t
        return cycles / self.config.clock_hz * 1e6

    def chien_us(self, t: int) -> float:
        """Chien-search time: n positions over ``chien_engines`` evaluators.

        Evaluating a degree-t locator costs about (t + 1) / 2 cycles per
        position on the two-term-per-cycle datapath.
        """
        self._check_t(t, allow_beyond_hw=True)
        cfg = self.config
        positions_per_engine = cfg.codeword_bits / cfg.chien_engines
        cycles = positions_per_engine * (t + 1) / 2.0
        return cycles / cfg.clock_hz * 1e6

    # -- aggregate interfaces --------------------------------------------------

    def decode_latency(self, t: int) -> DecodeLatency:
        """Full decode latency for code strength ``t`` (Figure 6(a) point)."""
        if t == 0:
            return DecodeLatency(0.0, 0.0, 0.0)
        return DecodeLatency(
            syndrome_us=self.syndrome_us(t),
            berlekamp_us=self.berlekamp_us(t),
            chien_us=self.chien_us(t),
        )

    def decode_us(self, t: int) -> float:
        """Scalar decode latency used by the system timing model."""
        return self.decode_latency(t).total_us

    def encode_us(self, t: int) -> float:
        """Systematic encode: one streaming division pass over the page."""
        if t == 0:
            return 0.0
        self._check_t(t, allow_beyond_hw=True)
        cfg = self.config
        cycles = cfg.codeword_bits / cfg.bits_per_syndrome_cycle
        return cycles / cfg.clock_hz * 1e6

    def figure_6a_series(self, t_values: range | list[int] | None = None
                         ) -> list[tuple[int, DecodeLatency]]:
        """The (t, latency) series plotted in Figure 6(a): t = 2..11."""
        if t_values is None:
            t_values = range(2, 12)
        return [(t, self.decode_latency(t)) for t in t_values]

    def _check_t(self, t: int, allow_beyond_hw: bool = False) -> None:
        if t < 0:
            raise ValueError(f"code strength t must be >= 0, got {t}")
        if not allow_beyond_hw and t > self.config.max_t:
            raise ValueError(
                f"t={t} exceeds the controller hardware limit "
                f"max_t={self.config.max_t}"
            )


@dataclass(frozen=True)
class AreaModel:
    """Die-area accounting for the accelerator (section 4.1.1).

    The paper's design — a 2^15-entry finite-field lookup table plus 16
    finite-field adder/multiplier pairs and the CRC32 block — comes to about
    1 mm^2; the CRC engine is explicitly "negligible".
    """

    lookup_table_entries: int = 1 << 15
    field_operator_pairs: int = 16
    lookup_table_mm2: float = 0.55
    per_operator_pair_mm2: float = 0.025
    control_mm2: float = 0.05
    crc_mm2: float = 0.002

    @property
    def total_mm2(self) -> float:
        return (
            self.lookup_table_mm2
            + self.field_operator_pairs * self.per_operator_pair_mm2
            + self.control_mm2
            + self.crc_mm2
        )
