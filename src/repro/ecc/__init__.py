"""Error-correction substrate: GF(2^m), BCH codec, CRC32, accelerator model.

This package implements the coding machinery behind the paper's
programmable Flash memory controller (section 4.1): a real binary BCH
encoder/decoder with variable correction strength, the CRC32 detector that
guards against BCH false positives, and the latency/area model of the
hardware accelerator the paper designs (Figure 6(a)).
"""

from .galois import GF2m, GF2Poly, GFPoly, PRIMITIVE_POLYNOMIALS
from .bch import (
    BCHCode,
    BCHDecodeFailure,
    BCHDecodeResult,
    BCHParameters,
    design_code_for_page,
    parity_bits_required,
    parity_bytes_required,
)
from .crc import Crc32, crc32, crc32_bitwise, CRC32_POLYNOMIAL
from .latency import AcceleratorConfig, AreaModel, BCHLatencyModel, DecodeLatency

__all__ = [
    "GF2m",
    "GF2Poly",
    "GFPoly",
    "PRIMITIVE_POLYNOMIALS",
    "BCHCode",
    "BCHDecodeFailure",
    "BCHDecodeResult",
    "BCHParameters",
    "design_code_for_page",
    "parity_bits_required",
    "parity_bytes_required",
    "Crc32",
    "crc32",
    "crc32_bitwise",
    "CRC32_POLYNOMIAL",
    "AcceleratorConfig",
    "AreaModel",
    "BCHLatencyModel",
    "DecodeLatency",
]
