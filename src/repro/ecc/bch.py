"""Binary BCH encoder/decoder (Berlekamp–Massey + Chien search).

The paper's programmable Flash memory controller (section 4.1) uses
t-error-correcting BCH codes over 2KB Flash pages with ``t`` programmable
from 1 to 12.  This module is a complete, functional implementation of that
codec:

* :class:`BCHCode` — a (possibly shortened) binary BCH code with parameters
  ``(n = 2^m - 1, k, t)``, systematic encoding via generator-polynomial
  division, and full hard-decision decoding: syndrome computation,
  Berlekamp–Massey error-locator synthesis, and Chien search root finding.
* :func:`design_code_for_page` — pick the smallest field degree ``m`` that
  fits a Flash page payload, mirroring the paper's check-bit budget
  (``n - k >= m * t``; for 2KB pages ``m = 15`` and 12-bit correction costs
  at most 23 bytes of the 64-byte spare area).

Decoding failure is reported, never silently mis-corrected: if the Chien
search finds fewer roots than the locator degree, :class:`BCHDecodeFailure`
is raised (the caller is expected to combine BCH with the CRC from
:mod:`repro.ecc.crc`, as the controller does, to catch false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .galois import GF2m, GF2Poly, GFPoly

__all__ = [
    "BCHParameters",
    "BCHDecodeResult",
    "BCHDecodeFailure",
    "BCHCode",
    "design_code_for_page",
    "parity_bits_required",
    "parity_bytes_required",
]


class BCHDecodeFailure(Exception):
    """Raised when the decoder detects more errors than it can correct."""


@dataclass(frozen=True)
class BCHParameters:
    """Static parameters of a (shortened) binary BCH code.

    Attributes
    ----------
    m: field degree; the parent code has block length ``2^m - 1``.
    t: designed error-correction capability in bits.
    n: block length in bits (after shortening, if any).
    k: message length in bits (after shortening).
    parity_bits: ``n - k``, the generator polynomial degree.
    shortening: number of message bits removed from the parent code.
    """

    m: int
    t: int
    n: int
    k: int
    parity_bits: int
    shortening: int

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    @property
    def parity_bytes(self) -> int:
        """Parity overhead rounded up to whole bytes (spare-area budget)."""
        return (self.parity_bits + 7) // 8


def parity_bits_required(m: int, t: int) -> int:
    """Upper bound ``m * t`` on parity bits for a t-error-correcting code.

    The exact generator degree can be slightly smaller when conjugacy
    classes of consecutive roots coincide; the paper budgets with the bound.
    """
    return m * t


def parity_bytes_required(m: int, t: int) -> int:
    """Parity overhead in bytes for the ``m * t`` bound."""
    return (parity_bits_required(m, t) + 7) // 8


class BCHCode:
    """A t-error-correcting binary BCH code, optionally shortened.

    Parameters
    ----------
    m:
        Field degree.  The parent block length is ``n_parent = 2^m - 1``.
    t:
        Designed number of correctable bit errors (``t >= 1``).
    data_bits:
        Message length in bits.  If omitted, the full parent message length
        ``k_parent`` is used.  If smaller, the code is *shortened* by fixing
        the leading message bits to zero — exactly how a 2KB-page code is
        carved out of the m=15 parent code.
    """

    def __init__(self, m: int, t: int, data_bits: int | None = None):
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        self.field = GF2m(m)
        self.m = m
        self.t = t
        self._n_parent = self.field.size  # 2^m - 1

        self.generator = self._build_generator()
        parity = self.generator.degree
        k_parent = self._n_parent - parity
        if k_parent <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) has no message bits "
                f"(parity {parity} >= block {self._n_parent})"
            )
        if data_bits is None:
            data_bits = k_parent
        if data_bits < 1:
            raise ValueError("data_bits must be positive")
        if data_bits > k_parent:
            raise ValueError(
                f"data_bits={data_bits} exceeds parent message length "
                f"{k_parent} for BCH(m={m}, t={t}); use a larger m"
            )
        shortening = k_parent - data_bits
        self.params = BCHParameters(
            m=m,
            t=t,
            n=self._n_parent - shortening,
            k=data_bits,
            parity_bits=parity,
            shortening=shortening,
        )

    # -- construction --------------------------------------------------------

    def _build_generator(self) -> GF2Poly:
        """Generator polynomial: lcm of minimal polynomials of alpha^1..alpha^2t."""
        generator = GF2Poly(0b1)
        seen: set[GF2Poly] = set()
        for power in range(1, 2 * self.t + 1):
            minimal = self.field.minimal_polynomial(self.field.alpha_pow(power))
            if minimal in seen:
                continue
            seen.add(minimal)
            generator = generator.mul(minimal)
        return generator

    # -- encoding ------------------------------------------------------------

    def encode_bits(self, message: int) -> int:
        """Systematically encode a ``k``-bit message (int bit-vector).

        Bit ``i`` of ``message`` is message bit ``i``.  The returned codeword
        has the parity bits in the low ``parity_bits`` positions and the
        message shifted above them, so ``codeword >> parity_bits == message``.
        """
        if message < 0 or message.bit_length() > self.params.k:
            raise ValueError(
                f"message must fit in k={self.params.k} bits, "
                f"got {message.bit_length()} bits"
            )
        shifted = GF2Poly(message << self.params.parity_bits)
        remainder = shifted.mod(self.generator)
        return shifted.bits ^ remainder.bits

    def encode(self, data: bytes) -> tuple[bytes, bytes]:
        """Encode a byte payload; returns ``(data, parity_bytes)``.

        Convenience wrapper used by the Flash controller: the payload is
        stored unmodified in the page data area and the parity lands in the
        spare area.
        """
        message = int.from_bytes(data, "little")
        if len(data) * 8 > self.params.k:
            raise ValueError(
                f"payload of {len(data)} bytes exceeds k={self.params.k} bits"
            )
        codeword = self.encode_bits(message)
        parity = codeword & ((1 << self.params.parity_bits) - 1)
        return data, parity.to_bytes(self.params.parity_bytes, "little")

    # -- decoding ------------------------------------------------------------

    def syndromes(self, received: int) -> List[int]:
        """Evaluate the received word at alpha^1 .. alpha^2t.

        A zero syndrome vector certifies (up to the code's guarantees) an
        error-free word.  Shortening does not change syndrome computation
        because the removed positions are zeros.
        """
        positions = [i for i in range(received.bit_length()) if (received >> i) & 1]
        result = []
        for power in range(1, 2 * self.t + 1):
            syndrome = 0
            for position in positions:
                syndrome ^= self.field.alpha_pow(position * power)
            result.append(syndrome)
        return result

    def _berlekamp_massey(self, syndromes: Sequence[int]) -> GFPoly:
        """Synthesise the error-locator polynomial sigma(x).

        Standard Berlekamp–Massey iteration over 2t syndromes; returns
        sigma with sigma(0) = 1 and degree equal to the number of errors
        (when that number is <= t).
        """
        field = self.field
        sigma = GFPoly(field, [1])
        prev_sigma = GFPoly(field, [1])
        prev_discrepancy = 1
        length = 0
        shift = 1
        for step, syndrome in enumerate(syndromes):
            # Discrepancy: next syndrome predicted vs observed.
            discrepancy = syndrome
            for j in range(1, length + 1):
                if j < len(sigma.coeffs) and step - j >= 0:
                    discrepancy ^= field.mul(sigma.coeffs[j], syndromes[step - j])
            if discrepancy == 0:
                shift += 1
                continue
            correction = prev_sigma.scale(
                field.div(discrepancy, prev_discrepancy)
            ).shift(shift)
            candidate = sigma.add(correction)
            if 2 * length <= step:
                prev_sigma, sigma = sigma, candidate
                prev_discrepancy = discrepancy
                length = step + 1 - length
                shift = 1
            else:
                sigma = candidate
                shift += 1
        return sigma

    def _chien_search(self, sigma: GFPoly, word_bits: int) -> List[int]:
        """Find error positions: i such that sigma(alpha^{-i}) = 0.

        Restricting the sweep to ``word_bits`` positions implements the
        shortened code — a root pointing into the shortened (always-zero)
        prefix is a decoding failure, which the caller detects by comparing
        root count with the locator degree.
        """
        roots = []
        for position in range(word_bits):
            if sigma.evaluate(self.field.alpha_pow(-position)) == 0:
                roots.append(position)
        return roots

    def decode_bits(self, received: int) -> "BCHDecodeResult":
        """Decode an ``n``-bit received word (int bit-vector).

        Returns the corrected codeword and error positions.  Raises
        :class:`BCHDecodeFailure` if the error pattern is detectably
        uncorrectable (locator degree > t, or root count mismatch).
        """
        if received < 0 or received.bit_length() > self.params.n:
            raise ValueError(
                f"received word must fit in n={self.params.n} bits"
            )
        syndrome_vector = self.syndromes(received)
        if not any(syndrome_vector):
            return BCHDecodeResult(
                codeword=received, error_positions=(), corrected=0
            )
        sigma = self._berlekamp_massey(syndrome_vector)
        num_errors = sigma.degree
        if num_errors > self.t:
            raise BCHDecodeFailure(
                f"error locator degree {num_errors} exceeds t={self.t}"
            )
        roots = self._chien_search(sigma, self.params.n)
        if len(roots) != num_errors:
            raise BCHDecodeFailure(
                f"Chien search found {len(roots)} roots for a degree-"
                f"{num_errors} locator; more than t={self.t} errors present"
            )
        corrected = received
        for position in roots:
            corrected ^= 1 << position
        if any(self.syndromes(corrected)):
            raise BCHDecodeFailure("correction did not zero the syndromes")
        return BCHDecodeResult(
            codeword=corrected,
            error_positions=tuple(sorted(roots)),
            corrected=len(roots),
        )

    def decode(self, data: bytes, parity: bytes) -> tuple[bytes, int]:
        """Decode a byte payload with its spare-area parity.

        Returns ``(corrected_data, num_corrected_bits)``.  Raises
        :class:`BCHDecodeFailure` when uncorrectable.
        """
        message = int.from_bytes(data, "little")
        parity_value = int.from_bytes(parity, "little")
        received = (message << self.params.parity_bits) | parity_value
        result = self.decode_bits(received)
        corrected_message = result.codeword >> self.params.parity_bits
        return (
            corrected_message.to_bytes(len(data), "little"),
            result.corrected,
        )

    def extract_message(self, codeword: int) -> int:
        """Strip parity from a (corrected) codeword."""
        return codeword >> self.params.parity_bits

    def __repr__(self) -> str:
        p = self.params
        return f"BCHCode(m={p.m}, t={p.t}, n={p.n}, k={p.k})"


@dataclass(frozen=True)
class BCHDecodeResult:
    """Outcome of a successful BCH decode."""

    codeword: int
    error_positions: tuple[int, ...]
    corrected: int


def design_code_for_page(page_bytes: int, t: int) -> BCHCode:
    """Construct the smallest-field shortened BCH code covering a page.

    Chooses the minimal ``m`` such that the parent code's message length
    ``(2^m - 1) - m*t`` holds ``page_bytes * 8`` data bits, then shortens to
    exactly the page size.  For the paper's 2KB page and t <= 12 this yields
    ``m = 15`` and at most 23 parity bytes — matching section 4.1's budget
    of 60 spare bytes for BCH after CRC32 takes 4.
    """
    data_bits = page_bytes * 8
    for m in range(3, 17):
        parent_n = (1 << m) - 1
        if parent_n - parity_bits_required(m, t) >= data_bits:
            return BCHCode(m, t, data_bits=data_bits)
    raise ValueError(
        f"no supported field degree fits page_bytes={page_bytes}, t={t}"
    )
