"""Finite-field arithmetic over GF(2^m).

NAND Flash error correction in the reproduced paper uses binary BCH codes,
which are defined over an extension field GF(2^m).  This module provides a
complete, self-contained implementation of that arithmetic:

* :class:`GF2m` — the field itself, built from a primitive polynomial, with
  log/antilog tables for O(1) multiplication, division, inversion and
  exponentiation.
* :class:`GF2Poly` — dense polynomials over GF(2) (bit-packed in an ``int``),
  used to build BCH generator polynomials and perform systematic encoding.
* :class:`GFPoly` — polynomials with coefficients in GF(2^m), used by the
  Berlekamp–Massey and Chien-search decoding stages.

The implementation favours clarity over raw speed; pages are 2KB and the
simulator only encodes/decodes when an experiment genuinely needs functional
coding, so Python-level arithmetic is acceptable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "PRIMITIVE_POLYNOMIALS",
    "GF2m",
    "GF2Poly",
    "GFPoly",
]

# Primitive polynomials over GF(2), one per field degree m.  Each entry is the
# polynomial's bit representation; bit i set means the x^i term is present.
# E.g. m=4 -> 0b10011 = x^4 + x + 1.  These are the standard minimal-weight
# primitive polynomials used throughout the coding literature.
PRIMITIVE_POLYNOMIALS = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0b100011101,          # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}


class GF2m:
    """The finite field GF(2^m) realised with log/antilog tables.

    Elements are represented as integers in ``[0, 2^m - 1]`` whose bits are
    the coefficients of the element's polynomial representation.  ``alpha``
    (the primitive element) is ``2``, i.e. the polynomial ``x``.

    Parameters
    ----------
    m:
        Field degree.  Must be a key of :data:`PRIMITIVE_POLYNOMIALS`.
    primitive_poly:
        Optional override of the defining primitive polynomial (bit form).
    """

    def __init__(self, m: int, primitive_poly: int | None = None):
        if primitive_poly is None:
            if m not in PRIMITIVE_POLYNOMIALS:
                raise ValueError(
                    f"no primitive polynomial on file for m={m}; "
                    f"supported degrees: {sorted(PRIMITIVE_POLYNOMIALS)}"
                )
            primitive_poly = PRIMITIVE_POLYNOMIALS[m]
        if primitive_poly.bit_length() != m + 1:
            raise ValueError(
                f"primitive polynomial must have degree {m}, got degree "
                f"{primitive_poly.bit_length() - 1}"
            )
        self.m = m
        self.primitive_poly = primitive_poly
        self.order = 1 << m          # |GF(2^m)| = 2^m
        self.size = self.order - 1   # multiplicative group order = 2^m - 1

        # Build exponential (antilog) and logarithm tables by repeatedly
        # multiplying by alpha (= x) and reducing modulo the primitive poly.
        self._exp: List[int] = [0] * (2 * self.size)
        self._log: List[int] = [0] * self.order
        value = 1
        for power in range(self.size):
            if power > 0 and value == 1:
                # alpha's multiplicative order divides `power` < 2^m - 1:
                # the polynomial is irreducible at best, but not primitive.
                raise ValueError(
                    f"polynomial {primitive_poly:#b} is not primitive "
                    f"for m={m} (alpha has order {power})"
                )
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.order:
                value ^= primitive_poly
        if value != 1:
            raise ValueError(
                f"polynomial {primitive_poly:#b} is not primitive for m={m}"
            )
        # Duplicate the table so exp(i + j) never needs an explicit modulo.
        for power in range(self.size, 2 * self.size):
            self._exp[power] = self._exp[power - self.size]

    # -- element operations -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (== subtraction): bitwise XOR."""
        return a ^ b

    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log tables."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises on division by zero."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[(self._log[a] - self._log[b]) % self.size]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.size - self._log[a]]

    def pow(self, a: int, exponent: int) -> int:
        """Raise element ``a`` to an (arbitrary-sign) integer power."""
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        return self._exp[(self._log[a] * exponent) % self.size]

    def alpha_pow(self, exponent: int) -> int:
        """Return alpha^exponent, the workhorse of BCH root bookkeeping."""
        return self._exp[exponent % self.size]

    def log(self, a: int) -> int:
        """Discrete log base alpha."""
        if a == 0:
            raise ValueError("log(0) is undefined")
        return self._log[a]

    def elements(self) -> Iterable[int]:
        """Iterate over all field elements, 0 first then alpha^0..alpha^(n-1)."""
        yield 0
        for power in range(self.size):
            yield self._exp[power]

    # -- minimal polynomials (needed for BCH generator construction) --------

    def minimal_polynomial(self, element: int) -> "GF2Poly":
        """Minimal polynomial over GF(2) of ``element``.

        Computed as the product of ``(x - c)`` over the conjugacy class
        ``{element, element^2, element^4, ...}``.  The result always has
        coefficients in GF(2) by Galois theory; we assert that.
        """
        if element == 0:
            return GF2Poly(0b10)  # just x
        conjugates = []
        current = element
        while current not in conjugates:
            conjugates.append(current)
            current = self.mul(current, current)
        # Multiply out prod (x + c) with coefficients in GF(2^m).
        poly = GFPoly(self, [1])
        for conjugate in conjugates:
            poly = poly.mul(GFPoly(self, [conjugate, 1]))
        bits = 0
        for degree, coeff in enumerate(poly.coeffs):
            if coeff not in (0, 1):
                raise AssertionError(
                    "minimal polynomial has a coefficient outside GF(2); "
                    "field construction is inconsistent"
                )
            if coeff:
                bits |= 1 << degree
        return GF2Poly(bits)

    def __repr__(self) -> str:
        return f"GF2m(m={self.m}, primitive_poly={self.primitive_poly:#b})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))


class GF2Poly:
    """A dense polynomial over GF(2), bit-packed into a Python int.

    Bit ``i`` of :attr:`bits` is the coefficient of ``x^i``.  Python's
    arbitrary-precision integers make XOR-based polynomial arithmetic both
    simple and fast, which matters because BCH generator polynomials for
    2KB pages reach degree ~180.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0):
        if bits < 0:
            raise ValueError("polynomial bits must be non-negative")
        self.bits = bits

    @classmethod
    def from_coefficients(cls, coeffs: Sequence[int]) -> "GF2Poly":
        """Build from a low-to-high coefficient sequence of 0/1 values."""
        bits = 0
        for degree, coeff in enumerate(coeffs):
            if coeff not in (0, 1):
                raise ValueError("GF(2) coefficients must be 0 or 1")
            if coeff:
                bits |= 1 << degree
        return cls(bits)

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return self.bits.bit_length() - 1

    def is_zero(self) -> bool:
        return self.bits == 0

    def add(self, other: "GF2Poly") -> "GF2Poly":
        return GF2Poly(self.bits ^ other.bits)

    sub = add

    def mul(self, other: "GF2Poly") -> "GF2Poly":
        """Carry-less multiplication."""
        a, b = self.bits, other.bits
        result = 0
        shift = 0
        while b:
            if b & 1:
                result ^= a << shift
            b >>= 1
            shift += 1
        return GF2Poly(result)

    def divmod(self, divisor: "GF2Poly") -> tuple["GF2Poly", "GF2Poly"]:
        """Polynomial long division returning (quotient, remainder)."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = self.bits
        quotient = 0
        divisor_bits = divisor.bits
        divisor_degree = divisor.degree
        while remainder.bit_length() - 1 >= divisor_degree and remainder:
            shift = (remainder.bit_length() - 1) - divisor_degree
            remainder ^= divisor_bits << shift
            quotient |= 1 << shift
        return GF2Poly(quotient), GF2Poly(remainder)

    def mod(self, divisor: "GF2Poly") -> "GF2Poly":
        return self.divmod(divisor)[1]

    def lcm(self, other: "GF2Poly") -> "GF2Poly":
        """Least common multiple via gcd."""
        gcd = self.gcd(other)
        quotient, remainder = self.divmod(gcd)
        if not remainder.is_zero():
            raise AssertionError("gcd does not divide its operand")
        return quotient.mul(other)

    def gcd(self, other: "GF2Poly") -> "GF2Poly":
        a, b = self, other
        while not b.is_zero():
            a, b = b, a.mod(b)
        return a

    def evaluate(self, field: GF2m, point: int) -> int:
        """Evaluate at ``point`` in GF(2^m) (Horner's rule)."""
        result = 0
        for degree in range(self.degree, -1, -1):
            result = field.mul(result, point)
            if (self.bits >> degree) & 1:
                result ^= 1
        return result

    def coefficients(self) -> List[int]:
        """Return low-to-high coefficient list (empty for zero poly)."""
        return [(self.bits >> i) & 1 for i in range(self.bits.bit_length())]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2Poly) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("GF2Poly", self.bits))

    def __repr__(self) -> str:
        if self.is_zero():
            return "GF2Poly(0)"
        terms = [
            ("1" if i == 0 else "x" if i == 1 else f"x^{i}")
            for i in range(self.bits.bit_length())
            if (self.bits >> i) & 1
        ]
        return "GF2Poly(" + " + ".join(reversed(terms)) + ")"


class GFPoly:
    """A polynomial with coefficients in GF(2^m), low-order first.

    Used for the decoder-side objects of BCH decoding: the error-locator
    polynomial produced by Berlekamp–Massey and the evaluation sweep of the
    Chien search.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF2m, coeffs: Sequence[int] | None = None):
        self.field = field
        trimmed = list(coeffs or [])
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        self.coeffs = trimmed

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def copy(self) -> "GFPoly":
        return GFPoly(self.field, list(self.coeffs))

    def add(self, other: "GFPoly") -> "GFPoly":
        self._check_field(other)
        length = max(len(self.coeffs), len(other.coeffs))
        coeffs = [0] * length
        for i, c in enumerate(self.coeffs):
            coeffs[i] ^= c
        for i, c in enumerate(other.coeffs):
            coeffs[i] ^= c
        return GFPoly(self.field, coeffs)

    def scale(self, scalar: int) -> "GFPoly":
        return GFPoly(self.field, [self.field.mul(c, scalar) for c in self.coeffs])

    def shift(self, amount: int) -> "GFPoly":
        """Multiply by x^amount."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        if self.is_zero():
            return self.copy()
        return GFPoly(self.field, [0] * amount + self.coeffs)

    def mul(self, other: "GFPoly") -> "GFPoly":
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return GFPoly(self.field, [])
        coeffs = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    coeffs[i + j] ^= self.field.mul(a, b)
        return GFPoly(self.field, coeffs)

    def evaluate(self, point: int) -> int:
        """Horner evaluation at a field element."""
        result = 0
        for coeff in reversed(self.coeffs):
            result = self.field.mul(result, point) ^ coeff
        return result

    def derivative(self) -> "GFPoly":
        """Formal derivative; in characteristic 2 even-power terms vanish."""
        coeffs = [
            self.coeffs[i] if i % 2 == 1 else 0
            for i in range(1, len(self.coeffs))
        ]
        return GFPoly(self.field, coeffs)

    def _check_field(self, other: "GFPoly") -> None:
        if other.field != self.field:
            raise ValueError("polynomials belong to different fields")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFPoly)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __repr__(self) -> str:
        return f"GFPoly(m={self.field.m}, coeffs={self.coeffs})"
