"""CRC-32 error detection (IEEE 802.3 polynomial).

Section 4.1.2 of the paper pairs the BCH corrector with a CRC32 checker
because BCH codes cannot always *detect* error patterns heavier than their
design strength ``t`` — the Chien search can return a full set of bogus
roots (a false positive).  The controller therefore stores a CRC32 of each
page's payload in the spare area (4 of the 64 bytes) and validates it after
BCH correction.

Both a bitwise reference implementation and the table-driven form used by
hardware/performance code are provided; tests cross-check them against each
other and against known vectors.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "CRC32_POLYNOMIAL",
    "CRC32_POLYNOMIAL_REFLECTED",
    "crc32",
    "crc32_bitwise",
    "Crc32",
]

# IEEE 802.3 generator polynomial:
# x^32+x^26+x^23+x^22+x^16+x^12+x^11+x^10+x^8+x^7+x^5+x^4+x^2+x+1
CRC32_POLYNOMIAL = 0x04C11DB7
# Bit-reflected form used by the common LSB-first implementation.
CRC32_POLYNOMIAL_REFLECTED = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLYNOMIAL_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """Table-driven CRC-32 (same convention as ``zlib.crc32``).

    ``initial`` allows incremental computation over chunked payloads:
    ``crc32(b"ab") == crc32(b"b", crc32(b"a"))``.
    """
    crc = initial ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_bitwise(data: bytes, initial: int = 0) -> int:
    """Bit-at-a-time reference CRC-32; slow but obviously correct."""
    crc = initial ^ 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLYNOMIAL_REFLECTED
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


class Crc32:
    """Incremental CRC-32 accumulator with the spare-area byte layout.

    The Flash controller computes the CRC while streaming a page through
    the DMA engine; this class mirrors that incremental usage.
    """

    #: Spare-area bytes consumed by the checksum (section 4.1: "The CRC32
    #: code needs 4 bytes, leaving 60 bytes for BCH").
    SPARE_BYTES = 4

    def __init__(self) -> None:
        self._crc = 0xFFFFFFFF

    def update(self, data: bytes) -> "Crc32":
        crc = self._crc
        for byte in data:
            crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
        self._crc = crc
        return self

    @property
    def value(self) -> int:
        return self._crc ^ 0xFFFFFFFF

    def digest(self) -> bytes:
        """Checksum as the 4 little-endian spare-area bytes."""
        return self.value.to_bytes(self.SPARE_BYTES, "little")

    @classmethod
    def check(cls, data: bytes, digest: bytes) -> bool:
        """Validate a payload against its stored spare-area digest."""
        return cls().update(data).digest() == digest
