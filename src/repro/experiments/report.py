"""Run the full evaluation and emit a consolidated markdown report.

``python -m repro report`` (or :func:`generate_report`) regenerates every
figure at a chosen scale and renders one document with all the series —
the data behind EXPERIMENTS.md, reproducible in a single command.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from .fig1b_gc import run_gc_overhead_sweep
from .fig4_split import run_split_sweep
from .fig6_ecc import run_decode_latency_series, run_tolerable_cycles_series
from .fig7_density import run_density_partition_suite
from .fig9_power import run_power_comparison
from .fig10_ecc_throughput import run_ecc_throughput_sweep
from .fig11_reconfig import run_reconfig_breakdown
from .fig12_lifetime import average_improvement, run_lifetime_comparison

__all__ = ["ReportScale", "generate_report", "SECTIONS"]


@dataclass(frozen=True)
class ReportScale:
    """Knobs trading report fidelity for runtime."""

    scale_divisor: int = 64
    trace_records: int = 120_000
    aging_blocks: int = 8
    aging_frames: int = 4

    @classmethod
    def quick(cls) -> "ReportScale":
        return cls(scale_divisor=128, trace_records=40_000,
                   aging_blocks=8, aging_frames=4)

    @classmethod
    def full(cls) -> "ReportScale":
        return cls(scale_divisor=32, trace_records=600_000,
                   aging_blocks=16, aging_frames=8)

    def fingerprint(self) -> str:
        """Stable text identity, folded into sweep journal ids so a
        journal written at one scale cannot resume another."""
        return (f"scale={self.scale_divisor}:{self.trace_records}:"
                f"{self.aging_blocks}:{self.aging_frames}")


def _section_fig1b(out: io.StringIO, scale: ReportScale,
                   workers: int = 1) -> None:
    out.write("| used | normalized GC overhead |\n|---|---|\n")
    for point in run_gc_overhead_sweep(
            occupancies=(0.1, 0.3, 0.5, 0.7, 0.8, 0.9),
            flash_blocks=16 if scale.scale_divisor > 64 else 32,
            workers=workers):
        out.write(f"| {point.used_fraction:.0%} "
                  f"| {point.normalized_overhead:.2f} |\n")


def _section_fig4(out: io.StringIO, scale: ReportScale,
                  workers: int = 1) -> None:
    out.write("| flash | unified miss | split miss |\n|---|---|---|\n")
    for point in run_split_sweep(flash_sizes_mb=(128, 384, 640),
                                 scale_divisor=scale.scale_divisor,
                                 num_records=scale.trace_records * 5,
                                 workers=workers):
        out.write(f"| {point.flash_mb_paper_scale}MB "
                  f"| {point.unified_miss_rate:.3%} "
                  f"| {point.split_miss_rate:.3%} |\n")


def _section_fig6(out: io.StringIO, scale: ReportScale,
                  workers: int = 1) -> None:
    out.write("Decode latency (us): ")
    out.write(", ".join(
        f"t={p.t}:{p.total_us:.0f}"
        for p in run_decode_latency_series((2, 5, 8, 11), workers=workers)))
    out.write("\n\nTolerable W/E cycles at t=10: ")
    series = run_tolerable_cycles_series(t_values=(0, 10), workers=workers)
    out.write(", ".join(f"stdev {frac:.0%}: {points[-1][1]:.2e}"
                        for frac, points in series.items()))
    out.write("\n")


def _section_fig7(out: io.StringIO, scale: ReportScale,
                  workers: int = 1) -> None:
    for series in run_density_partition_suite(
            workloads=("financial2", "websearch1"),
            area_fractions=(0.25, 0.5, 1.0, 2.0), grid_points=41,
            workers=workers):
        out.write(f"\n**{series.workload}** "
                  f"(WSS {series.working_set_mb:.0f}MB): ")
        out.write(", ".join(
            f"{p.die_area_mm2:.0f}mm2->{p.optimal_slc_fraction:.0%} SLC "
            f"@{p.average_latency_us:.0f}us" for p in series.points))
        out.write("\n")


def _section_fig9(out: io.StringIO, scale: ReportScale,
                  workers: int = 1) -> None:
    out.write("| workload | baseline W | flash W | ratio | rel. bw |\n"
              "|---|---|---|---|---|\n")
    for workload in ("dbt2", "specweb99"):
        result = run_power_comparison(
            workload, scale_divisor=scale.scale_divisor,
            num_records=scale.trace_records,
            warmup_records=max(scale.trace_records * 2 // 3, 10_000),
            workers=workers)
        out.write(f"| {workload} | {result.baseline.total_w:.2f} "
                  f"| {result.flash.total_w:.2f} "
                  f"| {result.power_ratio:.2f}x "
                  f"| {result.relative_bandwidth:.2f} |\n")


def _section_fig10(out: io.StringIO, scale: ReportScale,
                   workers: int = 1) -> None:
    out.write("| t | specweb99 | dbt2 |\n|---|---|---|\n")
    sweeps = {
        name: {p.strength: p.relative_bandwidth
               for p in run_ecc_throughput_sweep(
                   name, strengths=(0, 5, 15, 50),
                   scale_divisor=scale.scale_divisor,
                   num_records=max(scale.trace_records // 3, 20_000),
                   workers=workers)}
        for name in ("specweb99", "dbt2")
    }
    for t in (0, 5, 15, 50):
        out.write(f"| {t} | {sweeps['specweb99'][t]:.3f} "
                  f"| {sweeps['dbt2'][t]:.3f} |\n")


def _section_fig11(out: io.StringIO, scale: ReportScale,
                   workers: int = 1) -> None:
    out.write("| workload | code strength | density |\n|---|---|---|\n")
    for row in run_reconfig_breakdown(
            num_blocks=scale.aging_blocks,
            frames_per_block=scale.aging_frames,
            workers=workers):
        out.write(f"| {row.workload} | {row.code_strength_fraction:.0%} "
                  f"| {row.density_fraction:.0%} |\n")


def _section_fig12(out: io.StringIO, scale: ReportScale,
                   workers: int = 1) -> None:
    rows = run_lifetime_comparison(num_blocks=scale.aging_blocks,
                                   frames_per_block=scale.aging_frames,
                                   workers=workers)
    out.write("| workload | gain |\n|---|---|\n")
    for row in rows:
        out.write(f"| {row.workload} | {row.improvement:.1f}x |\n")
    out.write(f"\naverage improvement: **{average_improvement(rows):.1f}x** "
              "(paper: ~20x)\n")


SECTIONS: Dict[str, Callable[..., None]] = {
    "fig1b": _section_fig1b,
    "fig4": _section_fig4,
    "fig6": _section_fig6,
    "fig7": _section_fig7,
    "fig9": _section_fig9,
    "fig10": _section_fig10,
    "fig11": _section_fig11,
    "fig12": _section_fig12,
}

_TITLES = {
    "fig1b": "Figure 1(b) — GC overhead vs occupancy",
    "fig4": "Figure 4 — split vs unified miss rate (dbt2)",
    "fig6": "Figure 6 — BCH latency and tolerable W/E cycles",
    "fig7": "Figure 7 — optimal SLC/MLC partition",
    "fig9": "Figure 9 — power breakdown and bandwidth",
    "fig10": "Figure 10 — throughput vs BCH strength",
    "fig11": "Figure 11 — reconfiguration breakdown",
    "fig12": "Figure 12 — lifetime extension",
}


def generate_report(scale: ReportScale | None = None,
                    sections: List[str] | None = None,
                    workers: int = 1) -> str:
    """Render the evaluation report as markdown.

    ``workers > 1`` fans each section's grid out across processes via
    :func:`repro.parallel.sweep`; the rendered report is byte-identical
    to a serial run (modulo the wall-clock footnotes).
    """
    scale = scale or ReportScale()
    selected = sections or list(SECTIONS)
    unknown = set(selected) - set(SECTIONS)
    if unknown:
        raise KeyError(f"unknown sections: {sorted(unknown)}")
    out = io.StringIO()
    out.write("# repro evaluation report\n")
    out.write(f"\nscale: 1/{scale.scale_divisor} capacities, "
              f"{scale.trace_records} trace records per run\n")
    for name in selected:
        # Orchestration interval timing for the report footnote — this is
        # wall-clock *about* the run, never simulated time, so SIM001 is
        # waived here explicitly (and perf_counter is immune to NTP steps).
        started = time.perf_counter()  # simlint: ignore[SIM001] -- report footnote timing
        out.write(f"\n## {_TITLES[name]}\n\n")
        SECTIONS[name](out, scale, workers=workers)
        elapsed = time.perf_counter() - started  # simlint: ignore[SIM001] -- report footnote timing
        out.write(f"\n_({elapsed:.1f}s)_\n")
    return out.getvalue()
