"""Experiment runners: one module per paper table/figure.

Each module exposes a ``run_*`` function returning structured rows and a
``main()`` that prints the same rows the paper's figure plots.  The
benchmark suite under ``benchmarks/`` wraps these runners with
pytest-benchmark and asserts the paper's qualitative shapes.
"""

from .fig1b_gc import GcPoint, run_gc_overhead_sweep
from .fig4_split import (
    SplitMissPoint,
    run_split_sweep,
    replay_disk_trace,
    PAPER_FLASH_SIZES_MB,
)
from .fig6_ecc import (
    Fig6aPoint,
    run_decode_latency_series,
    run_tolerable_cycles_series,
)
from .fig7_density import Fig7Series, run_density_partition, FIG7_WORKLOADS
from .fig9_power import (
    Fig9Config,
    Fig9Result,
    FIG9_CONFIGS,
    run_power_comparison,
)
from .fig10_ecc_throughput import (
    ThroughputPoint,
    run_ecc_throughput_sweep,
    PAPER_STRENGTHS,
)
from .fig11_reconfig import (
    ReconfigBreakdown,
    run_reconfig_breakdown,
    FIG11_WORKLOADS,
)
from .fig12_lifetime import (
    LifetimeRow,
    run_lifetime_comparison,
    average_improvement,
    FIG12_WORKLOADS,
)

__all__ = [
    "GcPoint",
    "run_gc_overhead_sweep",
    "SplitMissPoint",
    "run_split_sweep",
    "replay_disk_trace",
    "PAPER_FLASH_SIZES_MB",
    "Fig6aPoint",
    "run_decode_latency_series",
    "run_tolerable_cycles_series",
    "Fig7Series",
    "run_density_partition",
    "FIG7_WORKLOADS",
    "Fig9Config",
    "Fig9Result",
    "FIG9_CONFIGS",
    "run_power_comparison",
    "ThroughputPoint",
    "run_ecc_throughput_sweep",
    "PAPER_STRENGTHS",
    "ReconfigBreakdown",
    "run_reconfig_breakdown",
    "FIG11_WORKLOADS",
    "LifetimeRow",
    "run_lifetime_comparison",
    "average_improvement",
    "FIG12_WORKLOADS",
]
