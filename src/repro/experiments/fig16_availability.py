"""Figure 16 (extension): availability vs replication under chaos.

The paper argues a Flash-cached server rides through device-level
trouble (graceful degradation, scrubbing); this experiment asks the
fleet-level question: how much replication does a *cluster* of them
need to ride through server-level trouble?  One fixed
kill→cascade→repair timeline — shard 1 dies mid-run, survivor shard 2
dies later (absorbing and then re-bouncing failover traffic), shard 1
rejoins repaired near the end with a background catch-up sync — is
replayed at replication factors R ∈ {1, 2, 3}, and per R we report the
request accounting split (completed / shed / lost reads / lost writes /
redirected) and the response-time tail.

Expected shape: at R=1 every read in flight on a dying shard is lost —
its only copy's connection died with it.  At R≥2 lost reads drop to
zero: the orchestrator reclassifies each one as a replica retry served
by a surviving sibling, at the price of write fan-out (``arrivals``
counts one op per replica per write) and a slightly deeper redirect
stream.  Repair is visible in the sync columns: the rejoined shard
streams back exactly the keys that moved away while it was dead.

Spawn-safety: one task per replication factor; each worker rebuilds the
whole cluster from scenario primitives and runs it with ``workers=1``
(the nested sweep takes the serial path).  Results are byte-identical
at any outer worker count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence

from ..cluster import ClusterScenario, run_cluster
from ..parallel import SweepResult, SweepTask, sweep

__all__ = ["AvailabilityPoint", "PAPER_REPLICAS", "tasks", "combine",
           "run_availability_sweep", "as_rows"]

#: The figure's axis: replication factors replayed over one timeline.
PAPER_REPLICAS = (1, 2, 3)

#: Timeline fractions of the run: first kill, cascade kill, repair.
KILL_FRACTION = 0.3
CASCADE_FRACTION = 0.6
REJOIN_FRACTION = 0.8


@dataclass(frozen=True)
class AvailabilityPoint:
    """One replication factor's run over the chaos timeline."""

    replicas: int
    requests: int
    planned_ops: int
    completed: int
    shed: int
    lost_reads: int
    lost_writes: int
    redirected: int
    sync_completed: int
    throughput_rps: float
    response_p50_us: float
    response_p95_us: float
    response_p99_us: float


def _availability_task(replicas: int, shards: int, rate_rps: float,
                       duration_s: float, workload: str,
                       footprint_pages: int, queue_depth: int,
                       shed_queue: int, seed: int) -> Dict[str, Any]:
    """Worker entry point: one replication factor = one cluster run."""
    duration_us = duration_s * 1e6
    scenario = ClusterScenario(
        shards=shards, rate_rps=rate_rps, duration_s=duration_s,
        workload=workload, footprint_pages=footprint_pages,
        queue_depth=queue_depth, shed_queue=shed_queue,
        replicas=replicas,
        kill_shard=1, kill_at_us=KILL_FRACTION * duration_us,
        cascade=((2, CASCADE_FRACTION * duration_us),),
        rejoin_at_us=REJOIN_FRACTION * duration_us,
        seed=seed)
    result = run_cluster(scenario, workers=1)
    return {
        "replicas": replicas,
        "requests": result.requests,
        "planned_ops": result.arrivals,
        "completed": result.completed,
        "shed": result.shed,
        "lost_reads": result.lost_reads,
        "lost_writes": result.lost_writes,
        "redirected": result.redirected,
        "sync_completed": result.sync_completed,
        "throughput_rps": result.throughput_rps,
        "response_p50_us": result.response.p50,
        "response_p95_us": result.response.p95,
        "response_p99_us": result.response.p99,
    }


def tasks(
    replicas: Sequence[int] = PAPER_REPLICAS,
    shards: int = 5,
    rate_rps: float = 9000.0,
    duration_s: float = 0.4,
    workload: str = "specweb99",
    footprint_pages: int = 4096,
    queue_depth: int = 4,
    shed_queue: int = 16,
    seed: int = 23,
) -> List[SweepTask]:
    """The Figure 16 axis, one task per replication factor.

    The default fleet of 5 keeps 3 shards live at the darkest moment
    (two simultaneous corpses), so R=3 remains placeable throughout.
    """
    return [SweepTask(key=f"fig16:replicas={r}",
                      fn=_availability_task,
                      kwargs={"replicas": r, "shards": shards,
                              "rate_rps": rate_rps,
                              "duration_s": duration_s,
                              "workload": workload,
                              "footprint_pages": footprint_pages,
                              "queue_depth": queue_depth,
                              "shed_queue": shed_queue, "seed": seed})
            for r in replicas]


def combine(results: Sequence[SweepResult]) -> List[AvailabilityPoint]:
    """Reduce the axis to typed rows, in task order."""
    return [AvailabilityPoint(**result.unwrap()) for result in results]


def run_availability_sweep(
    replicas: Sequence[int] = PAPER_REPLICAS,
    shards: int = 5,
    rate_rps: float = 9000.0,
    duration_s: float = 0.4,
    workload: str = "specweb99",
    footprint_pages: int = 4096,
    queue_depth: int = 4,
    shed_queue: int = 16,
    seed: int = 23,
    workers: int = 1,
) -> List[AvailabilityPoint]:
    """Figure 16 sweep (identical output at any worker count)."""
    return combine(sweep(
        tasks(replicas, shards, rate_rps, duration_s, workload,
              footprint_pages, queue_depth, shed_queue, seed),
        workers=workers))


def as_rows(points: Sequence[AvailabilityPoint]) -> List[Dict[str, Any]]:
    """JSON-ready form of the combined axis."""
    return [asdict(point) for point in points]


def main() -> None:
    print("Figure 16: availability vs replication under "
          "kill→cascade→repair")
    print(f"{'R':>2} {'ops':>6} {'done':>6} {'shed':>5} {'lostR':>5} "
          f"{'lostW':>5} {'redir':>5} {'sync':>5} {'p99 us':>9}")
    for point in run_availability_sweep():
        print(f"{point.replicas:>2} {point.planned_ops:>6} "
              f"{point.completed:>6} {point.shed:>5} "
              f"{point.lost_reads:>5} {point.lost_writes:>5} "
              f"{point.redirected:>5} {point.sync_completed:>5} "
              f"{point.response_p99_us:>9.1f}")


if __name__ == "__main__":
    main()
