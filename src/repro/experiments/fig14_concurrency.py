"""Figure 14 (extension): throughput and tail latency vs concurrency.

The paper's evaluation runs one request at a time; its Flash disk cache,
though, fronts a server with thousands of requests in flight, and the
DDR-NAND SSD literature locates real Flash throughput in channel/plane
interleaving.  This experiment sweeps the event engine
(:mod:`repro.sim.concurrent`) over an outstanding-request window
(queue depth) crossed with NAND channel count, on a deliberately
flash-bound platform (small DRAM, working set resident in Flash), and
reports throughput plus the service/queue-delay percentile split.

Expected shape: throughput grows monotonically along both axes —
queue depth overlaps host/CPU time across requests, channels relieve
NAND contention once the window is deep enough to generate it — while
queue-delay percentiles rise with depth (more in-flight requests per
plane) and fall with channels.

Spawn-safety: one task per (queue_depth, channels) point; each worker
rebuilds workload and platform from primitives.  Every point replays
the identical trace with identical cache behaviour (the engine's
functional path is serial in trace order), so the timing axes are the
only thing that varies — and the combined rows are byte-identical at
any sweep worker count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence

from ..core.hierarchy import build_flash_system
from ..parallel import SweepResult, SweepTask, sweep
from ..sim.concurrent import run_trace_concurrent
from ..workloads.macro import build_workload
from ..workloads.trace import PAGE_BYTES

__all__ = ["ConcurrencyPoint", "PAPER_QUEUE_DEPTHS", "PAPER_CHANNELS",
           "tasks", "combine", "run_concurrency_sweep"]

#: The figure's axes: window sizes x channel counts (planes fixed at 2,
#: a common small-SSD configuration).
PAPER_QUEUE_DEPTHS = (1, 4, 16)
PAPER_CHANNELS = (1, 2, 4)
PLANES = 2


@dataclass(frozen=True)
class ConcurrencyPoint:
    """One (queue depth, channels) cell of the Figure 14 grid."""

    queue_depth: int
    channels: int
    planes: int
    throughput_rps: float
    #: Throughput relative to the serial anchor (qd=1, ch=1).
    speedup: float
    service_p50_us: float
    service_p95_us: float
    service_p99_us: float
    queue_delay_mean_us: float
    queue_delay_p50_us: float
    queue_delay_p95_us: float
    queue_delay_p99_us: float
    channel_utilization: List[float]
    channel_stalls: int


def _concurrency_task(workload: str, queue_depth: int, channels: int,
                      planes: int, scale_divisor: int, num_records: int,
                      seed: int) -> Dict[str, Any]:
    """Worker entry point: one grid cell's metrics."""
    footprint_bytes = int(1.8 * (1 << 30))
    footprint_pages = footprint_bytes // scale_divisor // PAGE_BYTES
    records = build_workload(workload, num_records=num_records, seed=seed,
                             footprint_pages=footprint_pages)
    # Flash-bound platform: DRAM far below the working set so most reads
    # fall through to the Flash tier, whose ops the fabric schedules.
    system = build_flash_system(
        dram_bytes=(64 << 20) // scale_divisor,
        flash_bytes=(2 << 30) // scale_divisor,
    )
    report = run_trace_concurrent(system, records,
                                  queue_depth=queue_depth,
                                  channels=channels, planes=planes)
    queueing = report.queueing
    if queueing is None:
        # Serial anchor (qd=1, ch=1 routes to the legacy engine): no
        # queueing exists at depth 1, so the split degenerates to
        # service = the request latency distribution and zero delay.
        return {
            "queue_depth": queue_depth, "channels": channels,
            "planes": planes,
            "throughput_rps": report.throughput_rps,
            "service_p50_us": 0.0, "service_p95_us": 0.0,
            "service_p99_us": 0.0,
            "queue_delay_mean_us": 0.0, "queue_delay_p50_us": 0.0,
            "queue_delay_p95_us": 0.0, "queue_delay_p99_us": 0.0,
            "channel_utilization": [0.0] * channels,
            "channel_stalls": 0,
        }
    return {
        "queue_depth": queue_depth, "channels": channels, "planes": planes,
        "throughput_rps": report.throughput_rps,
        "service_p50_us": queueing.service_latency.percentile(50.0),
        "service_p95_us": queueing.service_latency.percentile(95.0),
        "service_p99_us": queueing.service_latency.percentile(99.0),
        "queue_delay_mean_us": queueing.mean_queue_delay_us,
        "queue_delay_p50_us": queueing.queue_delay.percentile(50.0),
        "queue_delay_p95_us": queueing.queue_delay.percentile(95.0),
        "queue_delay_p99_us": queueing.queue_delay.percentile(99.0),
        "channel_utilization": queueing.channel_utilization(),
        "channel_stalls": queueing.channel_stalls,
    }


def tasks(
    workload: str = "specweb99",
    queue_depths: Sequence[int] = PAPER_QUEUE_DEPTHS,
    channel_counts: Sequence[int] = PAPER_CHANNELS,
    planes: int = PLANES,
    scale_divisor: int = 64,
    num_records: int = 40_000,
    seed: int = 17,
) -> List[SweepTask]:
    """The Figure 14 grid, one task per (queue depth, channels) cell."""
    return [SweepTask(key=f"fig14:{workload}:qd={queue_depth}:ch={channels}",
                      fn=_concurrency_task,
                      kwargs={"workload": workload,
                              "queue_depth": queue_depth,
                              "channels": channels, "planes": planes,
                              "scale_divisor": scale_divisor,
                              "num_records": num_records, "seed": seed})
            for queue_depth in queue_depths
            for channels in channel_counts]


def combine(results: Sequence[SweepResult]) -> List[ConcurrencyPoint]:
    """Reduce the grid to rows, normalising to the serial anchor."""
    rows = [result.unwrap() for result in results]
    anchor_rps = min(row["throughput_rps"] for row in rows)
    return [ConcurrencyPoint(
        queue_depth=row["queue_depth"],
        channels=row["channels"],
        planes=row["planes"],
        throughput_rps=row["throughput_rps"],
        speedup=(row["throughput_rps"] / anchor_rps if anchor_rps > 0
                 else 0.0),
        service_p50_us=row["service_p50_us"],
        service_p95_us=row["service_p95_us"],
        service_p99_us=row["service_p99_us"],
        queue_delay_mean_us=row["queue_delay_mean_us"],
        queue_delay_p50_us=row["queue_delay_p50_us"],
        queue_delay_p95_us=row["queue_delay_p95_us"],
        queue_delay_p99_us=row["queue_delay_p99_us"],
        channel_utilization=row["channel_utilization"],
        channel_stalls=row["channel_stalls"],
    ) for row in rows]


def run_concurrency_sweep(
    workload: str = "specweb99",
    queue_depths: Sequence[int] = PAPER_QUEUE_DEPTHS,
    channel_counts: Sequence[int] = PAPER_CHANNELS,
    planes: int = PLANES,
    scale_divisor: int = 64,
    num_records: int = 40_000,
    seed: int = 17,
    workers: int = 1,
) -> List[ConcurrencyPoint]:
    """Figure 14 sweep (identical output at any worker count)."""
    return combine(sweep(
        tasks(workload, queue_depths, channel_counts, planes,
              scale_divisor, num_records, seed),
        workers=workers))


def as_rows(points: Sequence[ConcurrencyPoint]) -> List[Dict[str, Any]]:
    """JSON-ready form of the combined grid."""
    return [asdict(point) for point in points]


def main() -> None:
    print("Figure 14: throughput and latency split vs queue depth x channels")
    print(f"{'qd':>3} {'ch':>3} {'rps':>9} {'speedup':>8} "
          f"{'svc p50/p95/p99 us':>21} {'qdelay p50/p95/p99 us':>22} "
          f"{'util':>6}")
    for point in run_concurrency_sweep():
        utilization = (sum(point.channel_utilization)
                       / len(point.channel_utilization))
        print(f"{point.queue_depth:>3} {point.channels:>3} "
              f"{point.throughput_rps:>9.0f} {point.speedup:>8.2f} "
              f"{point.service_p50_us:>7.1f}/{point.service_p95_us:>6.1f}/"
              f"{point.service_p99_us:>6.1f} "
              f"{point.queue_delay_p50_us:>8.1f}/"
              f"{point.queue_delay_p95_us:>6.1f}/"
              f"{point.queue_delay_p99_us:>6.1f} "
              f"{utilization:>6.2f}")


if __name__ == "__main__":
    main()
