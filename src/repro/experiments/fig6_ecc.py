"""Figure 6: (a) BCH decode latency and (b) tolerable W/E cycles vs ECC.

Both panels are closed-form in this reproduction — 6(a) from the
accelerator latency model (validated against the functional codec in the
test suite) and 6(b) from the lognormal cell-lifetime model — so the
experiment runners simply evaluate and tabulate the series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..ecc.latency import BCHLatencyModel, DecodeLatency
from ..flash.wear import CellLifetimeModel

__all__ = ["run_decode_latency_series", "run_tolerable_cycles_series",
           "Fig6aPoint"]


@dataclass(frozen=True)
class Fig6aPoint:
    t: int
    syndrome_us: float
    chien_us: float
    total_us: float


def run_decode_latency_series(
        t_values: Sequence[int] = tuple(range(2, 12))) -> List[Fig6aPoint]:
    """Figure 6(a): decode latency split into syndrome + Chien components."""
    model = BCHLatencyModel()
    points = []
    for t in t_values:
        latency: DecodeLatency = model.decode_latency(t)
        points.append(Fig6aPoint(
            t=t,
            syndrome_us=latency.syndrome_us,
            chien_us=latency.chien_us,
            total_us=latency.total_us,
        ))
    return points


def run_tolerable_cycles_series(
    t_values: Sequence[int] = tuple(range(0, 11)),
    stdev_fracs: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
) -> Dict[float, List[tuple]]:
    """Figure 6(b): max tolerable W/E cycles per ECC strength and stdev."""
    return CellLifetimeModel.figure_6b_series(
        t_values=list(t_values), stdev_fracs=tuple(stdev_fracs))


def main() -> None:
    print("Figure 6(a): BCH decode latency (us)")
    print(f"{'t':>3} {'syndrome':>9} {'chien':>9} {'total':>9}")
    for point in run_decode_latency_series():
        print(f"{point.t:>3} {point.syndrome_us:9.1f} {point.chien_us:9.1f} "
              f"{point.total_us:9.1f}")
    print()
    print("Figure 6(b): max tolerable W/E cycles")
    series = run_tolerable_cycles_series()
    ts = [t for t, _ in next(iter(series.values()))]
    header = "stdev " + " ".join(f"t={t:<8d}" for t in ts)
    print(header)
    for frac, points in series.items():
        row = f"{frac:5.0%} " + " ".join(f"{c:<10.2e}" for _, c in points)
        print(row)


if __name__ == "__main__":
    main()
