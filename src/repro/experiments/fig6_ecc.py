"""Figure 6: (a) BCH decode latency and (b) tolerable W/E cycles vs ECC.

Both panels are closed-form in this reproduction — 6(a) from the
accelerator latency model (validated against the functional codec in the
test suite) and 6(b) from the lognormal cell-lifetime model — so the
experiment runners simply evaluate and tabulate the series.

Spawn-safety: the sweep task builders below close over picklable
primitives only (``t`` values, stdev fractions); each worker constructs
its own latency/lifetime model, and no module-level mutable state is
touched, so tasks behave identically under fork, spawn, or in-process
serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ecc.latency import BCHLatencyModel, DecodeLatency
from ..flash.wear import CellLifetimeModel
from ..parallel import SweepResult, SweepTask, sweep

__all__ = ["run_decode_latency_series", "run_tolerable_cycles_series",
           "Fig6aPoint", "decode_latency_tasks", "combine_decode_latency",
           "tolerable_cycles_tasks", "combine_tolerable_cycles",
           "tasks", "combine"]


@dataclass(frozen=True)
class Fig6aPoint:
    t: int
    syndrome_us: float
    chien_us: float
    total_us: float


def _decode_latency_task(t: int) -> Fig6aPoint:
    """One Figure 6(a) grid point (worker entry point)."""
    latency: DecodeLatency = BCHLatencyModel().decode_latency(t)
    return Fig6aPoint(
        t=t,
        syndrome_us=latency.syndrome_us,
        chien_us=latency.chien_us,
        total_us=latency.total_us,
    )


def _tolerable_cycles_task(stdev_frac: float,
                           t_values: Tuple[int, ...]) -> List[tuple]:
    """One Figure 6(b) curve (worker entry point)."""
    series = CellLifetimeModel.figure_6b_series(
        t_values=list(t_values), stdev_fracs=(stdev_frac,))
    return series[stdev_frac]


def decode_latency_tasks(
        t_values: Sequence[int] = tuple(range(2, 12))) -> List[SweepTask]:
    """The Figure 6(a) grid, one task per ECC strength."""
    return [SweepTask(key=f"fig6a:t={t}", fn=_decode_latency_task,
                      kwargs={"t": t})
            for t in t_values]


def combine_decode_latency(
        results: Sequence[SweepResult]) -> List[Fig6aPoint]:
    return [result.unwrap() for result in results]


def tolerable_cycles_tasks(
    t_values: Sequence[int] = tuple(range(0, 11)),
    stdev_fracs: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
) -> List[SweepTask]:
    """The Figure 6(b) grid, one task per oxide-variation curve."""
    return [SweepTask(key=f"fig6b:stdev={frac}", fn=_tolerable_cycles_task,
                      kwargs={"stdev_frac": frac,
                              "t_values": tuple(t_values)})
            for frac in stdev_fracs]


def combine_tolerable_cycles(
        results: Sequence[SweepResult]) -> Dict[float, List[tuple]]:
    return {float(result.key.split("=", 1)[1]): result.unwrap()
            for result in results}


def tasks(t_values_a: Sequence[int] = tuple(range(2, 12)),
          t_values_b: Sequence[int] = tuple(range(0, 11)),
          stdev_fracs: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
          ) -> List[SweepTask]:
    """Both Figure 6 panels as one task list (the ``repro sweep`` grid)."""
    return (decode_latency_tasks(t_values_a)
            + tolerable_cycles_tasks(t_values_b, stdev_fracs))


def combine(results: Sequence[SweepResult]) -> Dict[str, object]:
    """Split a mixed task list back into the two panel series."""
    panel_a = [r for r in results if r.key.startswith("fig6a:")]
    panel_b = [r for r in results if r.key.startswith("fig6b:")]
    return {
        "decode_latency": combine_decode_latency(panel_a),
        "tolerable_cycles": combine_tolerable_cycles(panel_b),
    }


def run_decode_latency_series(
        t_values: Sequence[int] = tuple(range(2, 12)),
        workers: int = 1) -> List[Fig6aPoint]:
    """Figure 6(a): decode latency split into syndrome + Chien components."""
    return combine_decode_latency(
        sweep(decode_latency_tasks(t_values), workers=workers))


def run_tolerable_cycles_series(
    t_values: Sequence[int] = tuple(range(0, 11)),
    stdev_fracs: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
    workers: int = 1,
) -> Dict[float, List[tuple]]:
    """Figure 6(b): max tolerable W/E cycles per ECC strength and stdev."""
    return combine_tolerable_cycles(
        sweep(tolerable_cycles_tasks(t_values, stdev_fracs),
              workers=workers))


def main() -> None:
    print("Figure 6(a): BCH decode latency (us)")
    print(f"{'t':>3} {'syndrome':>9} {'chien':>9} {'total':>9}")
    for point in run_decode_latency_series():
        print(f"{point.t:>3} {point.syndrome_us:9.1f} {point.chien_us:9.1f} "
              f"{point.total_us:9.1f}")
    print()
    print("Figure 6(b): max tolerable W/E cycles")
    series = run_tolerable_cycles_series()
    ts = [t for t, _ in next(iter(series.values()))]
    header = "stdev " + " ".join(f"t={t:<8d}" for t in ts)
    print(header)
    for frac, points in series.items():
        row = f"{frac:5.0%} " + " ".join(f"{c:<10.2e}" for _, c in points)
        print(row)


if __name__ == "__main__":
    main()
