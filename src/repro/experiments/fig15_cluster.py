"""Figure 15 (extension): cluster tail latency and capacity vs scale.

The paper sizes one Flash-cached server; its motivating deployment is a
fleet of them behind a load balancer.  This experiment sweeps the
sharded cluster service (:mod:`repro.cluster`) over shard count crossed
with offered arrival rate and reports, per cell, the achieved
throughput, the shed fraction, and the response-time percentile split.

Expected shape: for each shard count there is a capacity cliff — below
it the cluster completes essentially all arrivals with a flat p99;
above it admission control sheds the excess and the p99 of admitted
requests saturates at the shed-queue bound.  Adding shards moves the
cliff right roughly linearly (consistent hashing splits the open-loop
stream evenly), which is the scale-out argument the single-node figures
cannot make.

Spawn-safety: one task per (shards, rate) cell; each worker rebuilds
the whole cluster from the scenario primitives and runs it with
``workers=1`` (the nested sweep takes the serial path, so cells nest
cleanly inside the outer process pool).  Results are byte-identical at
any outer worker count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence

from ..cluster import ClusterScenario, run_cluster
from ..parallel import SweepResult, SweepTask, sweep

__all__ = ["ClusterPoint", "PAPER_SHARD_COUNTS", "PAPER_RATES_RPS",
           "tasks", "combine", "run_cluster_sweep", "as_rows"]

#: The figure's axes: fleet sizes x offered cluster-wide arrival rates.
PAPER_SHARD_COUNTS = (1, 2, 4)
PAPER_RATES_RPS = (2000.0, 4000.0, 8000.0)


@dataclass(frozen=True)
class ClusterPoint:
    """One (shards, rate) cell of the Figure 15 grid."""

    shards: int
    rate_rps: float
    arrivals: int
    completed: int
    shed: int
    shed_fraction: float
    throughput_rps: float
    response_p50_us: float
    response_p95_us: float
    response_p99_us: float
    queue_delay_p99_us: float


def _cluster_task(shards: int, rate_rps: float, pattern: str,
                  duration_s: float, workload: str, footprint_pages: int,
                  queue_depth: int, shed_queue: int, seed: int,
                  ) -> Dict[str, Any]:
    """Worker entry point: one grid cell = one full cluster run."""
    scenario = ClusterScenario(
        shards=shards, pattern=pattern, rate_rps=rate_rps,
        duration_s=duration_s, workload=workload,
        footprint_pages=footprint_pages, queue_depth=queue_depth,
        shed_queue=shed_queue, seed=seed)
    result = run_cluster(scenario, workers=1)
    return {
        "shards": shards,
        "rate_rps": rate_rps,
        "arrivals": result.arrivals,
        "completed": result.completed,
        "shed": result.shed,
        "shed_fraction": result.shed_fraction,
        "throughput_rps": result.throughput_rps,
        "response_p50_us": result.response.p50,
        "response_p95_us": result.response.p95,
        "response_p99_us": result.response.p99,
        "queue_delay_p99_us": result.queue_delay.p99,
    }


def tasks(
    shard_counts: Sequence[int] = PAPER_SHARD_COUNTS,
    rates_rps: Sequence[float] = PAPER_RATES_RPS,
    pattern: str = "steady",
    duration_s: float = 0.5,
    workload: str = "specweb99",
    footprint_pages: int = 8192,
    queue_depth: int = 4,
    shed_queue: int = 16,
    seed: int = 23,
) -> List[SweepTask]:
    """The Figure 15 grid, one task per (shards, rate) cell."""
    return [SweepTask(key=f"fig15:shards={shards}:rate={rate_rps:g}",
                      fn=_cluster_task,
                      kwargs={"shards": shards, "rate_rps": rate_rps,
                              "pattern": pattern,
                              "duration_s": duration_s,
                              "workload": workload,
                              "footprint_pages": footprint_pages,
                              "queue_depth": queue_depth,
                              "shed_queue": shed_queue, "seed": seed})
            for shards in shard_counts
            for rate_rps in rates_rps]


def combine(results: Sequence[SweepResult]) -> List[ClusterPoint]:
    """Reduce the grid to typed rows, in task order."""
    return [ClusterPoint(**result.unwrap()) for result in results]


def run_cluster_sweep(
    shard_counts: Sequence[int] = PAPER_SHARD_COUNTS,
    rates_rps: Sequence[float] = PAPER_RATES_RPS,
    pattern: str = "steady",
    duration_s: float = 0.5,
    workload: str = "specweb99",
    footprint_pages: int = 8192,
    queue_depth: int = 4,
    shed_queue: int = 16,
    seed: int = 23,
    workers: int = 1,
) -> List[ClusterPoint]:
    """Figure 15 sweep (identical output at any worker count)."""
    return combine(sweep(
        tasks(shard_counts, rates_rps, pattern, duration_s, workload,
              footprint_pages, queue_depth, shed_queue, seed),
        workers=workers))


def as_rows(points: Sequence[ClusterPoint]) -> List[Dict[str, Any]]:
    """JSON-ready form of the combined grid."""
    return [asdict(point) for point in points]


def main() -> None:
    print("Figure 15: cluster capacity and tail latency vs shards x rate")
    print(f"{'shards':>6} {'rate':>7} {'done':>6} {'shed%':>6} "
          f"{'rps':>8} {'p50':>8} {'p95':>9} {'p99 us':>9}")
    for point in run_cluster_sweep():
        print(f"{point.shards:>6} {point.rate_rps:>7.0f} "
              f"{point.completed:>6} {100 * point.shed_fraction:>6.2f} "
              f"{point.throughput_rps:>8.0f} "
              f"{point.response_p50_us:>8.1f} "
              f"{point.response_p95_us:>9.1f} "
              f"{point.response_p99_us:>9.1f}")


if __name__ == "__main__":
    main()
