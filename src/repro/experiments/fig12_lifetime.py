"""Figure 12: Flash lifetime, programmable controller vs fixed BCH-1.

For each workload, the number of host accesses until *total Flash
failure* (every block retired), for the programmable controller and a
conventional one-error-correcting controller, normalised to the largest
observed lifetime.  The paper's headline: the programmable controller
extends lifetime by a factor of ~20 on average — a six-month device
stretches past ten years.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Sequence

from ..sim.lifetime import simulate_lifetime

__all__ = ["LifetimeRow", "run_lifetime_comparison", "FIG12_WORKLOADS"]

#: The x axis of Figure 12 (the paper omits exp2 in this figure).
FIG12_WORKLOADS = (
    "uniform", "alpha1", "alpha2", "alpha3", "exp1",
    "websearch1", "websearch2", "financial1", "financial2",
)


@dataclass(frozen=True)
class LifetimeRow:
    """One workload's pair of bars."""

    workload: str
    programmable_accesses: float
    bch1_accesses: float
    normalized_programmable: float
    normalized_bch1: float

    @property
    def improvement(self) -> float:
        return self.programmable_accesses / self.bch1_accesses


def run_lifetime_comparison(
    workloads: Sequence[str] = FIG12_WORKLOADS,
    seed: int = 42,
    **config_overrides,
) -> List[LifetimeRow]:
    """The full Figure 12 sweep."""
    raw = []
    for workload in workloads:
        programmable = simulate_lifetime(
            workload, "programmable", seed=seed, **config_overrides)
        fixed = simulate_lifetime(
            workload, "bch1", seed=seed, **config_overrides)
        raw.append((workload,
                    programmable.host_accesses_to_failure,
                    fixed.host_accesses_to_failure))
    scale = max(accesses for _, accesses, _ in raw)
    return [
        LifetimeRow(
            workload=workload,
            programmable_accesses=programmable,
            bch1_accesses=fixed,
            normalized_programmable=programmable / scale,
            normalized_bch1=fixed / scale,
        )
        for workload, programmable, fixed in raw
    ]


def average_improvement(rows: Sequence[LifetimeRow]) -> float:
    """The paper's "factor of 20 on average" summary metric."""
    return mean(row.improvement for row in rows)


def main() -> None:
    rows = run_lifetime_comparison()
    print("Figure 12: normalized lifetime (programmable vs BCH-1)")
    print(f"{'workload':>12} {'programmable':>13} {'BCH-1':>10} {'gain':>7}")
    for row in rows:
        print(f"{row.workload:>12} {row.normalized_programmable:13.4f} "
              f"{row.normalized_bch1:10.5f} {row.improvement:6.1f}x")
    print(f"average improvement: {average_improvement(rows):.1f}x")


if __name__ == "__main__":
    main()
