"""Figure 12: Flash lifetime, programmable controller vs fixed BCH-1.

For each workload, the number of host accesses until *total Flash
failure* (every block retired), for the programmable controller and a
conventional one-error-correcting controller, normalised to the largest
observed lifetime.  The paper's headline: the programmable controller
extends lifetime by a factor of ~20 on average — a six-month device
stretches past ten years.

Spawn-safety: one task per (workload, controller) pair; the worker runs
a fresh aging simulation from the task's primitives, with overrides as a
plain dict.  Both controllers of a workload share the experiment seed by
design — the comparison must age identical devices under identical
traffic — and the cross-workload normalisation happens in
:func:`combine` (parent process), which needs every pair's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel import SweepResult, SweepTask, sweep
from ..sim.lifetime import simulate_lifetime

__all__ = ["LifetimeRow", "run_lifetime_comparison", "FIG12_WORKLOADS",
           "tasks", "combine"]

#: The x axis of Figure 12 (the paper omits exp2 in this figure).
FIG12_WORKLOADS = (
    "uniform", "alpha1", "alpha2", "alpha3", "exp1",
    "websearch1", "websearch2", "financial1", "financial2",
)


@dataclass(frozen=True)
class LifetimeRow:
    """One workload's pair of bars."""

    workload: str
    programmable_accesses: float
    bch1_accesses: float
    normalized_programmable: float
    normalized_bch1: float

    @property
    def improvement(self) -> float:
        return self.programmable_accesses / self.bch1_accesses


def _lifetime_task(workload: str, controller: str, seed: int,
                   config_overrides: Optional[dict] = None) -> float:
    """Worker entry point: host accesses to total failure for one pair."""
    result = simulate_lifetime(workload, controller, seed=seed,
                               **(config_overrides or {}))
    return result.host_accesses_to_failure


def tasks(
    workloads: Sequence[str] = FIG12_WORKLOADS,
    seed: int = 42,
    **config_overrides,
) -> List[SweepTask]:
    """The Figure 12 grid, one task per (workload, controller) pair."""
    return [
        SweepTask(key=f"fig12:{workload}:{controller}", fn=_lifetime_task,
                  kwargs={"workload": workload, "controller": controller,
                          "seed": seed,
                          "config_overrides": dict(config_overrides)})
        for workload in workloads
        for controller in ("programmable", "bch1")
    ]


def combine(results: Sequence[SweepResult]) -> List[LifetimeRow]:
    """Pair and normalise every workload's two bars (needs the whole
    grid: the y axis is normalised to the largest observed lifetime)."""
    accesses: Dict[Tuple[str, str], float] = {}
    order: List[str] = []
    for result in results:
        _, workload, controller = result.key.split(":")
        accesses[(workload, controller)] = result.unwrap()
        if workload not in order:
            order.append(workload)
    raw = [(workload, accesses[(workload, "programmable")],
            accesses[(workload, "bch1")]) for workload in order]
    scale = max(value for _, value, _ in raw)
    return [
        LifetimeRow(
            workload=workload,
            programmable_accesses=programmable,
            bch1_accesses=fixed,
            normalized_programmable=programmable / scale,
            normalized_bch1=fixed / scale,
        )
        for workload, programmable, fixed in raw
    ]


def run_lifetime_comparison(
    workloads: Sequence[str] = FIG12_WORKLOADS,
    seed: int = 42,
    workers: int = 1,
    **config_overrides,
) -> List[LifetimeRow]:
    """The full Figure 12 sweep."""
    return combine(sweep(tasks(workloads, seed, **config_overrides),
                         workers=workers))


def average_improvement(rows: Sequence[LifetimeRow]) -> float:
    """The paper's "factor of 20 on average" summary metric."""
    return mean(row.improvement for row in rows)


def main() -> None:
    rows = run_lifetime_comparison()
    print("Figure 12: normalized lifetime (programmable vs BCH-1)")
    print(f"{'workload':>12} {'programmable':>13} {'BCH-1':>10} {'gain':>7}")
    for row in rows:
        print(f"{row.workload:>12} {row.normalized_programmable:13.4f} "
              f"{row.normalized_bch1:10.5f} {row.improvement:6.1f}x")
    print(f"average improvement: {average_improvement(rows):.1f}x")


if __name__ == "__main__":
    main()
