"""Figure 11: breakdown of page reconfiguration events per workload.

For every traced workload (Flash sized at half the working set, measured
near the onset of cell failures), what fraction of the programmable
controller's descriptor updates raised ECC strength vs switched a page
from MLC to SLC?  The paper's headline trend: the longer a workload's
popularity tail, the more the controller prefers ECC (capacity is
precious); short-tailed (exponential) workloads flip almost entirely to
density reduction.

Spawn-safety: one task per workload; the worker builds a fresh
:class:`~repro.sim.lifetime.AgingConfig` (a frozen dataclass) and
simulator from the task's primitives.  Config overrides travel as a
plain dict of primitives, so tasks pickle cleanly under fork or spawn.
Every workload shares the experiment seed, matching the serial loop the
figure always ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..parallel import SweepResult, SweepTask, sweep
from ..sim.lifetime import AgingConfig, LifetimeSimulator

__all__ = ["ReconfigBreakdown", "run_reconfig_breakdown", "FIG11_WORKLOADS",
           "tasks", "combine"]

#: The x axis of Figure 11, in paper order.
FIG11_WORKLOADS = (
    "uniform", "alpha1", "alpha2", "alpha3", "exp1", "exp2",
    "websearch1", "websearch2", "financial1", "financial2",
)


@dataclass(frozen=True)
class ReconfigBreakdown:
    """One bar of Figure 11."""

    workload: str
    code_strength_fraction: float
    density_fraction: float
    total_updates: int


def _breakdown_task(workload: str, seed: int,
                    config_overrides: Optional[dict] = None
                    ) -> ReconfigBreakdown:
    """Worker entry point: one workload's aging run and decision mix."""
    config = AgingConfig(workload=workload, controller="programmable",
                         seed=seed, **(config_overrides or {}))
    outcome = LifetimeSimulator(config).run()
    breakdown = outcome.early_reconfig_breakdown
    return ReconfigBreakdown(
        workload=workload,
        code_strength_fraction=breakdown["code_strength"],
        density_fraction=breakdown["density"],
        total_updates=sum(outcome.first_choices.values()),
    )


def tasks(
    workloads: Sequence[str] = FIG11_WORKLOADS,
    seed: int = 42,
    **config_overrides,
) -> List[SweepTask]:
    """The Figure 11 grid, one task per workload."""
    return [SweepTask(key=f"fig11:{workload}", fn=_breakdown_task,
                      kwargs={"workload": workload, "seed": seed,
                              "config_overrides": dict(config_overrides)})
            for workload in workloads]


def combine(results: Sequence[SweepResult]) -> List[ReconfigBreakdown]:
    return [result.unwrap() for result in results]


def run_reconfig_breakdown(
    workloads: Sequence[str] = FIG11_WORKLOADS,
    seed: int = 42,
    workers: int = 1,
    **config_overrides,
) -> List[ReconfigBreakdown]:
    """Run the aging simulation per workload and report the early
    (near-first-failure) decision mix, as the paper measures."""
    return combine(sweep(tasks(workloads, seed, **config_overrides),
                         workers=workers))


def main() -> None:
    print("Figure 11: descriptor update breakdown (near first failures)")
    print(f"{'workload':>12} {'code strength':>14} {'density':>9}")
    for row in run_reconfig_breakdown():
        print(f"{row.workload:>12} {row.code_strength_fraction:14.0%} "
              f"{row.density_fraction:9.0%}")


if __name__ == "__main__":
    main()
