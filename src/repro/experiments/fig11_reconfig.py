"""Figure 11: breakdown of page reconfiguration events per workload.

For every traced workload (Flash sized at half the working set, measured
near the onset of cell failures), what fraction of the programmable
controller's descriptor updates raised ECC strength vs switched a page
from MLC to SLC?  The paper's headline trend: the longer a workload's
popularity tail, the more the controller prefers ECC (capacity is
precious); short-tailed (exponential) workloads flip almost entirely to
density reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..sim.lifetime import AgingConfig, LifetimeSimulator

__all__ = ["ReconfigBreakdown", "run_reconfig_breakdown", "FIG11_WORKLOADS"]

#: The x axis of Figure 11, in paper order.
FIG11_WORKLOADS = (
    "uniform", "alpha1", "alpha2", "alpha3", "exp1", "exp2",
    "websearch1", "websearch2", "financial1", "financial2",
)


@dataclass(frozen=True)
class ReconfigBreakdown:
    """One bar of Figure 11."""

    workload: str
    code_strength_fraction: float
    density_fraction: float
    total_updates: int


def run_reconfig_breakdown(
    workloads: Sequence[str] = FIG11_WORKLOADS,
    seed: int = 42,
    **config_overrides,
) -> List[ReconfigBreakdown]:
    """Run the aging simulation per workload and report the early
    (near-first-failure) decision mix, as the paper measures."""
    results: List[ReconfigBreakdown] = []
    for workload in workloads:
        config = AgingConfig(workload=workload, controller="programmable",
                             seed=seed, **config_overrides)
        outcome = LifetimeSimulator(config).run()
        breakdown = outcome.early_reconfig_breakdown
        results.append(ReconfigBreakdown(
            workload=workload,
            code_strength_fraction=breakdown["code_strength"],
            density_fraction=breakdown["density"],
            total_updates=sum(outcome.first_choices.values()),
        ))
    return results


def main() -> None:
    print("Figure 11: descriptor update breakdown (near first failures)")
    print(f"{'workload':>12} {'code strength':>14} {'density':>9}")
    for row in run_reconfig_breakdown():
        print(f"{row.workload:>12} {row.code_strength_fraction:14.0%} "
              f"{row.density_fraction:9.0%}")


if __name__ == "__main__":
    main()
