"""Graceful degradation of the Flash disk cache under injected faults.

The paper's reliability argument (sections 4 and 6.3) is that a Flash
disk cache, unlike a Flash *disk*, is allowed to fail: every byte it
holds also lives on the hard drive (or reaches it via the write-back
flush), so hardware faults should cost performance, never correctness or
availability.  This experiment exercises that claim end to end with the
deterministic fault injector of :mod:`repro.faults`:

* a single-knob fault-rate sweep (transient read-disturb bursts, program
  and erase status failures, infant-mortality block deaths) is replayed
  against the full DRAM + Flash + disk hierarchy;
* every run must complete without an unhandled exception — the cache
  absorbs uncorrectable reads as misses, remaps failed programs, retires
  failing blocks, and below its minimum-blocks floor switches itself off
  and serves from DRAM+disk alone;
* each run is repeated with the controller's read-retry ladder enabled,
  showing transient faults being ridden out by re-sensing (fewer
  uncorrectable reads, fewer cache drops) at a small latency cost.

The printed table reports, per fault rate: the read miss rate, the live
capacity fraction left at the end, whether the cache ended degraded, and
the recovery counters (recovered vs unrecovered faults, program remaps,
retired blocks) with and without the retry ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.controller import ControllerConfig
from ..core.hierarchy import build_flash_system
from ..faults.injector import FaultConfig
from ..sim.engine import SimulationReport, run_trace
from ..telemetry import Telemetry
from ..workloads.macro import build_workload

__all__ = [
    "FaultDegradationPoint",
    "run_fault_sweep",
    "run_fault_timeline",
    "DEFAULT_FAULT_RATES",
]

#: The sweep's x axis: per-read burst probability fed to
#: :meth:`FaultConfig.uniform` (hard faults are derived an order of
#: magnitude rarer).  Zero anchors the fault-free baseline.
DEFAULT_FAULT_RATES = (0.0, 0.005, 0.02, 0.08, 0.2)


@dataclass(frozen=True)
class FaultDegradationPoint:
    """Outcome of one trace replay at one fault rate."""

    fault_rate: float
    read_retry_max: int
    miss_rate: float
    live_capacity: float
    degraded: bool
    recovered_faults: int
    unrecovered_faults: int
    remapped_programs: int
    retired_blocks: int
    uncorrectable_reads: int
    retry_recovered_reads: int
    injected_faults: int

    @property
    def survived(self) -> bool:
        """The availability claim: the run finished serving requests."""
        return True  # constructing the point requires the run to finish


def _run_one(rate: float, read_retry_max: int, *, dram_bytes: int,
             flash_bytes: int, num_records: int, footprint_pages: int,
             seed: int,
             telemetry: Optional[Telemetry] = None) -> SimulationReport:
    fault_config = (FaultConfig.uniform(rate, seed=seed)
                    if rate > 0.0 else None)
    system = build_flash_system(
        dram_bytes=dram_bytes,
        flash_bytes=flash_bytes,
        controller_config=ControllerConfig(read_retry_max=read_retry_max),
        fault_config=fault_config,
        seed=seed,
    )
    trace = build_workload("dbt2", num_records=num_records,
                           footprint_pages=footprint_pages, seed=seed)
    return run_trace(system, trace, telemetry=telemetry)


def run_fault_sweep(
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    retry_depths: Sequence[int] = (0, 2),
    dram_bytes: int = 2 << 20,
    flash_bytes: int = 8 << 20,
    num_records: int = 6000,
    footprint_pages: int = 8192,
    seed: int = 3,
) -> List[FaultDegradationPoint]:
    """Replay the same trace at each (fault rate, retry depth) pair.

    Determinism contract: identical arguments produce identical points —
    the injector, workload generator, and device all derive their RNG
    streams from the seeds above.
    """
    points: List[FaultDegradationPoint] = []
    for rate in fault_rates:
        for retry in retry_depths:
            report = _run_one(
                rate, retry, dram_bytes=dram_bytes,
                flash_bytes=flash_bytes, num_records=num_records,
                footprint_pages=footprint_pages, seed=seed)
            flash = report.flash
            controller = report.controller
            assert flash is not None and controller is not None
            points.append(FaultDegradationPoint(
                fault_rate=rate,
                read_retry_max=retry,
                miss_rate=flash.read_miss_rate,
                live_capacity=report.flash_live_capacity,
                degraded=report.flash_degraded,
                recovered_faults=flash.recovered_faults,
                unrecovered_faults=flash.unrecovered_faults,
                remapped_programs=flash.remapped_programs,
                retired_blocks=flash.retired_blocks,
                uncorrectable_reads=controller.uncorrectable_reads,
                retry_recovered_reads=controller.retry_recovered_reads,
                injected_faults=(report.faults.total
                                 if report.faults is not None else 0),
            ))
    return points


def run_fault_timeline(
    fault_rate: float = 0.08,
    read_retry_max: int = 2,
    dram_bytes: int = 2 << 20,
    flash_bytes: int = 8 << 20,
    num_records: int = 6000,
    footprint_pages: int = 8192,
    seed: int = 3,
    sample_interval: int = 500,
) -> Tuple[SimulationReport, Telemetry]:
    """One instrumented faulted run: how degradation *unfolds*.

    Returns the report plus the :class:`Telemetry` handle whose
    time-series show live capacity draining, miss rate climbing, and
    retirements accumulating over trace position — the watch-it-happen
    view the end-of-run sweep table cannot give.  Telemetry never
    perturbs the simulation, so the report matches an un-instrumented
    run with the same arguments exactly.
    """
    telemetry = Telemetry(sample_interval=sample_interval)
    report = _run_one(
        fault_rate, read_retry_max, dram_bytes=dram_bytes,
        flash_bytes=flash_bytes, num_records=num_records,
        footprint_pages=footprint_pages, seed=seed, telemetry=telemetry)
    return report, telemetry


def main(telemetry_out: Optional[str] = None) -> None:
    print("Fault injection and graceful degradation "
          "(dbt2 disk cache, uniform fault sweep)")
    print(f"{'rate':>6} {'retry':>5} {'miss':>8} {'live':>7} {'degr':>5} "
          f"{'recov':>6} {'lost':>5} {'remap':>6} {'retired':>7} "
          f"{'uncorr':>7} {'resaved':>7}")
    for point in run_fault_sweep():
        print(f"{point.fault_rate:6.3f} {point.read_retry_max:>5} "
              f"{point.miss_rate:8.3%} {point.live_capacity:7.3f} "
              f"{str(point.degraded):>5} {point.recovered_faults:>6} "
              f"{point.unrecovered_faults:>5} {point.remapped_programs:>6} "
              f"{point.retired_blocks:>7} {point.uncorrectable_reads:>7} "
              f"{point.retry_recovered_reads:>7}")

    report, telemetry = run_fault_timeline()
    print()
    print("Degradation timeline (rate=0.080, retry=2): "
          "live capacity and miss rate over trace position")
    print(f"{'position':>9} {'live':>7} {'miss':>8} {'retired':>7} "
          f"{'uncorr':>7}")
    capacity = telemetry.timeseries["live_capacity"]
    miss = telemetry.timeseries["flash_miss_rate"]
    retired = telemetry.timeseries["retired_blocks"]
    uncorrectable = telemetry.timeseries["uncorrectable_reads"]
    for index, position in enumerate(capacity.xs):
        print(f"{int(position):>9} {capacity.ys[index]:7.3f} "
              f"{miss.ys[index]:8.3%} {int(retired.ys[index]):>7} "
              f"{int(uncorrectable.ys[index]):>7}")
    if report.read_latency_p99 is not None:
        print(f"read latency p50/p95/p99 us: "
              f"{report.read_latency_p50:.1f} / "
              f"{report.read_latency_p95:.1f} / "
              f"{report.read_latency_p99:.1f}")
    if telemetry_out is not None:
        from ..telemetry.export import write_json
        write_json(telemetry, telemetry_out)
        print(f"telemetry JSON written to {telemetry_out}")


if __name__ == "__main__":
    main()
