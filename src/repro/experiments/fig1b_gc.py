"""Figure 1(b): garbage-collection overhead vs occupied Flash space.

The paper motivates the disk-cache (rather than filesystem/SSD) usage
model by showing GC time blowing up as Flash occupancy grows — the eNVy
study could only use 80% of its capacity.  We reproduce the curve by
driving steady out-of-place write traffic over footprints sized to pin the
cache at each target occupancy and measuring background GC time relative
to foreground service time, normalised the way the paper plots it.

Spawn-safety: each occupancy level is an independent task whose worker
builds its own device/controller/cache stack and RNG from the task's
primitives; every occupancy deliberately shares the experiment seed so
the churn streams stay comparable across the sweep, exactly as the
serial loop always ran them.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Sequence

from ..core.cache import FlashCacheConfig, FlashDiskCache
from ..core.controller import ProgrammableFlashController
from ..flash.device import FlashDevice
from ..flash.geometry import FlashGeometry
from ..flash.timing import CellMode
from ..parallel import SweepResult, SweepTask, sweep

__all__ = ["GcPoint", "run_gc_overhead_sweep", "tasks", "combine"]


@dataclass(frozen=True)
class GcPoint:
    """One x/y pair of Figure 1(b)."""

    used_fraction: float
    gc_overhead: float          # gc time / foreground time
    normalized_overhead: float  # relative to the 10%-occupancy point
    gc_runs: int
    gc_page_moves: int


def _run_at_occupancy(occupancy: float, flash_blocks: int,
                      writes_per_page: float, seed: int) -> tuple:
    """Steady-state write churn at one occupancy level."""
    geometry = FlashGeometry(num_blocks=flash_blocks)
    device = FlashDevice(geometry=geometry, initial_mode=CellMode.MLC)
    controller = ProgrammableFlashController(device)
    # Figure 1(b) motivates the disk-cache design by showing the *SSD /
    # Flash-file-system* setting, where pages cannot be dropped and GC is
    # the only space reclaimer — hence a unified cache with eviction
    # disabled.
    cache = FlashDiskCache(
        controller, FlashCacheConfig(split=False, hot_promotion=False,
                                     allow_eviction_for_space=False))
    total_pages = cache.total_pages()
    footprint = max(int(total_pages * occupancy), 1)
    rng = Random(seed)
    num_writes = int(footprint * writes_per_page)
    # Warm up: populate the footprint once.
    for lba in range(footprint):
        cache.write(lba)
    # Reset counters so only steady-state churn is measured.
    cache.stats.gc_time_us = 0.0
    cache.stats.foreground_time_us = 0.0
    cache.stats.gc_runs = 0
    cache.stats.gc_page_moves = 0
    for _ in range(num_writes):
        cache.write(rng.randrange(footprint))
    return cache.stats.gc_overhead, cache.stats.gc_runs, \
        cache.stats.gc_page_moves


def _occupancy_task(occupancy: float, flash_blocks: int,
                    writes_per_page: float, seed: int) -> tuple:
    """Worker entry point: one occupancy level's raw measurements."""
    overhead, runs, moves = _run_at_occupancy(
        occupancy, flash_blocks, writes_per_page, seed)
    return occupancy, overhead, runs, moves


def tasks(
    occupancies: Sequence[float] = (0.10, 0.20, 0.30, 0.40, 0.50,
                                    0.60, 0.70, 0.80, 0.90, 0.95),
    flash_blocks: int = 32,
    writes_per_page: float = 4.0,
    seed: int = 7,
) -> List[SweepTask]:
    """The Figure 1(b) grid, one task per occupancy level."""
    return [SweepTask(key=f"fig1b:used={occupancy:.2f}",
                      fn=_occupancy_task,
                      kwargs={"occupancy": occupancy,
                              "flash_blocks": flash_blocks,
                              "writes_per_page": writes_per_page,
                              "seed": seed})
            for occupancy in occupancies]


def combine(results: Sequence[SweepResult]) -> List[GcPoint]:
    """Assemble task results (in task order) into the figure series."""
    points: List[GcPoint] = []
    for result in results:
        occupancy, overhead, runs, moves = result.unwrap()
        points.append(GcPoint(
            used_fraction=occupancy,
            gc_overhead=overhead,
            normalized_overhead=overhead / 0.10,
            gc_runs=runs,
            gc_page_moves=moves,
        ))
    return points


def run_gc_overhead_sweep(
    occupancies: Sequence[float] = (0.10, 0.20, 0.30, 0.40, 0.50,
                                    0.60, 0.70, 0.80, 0.90, 0.95),
    flash_blocks: int = 32,
    writes_per_page: float = 4.0,
    seed: int = 7,
    workers: int = 1,
) -> List[GcPoint]:
    """Sweep occupancy and report the Figure 1(b) series.

    ``normalized_overhead`` follows the paper's axis ("normalized to an
    overhead of 10%"): a value of 1 means GC consumes 10% as much time as
    foreground service.
    """
    return combine(sweep(
        tasks(occupancies, flash_blocks, writes_per_page, seed),
        workers=workers))


def main() -> None:
    print("Figure 1(b): GC overhead vs used Flash space")
    print(f"{'used':>6} {'gc/fg':>8} {'norm':>8} {'gc runs':>8} {'moves':>8}")
    for point in run_gc_overhead_sweep():
        print(f"{point.used_fraction:6.0%} {point.gc_overhead:8.3f} "
              f"{point.normalized_overhead:8.2f} {point.gc_runs:8d} "
              f"{point.gc_page_moves:8d}")


if __name__ == "__main__":
    main()
