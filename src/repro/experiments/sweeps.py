"""Named sweep grids behind ``repro sweep --workers N``.

Each figure's ``tasks()``/``combine()`` pair (see the ``fig*`` modules)
is registered here with a builder that sizes its grid from a
:class:`~repro.experiments.report.ReportScale` and a combiner that
reduces the ordered :class:`~repro.parallel.SweepResult` list to plain
JSON-ready data.  ``repro sweep`` flattens the selected grids into one
task list, fans it out through :func:`repro.parallel.sweep`, and writes
the aggregated document — so a 4-worker run of the full selection
produces byte-identical JSON to ``--workers 1``.

Resilience (DESIGN.md section 12): the flattened task list and the
scale/figure selection define a stable ``sweep_id``; with
``journal_path`` set, every finished task is recorded in a
:class:`~repro.parallel.SweepJournal` under that id, and
``resume=True`` replays the journal's completed tasks so an interrupted
sweep continues where it died — with ``document["figures"]``
byte-identical to an uninterrupted run's.  ``timeout_s`` and ``retries``
configure the runner's :class:`~repro.parallel.RetryPolicy`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..parallel import (
    RetryPolicy,
    SweepJournal,
    SweepResult,
    SweepTask,
    compute_sweep_id,
    sweep,
)
from . import (
    fig1b_gc,
    fig4_split,
    fig6_ecc,
    fig7_density,
    fig9_power,
    fig10_ecc_throughput,
    fig11_reconfig,
    fig12_lifetime,
    fig13_error_regimes,
    fig14_concurrency,
    fig15_cluster,
    fig16_availability,
)
from .report import ReportScale

__all__ = ["SweepSpec", "SWEEPS", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """One registered grid: scale-aware builder plus JSON combiner."""

    name: str
    description: str
    build: Callable[[ReportScale], List[SweepTask]]
    combine: Callable[[Sequence[SweepResult]], Any]


def _fig1b_build(scale: ReportScale) -> List[SweepTask]:
    return fig1b_gc.tasks(
        occupancies=(0.1, 0.3, 0.5, 0.7, 0.8, 0.9),
        flash_blocks=16 if scale.scale_divisor > 64 else 32)


def _fig1b_combine(results: Sequence[SweepResult]) -> Any:
    return [asdict(point) for point in fig1b_gc.combine(results)]


def _fig4_build(scale: ReportScale) -> List[SweepTask]:
    return fig4_split.tasks(flash_sizes_mb=(128, 384, 640),
                            scale_divisor=scale.scale_divisor,
                            num_records=scale.trace_records * 5)


def _fig4_combine(results: Sequence[SweepResult]) -> Any:
    return [asdict(point) for point in fig4_split.combine(results)]


def _fig6_build(scale: ReportScale) -> List[SweepTask]:
    return fig6_ecc.tasks()


def _fig6_combine(results: Sequence[SweepResult]) -> Any:
    combined = fig6_ecc.combine(results)
    return {
        "decode_latency": [asdict(p) for p in combined["decode_latency"]],
        "tolerable_cycles": {
            str(stdev): [[t, cycles] for t, cycles in points]
            for stdev, points in combined["tolerable_cycles"].items()},
    }


def _fig7_build(scale: ReportScale) -> List[SweepTask]:
    return fig7_density.tasks(area_fractions=(0.25, 0.5, 1.0, 2.0),
                              grid_points=41)


def _fig7_combine(results: Sequence[SweepResult]) -> Any:
    return [asdict(series) for series in fig7_density.combine(results)]


def _fig9_build(scale: ReportScale) -> List[SweepTask]:
    tasks: List[SweepTask] = []
    for workload in ("dbt2", "specweb99"):
        tasks.extend(fig9_power.tasks(
            workload, scale_divisor=scale.scale_divisor,
            num_records=scale.trace_records,
            warmup_records=max(scale.trace_records * 2 // 3, 10_000)))
    return tasks


def _group(results: Sequence[SweepResult],
           panel: Callable[[SweepResult], str]) -> Dict[str, List[SweepResult]]:
    """Partition a flattened grid back into per-panel result lists,
    preserving task order within each panel."""
    panels: Dict[str, List[SweepResult]] = {}
    for result in results:
        panels.setdefault(panel(result), []).append(result)
    return panels


def _fig9_combine(results: Sequence[SweepResult]) -> Any:
    panels = _group(results, lambda r: r.key.split(":")[1])
    out = {}
    for workload, panel_results in panels.items():
        combined = fig9_power.combine(panel_results)
        out[workload] = {
            "baseline": combined.baseline.as_dict(),
            "flash": combined.flash.as_dict(),
            "power_ratio": combined.power_ratio,
            "relative_bandwidth": combined.relative_bandwidth,
        }
    return out


def _fig10_build(scale: ReportScale) -> List[SweepTask]:
    tasks: List[SweepTask] = []
    for workload in ("specweb99", "dbt2"):
        tasks.extend(fig10_ecc_throughput.tasks(
            workload, strengths=(0, 5, 15, 50),
            scale_divisor=scale.scale_divisor,
            num_records=max(scale.trace_records // 3, 20_000)))
    return tasks


def _fig10_combine(results: Sequence[SweepResult]) -> Any:
    panels = _group(results, lambda r: r.key.split(":")[1])
    return {workload: [asdict(p)
                       for p in fig10_ecc_throughput.combine(panel_results)]
            for workload, panel_results in panels.items()}


def _fig11_build(scale: ReportScale) -> List[SweepTask]:
    return fig11_reconfig.tasks(num_blocks=scale.aging_blocks,
                                frames_per_block=scale.aging_frames)


def _fig11_combine(results: Sequence[SweepResult]) -> Any:
    return [asdict(row) for row in fig11_reconfig.combine(results)]


def _fig12_build(scale: ReportScale) -> List[SweepTask]:
    return fig12_lifetime.tasks(num_blocks=scale.aging_blocks,
                                frames_per_block=scale.aging_frames)


def _fig12_combine(results: Sequence[SweepResult]) -> Any:
    rows = fig12_lifetime.combine(results)
    return {
        "rows": [asdict(row) for row in rows],
        "average_improvement": fig12_lifetime.average_improvement(rows),
    }


def _fig13_build(scale: ReportScale) -> List[SweepTask]:
    return fig13_error_regimes.tasks(num_blocks=scale.aging_blocks,
                                     frames_per_block=scale.aging_frames)


def _fig13_combine(results: Sequence[SweepResult]) -> Any:
    return [asdict(row) for row in fig13_error_regimes.combine(results)]


def _fig14_build(scale: ReportScale) -> List[SweepTask]:
    return fig14_concurrency.tasks(
        scale_divisor=scale.scale_divisor,
        num_records=max(scale.trace_records // 3, 20_000))


def _fig14_combine(results: Sequence[SweepResult]) -> Any:
    return [asdict(row) for row in fig14_concurrency.combine(results)]


def _fig15_build(scale: ReportScale) -> List[SweepTask]:
    return fig15_cluster.tasks(
        duration_s=0.25 if scale.scale_divisor > 64 else 0.5)


def _fig15_combine(results: Sequence[SweepResult]) -> Any:
    return fig15_cluster.as_rows(fig15_cluster.combine(results))


def _fig16_build(scale: ReportScale) -> List[SweepTask]:
    return fig16_availability.tasks(
        duration_s=0.25 if scale.scale_divisor > 64 else 0.4)


def _fig16_combine(results: Sequence[SweepResult]) -> Any:
    return fig16_availability.as_rows(fig16_availability.combine(results))


SWEEPS: Dict[str, SweepSpec] = {
    "fig1b": SweepSpec("fig1b", "GC overhead vs occupancy",
                       _fig1b_build, _fig1b_combine),
    "fig4": SweepSpec("fig4", "split vs unified miss rate (dbt2)",
                      _fig4_build, _fig4_combine),
    "fig6": SweepSpec("fig6", "BCH latency and tolerable W/E cycles",
                      _fig6_build, _fig6_combine),
    "fig7": SweepSpec("fig7", "optimal SLC/MLC partition",
                      _fig7_build, _fig7_combine),
    "fig9": SweepSpec("fig9", "power breakdown and bandwidth",
                      _fig9_build, _fig9_combine),
    "fig10": SweepSpec("fig10", "throughput vs BCH strength",
                       _fig10_build, _fig10_combine),
    "fig11": SweepSpec("fig11", "reconfiguration breakdown",
                       _fig11_build, _fig11_combine),
    "fig12": SweepSpec("fig12", "lifetime extension",
                       _fig12_build, _fig12_combine),
    "fig13": SweepSpec("fig13", "error-regime robustness (lifetime, "
                       "UBER, scrub traffic)",
                       _fig13_build, _fig13_combine),
    "fig14": SweepSpec("fig14", "throughput and latency split vs "
                       "queue depth x channels",
                       _fig14_build, _fig14_combine),
    "fig15": SweepSpec("fig15", "cluster capacity and tail latency vs "
                       "shards x arrival rate",
                       _fig15_build, _fig15_combine),
    "fig16": SweepSpec("fig16", "cluster availability vs replication "
                       "under kill/cascade/repair chaos",
                       _fig16_build, _fig16_combine),
}


def sweep_id_for(selected: Sequence[str], scale: ReportScale,
                 tasks: Sequence[SweepTask]) -> str:
    """Identity of one configured sweep, for journal ownership checks.

    Folds the figure selection and the scale fingerprint into the label
    and every task's key/kwargs/seed into the digest, so a journal can
    only resume a sweep that would recompute the very same grid.

    The selection is canonicalised (sorted, deduplicated) before it is
    folded in: ``--figures fig9,fig4`` names the same sweep as
    ``--figures fig4,fig9``, so a resume with the figures spelled in a
    different order still owns its journal.  (``run_sweep`` applies the
    same canonicalisation to the task order, so the digest over the
    flattened grid agrees too.)
    """
    label = (f"figures={','.join(sorted(set(selected)))}"
             f"|{scale.fingerprint()}")
    return compute_sweep_id(tasks, label=label)


def run_sweep(figures: Optional[Sequence[str]] = None,
              scale: Optional[ReportScale] = None,
              workers: int = 1,
              progress: Optional[Callable[[SweepResult, int, int], None]]
              = None,
              journal_path: Optional[str] = None,
              resume: bool = False,
              timeout_s: Optional[float] = None,
              retries: int = 0) -> Dict[str, Any]:
    """Run the selected figure grids as one flattened parallel sweep.

    Returns a JSON-ready document: per-figure combined series plus a
    ``meta`` block (worker count, sweep id, per-figure task counts and
    timings, resume statistics, and any failed task keys with their
    tracebacks).  A figure whose tasks failed reports its error instead
    of aborting the others.

    ``journal_path`` makes the sweep durable; ``resume=True`` requires
    the journal to exist and to belong to this exact sweep (same
    figures, scale, and grids), replays its completed tasks, and re-runs
    only the rest.  The determinism contract extends to resumption:
    ``document["figures"]`` is byte-identical between an uninterrupted
    run and any interrupt/resume sequence.  ``meta`` carries volatile
    orchestration facts (elapsed time, resumed-task count) and is
    excluded from that contract.
    """
    scale = scale or ReportScale()
    # Canonical figure order: the selection is a *set* of grids, so
    # ``fig9,fig4`` must build the same flattened task list (and hence
    # the same sweep_id and journal identity) as ``fig4,fig9``.
    # ``document["figures"]`` is a dict keyed by figure name, so the
    # per-figure payloads are unaffected by this ordering.
    selected = sorted(set(figures or SWEEPS))
    unknown = set(selected) - set(SWEEPS)
    if unknown:
        raise KeyError(f"unknown sweep figures: {sorted(unknown)}; "
                       f"known: {', '.join(SWEEPS)}")
    grids = {name: SWEEPS[name].build(scale) for name in selected}
    flat: List[SweepTask] = [task for name in selected
                             for task in grids[name]]
    sweep_id = sweep_id_for(selected, scale, flat)

    journal: Optional[SweepJournal] = None
    replayed = 0
    if resume and journal_path is None:
        raise ValueError("resume=True requires a journal path")
    if journal_path is not None:
        if resume:
            journal = SweepJournal.resume(journal_path, sweep_id)
            replayed = sum(1 for e in journal.entries
                           if e["status"] == "ok")
        else:
            journal = SweepJournal.create(journal_path, sweep_id)

    policy = RetryPolicy(retries=retries, timeout_s=timeout_s)
    started = time.perf_counter()  # simlint: ignore[SIM001] -- sweep elapsed metadata
    results = sweep(flat, workers=workers, progress=progress,
                    policy=policy, journal=journal)
    elapsed = time.perf_counter() - started  # simlint: ignore[SIM001] -- sweep elapsed metadata

    document: Dict[str, Any] = {
        "meta": {
            "workers": workers,
            "sweep_id": sweep_id,
            "scale_divisor": scale.scale_divisor,
            "trace_records": scale.trace_records,
            "figures": selected,
            "tasks": len(flat),
            "resumed_tasks": replayed,
            "retries": retries,
            "timeout_s": timeout_s,
            "elapsed_s": round(elapsed, 3),
            "errors": {r.key: r.error for r in results if not r.ok},
            "attempts": {r.key: r.attempts for r in results
                         if r.attempts > 1},
        },
        "figures": {},
    }
    cursor = 0
    for name in selected:
        grid = grids[name]
        slice_results = results[cursor:cursor + len(grid)]
        cursor += len(grid)
        try:
            combined = SWEEPS[name].combine(slice_results)
        except Exception as exc:  # a failed task surfaced via unwrap()
            combined = {"error": str(exc)}
        document["figures"][name] = combined
    return document
