"""Figure 7: optimal access latency and SLC/MLC partition vs die area.

For Financial2 (443.8MB working set) and WebSearch1 (5116.7MB), the paper
sweeps Flash die area up to the full working set and reports, per area,
the latency-minimal SLC fraction and the latency it achieves.  The
reproduction evaluates the analytical partition optimizer over each
workload's popularity distribution.

Paper shapes to look for: Financial2's short tail makes a large (~70%)
SLC share optimal at half the working set, while WebSearch1 wants almost
pure MLC until the die approaches the full working set — where both snap
to 100% SLC and the latency floor of 25 us.

Spawn-safety: one sweep task per workload; the worker builds a fresh
popularity distribution and optimizer from the task's primitives.  The
exponential-tail rescaling below constructs a *new* spec instead of
mutating the shared ``MACRO_WORKLOADS`` entry, so the module-level
registry is never written to from any task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.density import DensityPartitionOptimizer, DensityPartitionPoint
from ..parallel import SweepResult, SweepTask, sweep
from ..workloads.macro import MACRO_WORKLOADS

__all__ = ["Fig7Series", "run_density_partition",
           "run_density_partition_suite", "FIG7_WORKLOADS",
           "tasks", "combine"]

FIG7_WORKLOADS = ("financial2", "websearch1")

#: Footprints are scaled to this many pages to keep popularity tables
#: small; die areas scale with them so the x axis stays proportional.
_SCALED_FOOTPRINT_PAGES = 1 << 17


@dataclass(frozen=True)
class Fig7Series:
    """One panel of Figure 7."""

    workload: str
    working_set_mb: float
    working_set_area_mm2: float
    points: List[DensityPartitionPoint]


def run_density_partition(
    workload: str,
    area_fractions: Sequence[float] = (0.05, 0.10, 0.25, 0.50, 0.75,
                                       1.00, 1.50, 2.00, 2.20),
    grid_points: int = 51,
) -> Fig7Series:
    """Sweep die area (as a fraction of the working-set area) for one
    workload and return the optimal-partition series."""
    spec = MACRO_WORKLOADS[workload]
    footprint = min(spec.footprint_pages, _SCALED_FOOTPRINT_PAGES)
    scale = spec.footprint_pages / footprint
    tail = spec.tail
    if tail[0] == "exp":
        tail = ("exp", tail[1] * scale)
        spec = type(spec)(
            name=spec.name, description=spec.description,
            footprint_bytes=spec.footprint_bytes,
            read_fraction=spec.read_fraction, tail=tail,
            sequential_write_fraction=spec.sequential_write_fraction)
    distribution = spec.make_distribution(footprint)
    optimizer = DensityPartitionOptimizer(distribution)
    full_area = optimizer.working_set_area_mm2
    areas = [max(full_area * fraction, 1e-3) for fraction in area_fractions]
    points = optimizer.figure_7_series(areas, grid_points=grid_points)
    return Fig7Series(
        workload=workload,
        working_set_mb=spec.footprint_bytes / (1 << 20),
        working_set_area_mm2=full_area * scale,
        points=points,
    )


def tasks(
    workloads: Sequence[str] = FIG7_WORKLOADS,
    area_fractions: Sequence[float] = (0.05, 0.10, 0.25, 0.50, 0.75,
                                       1.00, 1.50, 2.00, 2.20),
    grid_points: int = 51,
) -> List[SweepTask]:
    """One task per workload panel (the optimizer shares its popularity
    table across all die areas, so the panel is the natural unit)."""
    return [SweepTask(key=f"fig7:{workload}", fn=run_density_partition,
                      kwargs={"workload": workload,
                              "area_fractions": tuple(area_fractions),
                              "grid_points": grid_points})
            for workload in workloads]


def combine(results: Sequence[SweepResult]) -> List[Fig7Series]:
    return [result.unwrap() for result in results]


def run_density_partition_suite(
    workloads: Sequence[str] = FIG7_WORKLOADS,
    area_fractions: Sequence[float] = (0.05, 0.10, 0.25, 0.50, 0.75,
                                       1.00, 1.50, 2.00, 2.20),
    grid_points: int = 51,
    workers: int = 1,
) -> List[Fig7Series]:
    """All Figure 7 panels, in workload order."""
    return combine(sweep(tasks(workloads, area_fractions, grid_points),
                         workers=workers))


def main() -> None:
    for workload in FIG7_WORKLOADS:
        series = run_density_partition(workload)
        print(f"Figure 7 ({workload}): working set "
              f"{series.working_set_mb:.1f}MB")
        print(f"{'area mm^2':>10} {'SLC %':>7} {'latency us':>11}")
        for point in series.points:
            print(f"{point.die_area_mm2:10.1f} "
                  f"{point.optimal_slc_fraction:7.0%} "
                  f"{point.average_latency_us:11.1f}")
        print()


if __name__ == "__main__":
    main()
