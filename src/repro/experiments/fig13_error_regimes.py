"""Figure 13 (extension): controller robustness across error regimes.

The paper's lifetime study (Figure 12) ages cells with *wear* only.
This extension sweeps the full error-process model of
:mod:`repro.reliability` over three operating regimes — archival cold
data (retention-dominated), a write-hot tenant (wear- and
interference-dominated), and an already-aged device (everything
amplified) — and reports, per regime and controller:

* lifetime (host accesses sustained, and whether the device survived
  the full horizon at all),
* the uncorrectable-error rate (UBER over the probe-read bit volume),
* background scrub traffic (reads/rewrites/blocks refreshed), and
* the repair-choice mix (stronger ECC vs density reduction).

Each regime runs with the programmable controller (scrubbed and
unscrubbed) and the fixed BCH-1 baseline, so the output shows both what
the adaptive ladder buys over fixed ECC and what scrubbing buys on top.

Spawn-safety: one task per (regime, controller, scrub) cell; the worker
rebuilds the simulator from primitives and returns a plain dict.  All
cells share the experiment seed by design — the comparison must expose
identical devices to identical physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..parallel import SweepResult, SweepTask, sweep
from ..reliability import ScrubConfig
from ..sim.lifetime import simulate_regime, standard_regimes

__all__ = ["RegimeRow", "FIG13_REGIMES", "tasks", "combine",
           "run_error_regimes"]

#: The x axis: the canonical regimes of the fig13 sweep.
FIG13_REGIMES = ("archival_cold", "write_hot", "aged_device")

#: The per-regime variants: (label, controller, scrub on?).
_VARIANTS = (
    ("programmable+scrub", "programmable", True),
    ("programmable", "programmable", False),
    ("bch1", "bch1", False),
)

#: Scrub cadence used by the scrubbed variant (device time).
_SCRUB = {"interval_us": 5e9, "min_age_us": 1e10, "max_pages_per_pass": 256}


@dataclass(frozen=True)
class RegimeRow:
    """One (regime, variant) cell of the comparison table."""

    regime: str
    variant: str
    survived: bool
    steps_run: int
    host_accesses: float
    uncorrectable_reads: int
    uber: float
    scrub_reads: int
    scrub_rewrites: int
    blocks_refreshed: int
    repair_mix: Dict[str, float] = field(default_factory=dict)


def _regime_task(regime: str, controller: str, scrub: bool, seed: int,
                 config_overrides: Optional[dict] = None) -> Dict[str, Any]:
    """Worker entry point: one regime run, reduced to a plain dict."""
    scrub_config = ScrubConfig(**_SCRUB) if scrub else None
    result = simulate_regime(regime, controller, seed=seed,
                             scrub=scrub_config,
                             **(config_overrides or {}))
    scrub_stats = result.scrub
    return {
        "survived": result.survived,
        "steps_run": result.steps_run,
        "host_accesses": result.host_accesses,
        "uncorrectable_reads": result.uncorrectable_reads,
        "uber": result.uber,
        "scrub_reads": scrub_stats.scrub_reads if scrub_stats else 0,
        "scrub_rewrites": scrub_stats.page_rewrites if scrub_stats else 0,
        "blocks_refreshed": (scrub_stats.blocks_refreshed
                             if scrub_stats else 0),
        "repair_mix": result.repair_breakdown,
    }


def tasks(
    regimes: Sequence[str] = FIG13_REGIMES,
    seed: int = 42,
    **config_overrides,
) -> List[SweepTask]:
    """The fig13 grid, one task per (regime, variant) cell."""
    jobs: List[SweepTask] = []
    for regime in regimes:
        if regime not in standard_regimes():
            raise KeyError(f"unknown regime {regime!r}; known: "
                           f"{', '.join(standard_regimes())}")
        for label, controller, scrub in _VARIANTS:
            jobs.append(SweepTask(
                key=f"fig13:{regime}:{label}", fn=_regime_task,
                kwargs={"regime": regime, "controller": controller,
                        "scrub": scrub, "seed": seed,
                        "config_overrides": dict(config_overrides)}))
    return jobs


def combine(results: Sequence[SweepResult]) -> List[RegimeRow]:
    """Flatten the grid into ordered comparison rows."""
    rows: List[RegimeRow] = []
    for result in results:
        _, regime, variant = result.key.split(":")
        data = result.unwrap()
        rows.append(RegimeRow(regime=regime, variant=variant, **data))
    return rows


def run_error_regimes(
    regimes: Sequence[str] = FIG13_REGIMES,
    seed: int = 42,
    workers: int = 1,
    **config_overrides,
) -> List[RegimeRow]:
    """The full fig13 sweep."""
    return combine(sweep(tasks(regimes, seed, **config_overrides),
                         workers=workers))


def main() -> None:
    rows = run_error_regimes()
    print("Figure 13: controller robustness across error regimes")
    print(f"{'regime':>14} {'variant':>19} {'alive':>6} {'host acc':>10} "
          f"{'uncorr':>7} {'UBER':>9} {'scrubbed':>9}")
    for row in rows:
        print(f"{row.regime:>14} {row.variant:>19} "
              f"{'yes' if row.survived else 'no':>6} "
              f"{row.host_accesses:10.3g} {row.uncorrectable_reads:7d} "
              f"{row.uber:9.2e} {row.scrub_rewrites:9d}")


if __name__ == "__main__":
    main()
