"""Figure 10: server throughput as a function of BCH code strength.

As Flash wears, the controller raises ECC strength everywhere; the decode
latency rides on every Flash read.  The paper sweeps a *uniform* code
strength from 0 to 50 correctable bits on the 256MB-DRAM + 1GB-Flash
platform and reports bandwidth relative to the no-ECC point, for
SPECWeb99 and dbt2.  Expected shape: graceful degradation, with the
disk-bound dbt2 falling off harder past ~15 bits.

The sweep reruns the scaled platform with a fixed-strength controller per
point and converts storage behaviour to throughput with the closed-loop
server model.

Spawn-safety: one task per code strength; the worker rebuilds workload,
platform, and controller from the task's primitives.  The ECC-disabled
reference point pre-loads the decode/encode latency caches of *its own
freshly built* controller — per-task state, never a shared object.  All
strengths deliberately share the experiment seed: the figure replays one
identical trace per workload so the throughput delta isolates the code
strength.  Relative bandwidth is computed in :func:`combine` (parent
process) against the weakest strength in the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.controller import ControllerConfig
from ..core.hierarchy import build_flash_system
from ..ecc.latency import AcceleratorConfig, BCHLatencyModel
from ..parallel import SweepResult, SweepTask, sweep
from ..sim.engine import run_trace
from ..sim.server import ServerModel
from ..workloads.macro import build_workload
from ..workloads.trace import PAGE_BYTES

__all__ = ["ThroughputPoint", "run_ecc_throughput_sweep",
           "PAPER_STRENGTHS", "tasks", "combine"]

#: The x axis of Figure 10 (0 = ECC disabled reference point).
PAPER_STRENGTHS = (0, 1, 5, 10, 15, 20, 30, 40, 50)


@dataclass(frozen=True)
class ThroughputPoint:
    strength: int
    average_latency_us: float
    flash_busy_us_per_request: float
    relative_bandwidth: float


def _run_at_strength(workload: str, strength: int, scale_divisor: int,
                     num_records: int, seed: int) -> tuple[float, float]:
    """(avg storage latency, flash busy per request) at one strength."""
    footprint_bytes = {"dbt2": 2 << 30,
                       "specweb99": int(1.8 * (1 << 30))}[workload]
    footprint_pages = footprint_bytes // scale_divisor // PAGE_BYTES
    records = build_workload(workload, num_records=num_records, seed=seed,
                             footprint_pages=footprint_pages)
    controller_config = ControllerConfig(
        max_ecc_strength=max(strength, 1),
        initial_ecc_strength=max(strength, 1),
    )
    system = build_flash_system(
        dram_bytes=(256 << 20) // scale_divisor,
        flash_bytes=(1 << 30) // scale_divisor,
        controller_config=controller_config,
    )
    # The controller hardware limit is 12 in the paper; strengths beyond
    # that are simulated "to fully capture the performance trends"
    # (section 7.2), so widen the accelerator model accordingly.
    system.flash.controller.latency_model = BCHLatencyModel(
        AcceleratorConfig(max_t=64))
    if strength == 0:
        # ECC disabled: zero decode/encode latency reference.
        system.flash.controller._decode_cache = {strength: 0.0}
        system.flash.controller._encode_cache = {strength: 0.0}
        for t in range(1, 65):
            system.flash.controller._decode_cache[t] = 0.0
            system.flash.controller._encode_cache[t] = 0.0
    report = run_trace(system, records)
    flash_busy = system.flash.controller.device.stats.busy_us
    decode_busy = 0.0
    if strength > 0:
        decode_model = system.flash.controller.latency_model
        decode_busy = (system.flash.controller.stats.reads
                       * decode_model.decode_us(strength))
    busy_per_request = (flash_busy + decode_busy) / max(report.requests, 1)
    return report.average_latency_us, busy_per_request


def _strength_task(workload: str, strength: int, scale_divisor: int,
                   num_records: int, seed: int
                   ) -> Tuple[int, float, float]:
    """Worker entry point: one strength's (strength, latency, busy)."""
    latency, busy = _run_at_strength(
        workload, strength, scale_divisor, num_records, seed)
    return strength, latency, busy


def tasks(
    workload: str = "specweb99",
    strengths: Sequence[int] = PAPER_STRENGTHS,
    scale_divisor: int = 64,
    num_records: int = 60_000,
    seed: int = 17,
) -> List[SweepTask]:
    """The Figure 10 grid for one workload, one task per code strength."""
    return [SweepTask(key=f"fig10:{workload}:t={strength}",
                      fn=_strength_task,
                      kwargs={"workload": workload, "strength": strength,
                              "scale_divisor": scale_divisor,
                              "num_records": num_records, "seed": seed})
            for strength in strengths]


def combine(results: Sequence[SweepResult],
            server: ServerModel | None = None) -> List[ThroughputPoint]:
    """Normalise each strength's throughput to the weakest in the grid."""
    server = server or ServerModel()
    samples: Dict[int, tuple[float, float]] = {}
    order: List[int] = []
    for result in results:
        strength, latency, busy = result.unwrap()
        samples[strength] = (latency, busy)
        order.append(strength)
    base_latency, base_busy = samples[min(order)]
    base_throughput = server.throughput_rps(base_latency, base_busy)
    points: List[ThroughputPoint] = []
    for strength in order:
        latency, busy = samples[strength]
        throughput = server.throughput_rps(latency, busy)
        points.append(ThroughputPoint(
            strength=strength,
            average_latency_us=latency,
            flash_busy_us_per_request=busy,
            relative_bandwidth=throughput / base_throughput,
        ))
    return points


def run_ecc_throughput_sweep(
    workload: str = "specweb99",
    strengths: Sequence[int] = PAPER_STRENGTHS,
    scale_divisor: int = 64,
    num_records: int = 60_000,
    seed: int = 17,
    server: ServerModel | None = None,
    workers: int = 1,
) -> List[ThroughputPoint]:
    """Figure 10 sweep for one workload."""
    return combine(
        sweep(tasks(workload, strengths, scale_divisor, num_records, seed),
              workers=workers),
        server=server)


def main() -> None:
    for workload in ("specweb99", "dbt2"):
        print(f"Figure 10 ({workload}): relative bandwidth vs BCH strength")
        print(f"{'t':>3} {'latency us':>11} {'busy/req us':>12} {'rel bw':>7}")
        for point in run_ecc_throughput_sweep(workload):
            print(f"{point.strength:>3} {point.average_latency_us:11.1f} "
                  f"{point.flash_busy_us_per_request:12.1f} "
                  f"{point.relative_bandwidth:7.3f}")
        print()


if __name__ == "__main__":
    main()
