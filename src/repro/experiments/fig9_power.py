"""Figure 9: system memory + disk power and network bandwidth.

Two platform pairs, each run on its macro workload:

* dbt2:      512MB DRAM + disk   vs  256MB DRAM + 1GB Flash + disk
* SPECWeb99: 512MB DRAM + disk   vs  128MB DRAM + 2GB Flash + disk

(the paper pairs equal die area: Flash is ~2x denser than DRAM per Table
1, so 256MB of DRAM trades for ~1GB of MLC Flash).  Reported per
configuration: memory read/write/idle power, disk power, and the achieved
network bandwidth normalised to the DRAM-only baseline.  Shapes to match:
the Flash configuration cuts combined memory+disk power by ~2-3x while
holding or improving bandwidth.

All capacities and footprints are scaled down by a common divisor for
simulation speed; power *ratios* survive scaling because busy fractions
and hit rates are preserved.

Seed discipline: the power delta must isolate the architecture, not
workload noise, so **both platform arms replay byte-identical traces** —
the same measurement stream (built from the experiment seed) and the
same warmup stream (built from one seed derived via
:func:`repro.parallel.derive_seed`, shared by both arms; warmup and
measurement use distinct streams so the steady state is not a literal
replay of the cache contents).  The arm tasks therefore carry *equal*
seeds on purpose; deriving per-arm seeds here would silently put the two
bars on different workloads.

Spawn-safety: each arm is one task; the worker rebuilds its workload
streams and platform from picklable primitives, and ``FIG9_CONFIGS`` is
a registry of frozen dataclasses nothing mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.hierarchy import DramOnlySystem, SystemConfig, build_flash_system
from ..parallel import SweepResult, SweepTask, derive_seed, sweep
from ..power.models import PowerBreakdown
from ..sim.engine import SimulationReport, run_trace
from ..workloads.macro import build_workload
from ..workloads.trace import PAGE_BYTES

__all__ = ["Fig9Config", "Fig9Result", "FIG9_CONFIGS",
           "run_power_comparison", "tasks", "combine"]


@dataclass(frozen=True)
class Fig9Config:
    """One Figure 9 panel: a workload and its two platforms."""

    workload: str
    footprint_bytes: int
    baseline_dram_bytes: int
    flash_dram_bytes: int
    flash_bytes: int


FIG9_CONFIGS: Dict[str, Fig9Config] = {
    "dbt2": Fig9Config(
        workload="dbt2",
        footprint_bytes=2 << 30,
        baseline_dram_bytes=512 << 20,
        flash_dram_bytes=256 << 20,
        flash_bytes=1 << 30,
    ),
    "specweb99": Fig9Config(
        workload="specweb99",
        footprint_bytes=int(1.8 * (1 << 30)),
        baseline_dram_bytes=512 << 20,
        flash_dram_bytes=128 << 20,
        flash_bytes=2 << 30,
    ),
}


@dataclass(frozen=True)
class Fig9Result:
    """Both bars of one panel plus the normalised bandwidth."""

    workload: str
    baseline: PowerBreakdown
    flash: PowerBreakdown

    @property
    def power_ratio(self) -> float:
        """Baseline power over Flash-config power (paper: up to ~3x)."""
        return self.baseline.total_w / self.flash.total_w

    @property
    def relative_bandwidth(self) -> float:
        """Flash-config bandwidth normalised to the baseline."""
        return (self.flash.throughput_rps
                / max(self.baseline.throughput_rps, 1e-9))


def warmup_seed(seed: int) -> int:
    """The warmup stream's seed, shared by both platform arms.

    Derived (not ``seed + 1``) so it cannot collide with another
    experiment's measurement stream, and computed once from the
    experiment seed so every arm warms up on the identical trace.
    """
    return derive_seed(seed, "fig9:warmup")


def _arm_task(workload: str, arm: str, scale_divisor: int,
              num_records: int, warmup_records: int,
              seed: int) -> PowerBreakdown:
    """Worker entry point: one platform arm of one Figure 9 panel.

    The platform first replays the warmup stream to populate its caches,
    then resets the time/energy accounting and measures the steady state
    on the measurement stream — the regime Figure 9 reports.  Both arms
    receive the same ``seed``, so both build byte-identical streams.
    """
    config = FIG9_CONFIGS[workload]
    footprint_pages = max(config.footprint_bytes // scale_divisor
                          // PAGE_BYTES, 1)
    warmup = build_workload(config.workload, num_records=warmup_records,
                            seed=warmup_seed(seed),
                            footprint_pages=footprint_pages)
    records = build_workload(config.workload, num_records=num_records,
                             seed=seed, footprint_pages=footprint_pages)
    if arm == "baseline":
        system = DramOnlySystem(SystemConfig(
            dram_bytes=max(config.baseline_dram_bytes // scale_divisor,
                           PAGE_BYTES),
            power_model_dram_bytes=config.baseline_dram_bytes))
    elif arm == "flash":
        system = build_flash_system(
            dram_bytes=max(config.flash_dram_bytes // scale_divisor,
                           PAGE_BYTES),
            flash_bytes=max(config.flash_bytes // scale_divisor, 1 << 20),
            power_model_dram_bytes=config.flash_dram_bytes,
        )
    else:
        raise ValueError(f"unknown arm {arm!r}")
    system.run(warmup)
    system.reset_measurement()
    report: SimulationReport = run_trace(system, records)
    return report.power


def tasks(workload: str = "dbt2",
          scale_divisor: int = 64,
          num_records: int = 150_000,
          warmup_records: int = 100_000,
          seed: int = 13) -> List[SweepTask]:
    """One Figure 9 panel as two arm tasks.

    Both tasks carry the *same* seed by design — see the module
    docstring's seed discipline.
    """
    return [
        SweepTask(key=f"fig9:{workload}:{arm}", fn=_arm_task,
                  kwargs={"workload": workload, "arm": arm,
                          "scale_divisor": scale_divisor,
                          "num_records": num_records,
                          "warmup_records": warmup_records,
                          "seed": seed})
        for arm in ("baseline", "flash")
    ]


def combine(results: Sequence[SweepResult]) -> Fig9Result:
    """Assemble one panel's two arm results into the figure row."""
    by_arm = {result.key.rsplit(":", 1)[1]: result.unwrap()
              for result in results}
    workload = results[0].key.split(":")[1]
    return Fig9Result(
        workload=workload,
        baseline=by_arm["baseline"],
        flash=by_arm["flash"],
    )


def run_power_comparison(workload: str = "dbt2",
                         scale_divisor: int = 64,
                         num_records: int = 150_000,
                         warmup_records: int = 100_000,
                         seed: int = 13,
                         workers: int = 1) -> Fig9Result:
    """Run one Figure 9 panel (both platform configurations)."""
    return combine(sweep(
        tasks(workload, scale_divisor, num_records, warmup_records, seed),
        workers=workers))


def main() -> None:
    for workload in FIG9_CONFIGS:
        result = run_power_comparison(workload)
        print(f"Figure 9 ({workload})")
        for label, power in (("DRAM-only", result.baseline),
                             ("DRAM+Flash", result.flash)):
            print(f"  {label:11s} rd={power.mem_read_w:6.3f}W "
                  f"wr={power.mem_write_w:6.3f}W "
                  f"idle={power.mem_idle_w:6.3f}W "
                  f"disk={power.disk_w:6.3f}W "
                  f"total={power.total_w:6.3f}W")
        print(f"  power ratio {result.power_ratio:.2f}x, "
              f"relative bandwidth {result.relative_bandwidth:.2f}")
        print()


if __name__ == "__main__":
    main()
