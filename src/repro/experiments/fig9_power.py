"""Figure 9: system memory + disk power and network bandwidth.

Two platform pairs, each run on its macro workload:

* dbt2:      512MB DRAM + disk   vs  256MB DRAM + 1GB Flash + disk
* SPECWeb99: 512MB DRAM + disk   vs  128MB DRAM + 2GB Flash + disk

(the paper pairs equal die area: Flash is ~2x denser than DRAM per Table
1, so 256MB of DRAM trades for ~1GB of MLC Flash).  Reported per
configuration: memory read/write/idle power, disk power, and the achieved
network bandwidth normalised to the DRAM-only baseline.  Shapes to match:
the Flash configuration cuts combined memory+disk power by ~2-3x while
holding or improving bandwidth.

All capacities and footprints are scaled down by a common divisor for
simulation speed; power *ratios* survive scaling because busy fractions
and hit rates are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.hierarchy import DramOnlySystem, SystemConfig, build_flash_system
from ..power.models import PowerBreakdown
from ..sim.engine import SimulationReport, run_trace
from ..workloads.macro import build_workload
from ..workloads.trace import PAGE_BYTES

__all__ = ["Fig9Config", "Fig9Result", "FIG9_CONFIGS", "run_power_comparison"]


@dataclass(frozen=True)
class Fig9Config:
    """One Figure 9 panel: a workload and its two platforms."""

    workload: str
    footprint_bytes: int
    baseline_dram_bytes: int
    flash_dram_bytes: int
    flash_bytes: int


FIG9_CONFIGS: Dict[str, Fig9Config] = {
    "dbt2": Fig9Config(
        workload="dbt2",
        footprint_bytes=2 << 30,
        baseline_dram_bytes=512 << 20,
        flash_dram_bytes=256 << 20,
        flash_bytes=1 << 30,
    ),
    "specweb99": Fig9Config(
        workload="specweb99",
        footprint_bytes=int(1.8 * (1 << 30)),
        baseline_dram_bytes=512 << 20,
        flash_dram_bytes=128 << 20,
        flash_bytes=2 << 30,
    ),
}


@dataclass(frozen=True)
class Fig9Result:
    """Both bars of one panel plus the normalised bandwidth."""

    workload: str
    baseline: PowerBreakdown
    flash: PowerBreakdown

    @property
    def power_ratio(self) -> float:
        """Baseline power over Flash-config power (paper: up to ~3x)."""
        return self.baseline.total_w / self.flash.total_w

    @property
    def relative_bandwidth(self) -> float:
        """Flash-config bandwidth normalised to the baseline."""
        return (self.flash.throughput_rps
                / max(self.baseline.throughput_rps, 1e-9))


def run_power_comparison(workload: str = "dbt2",
                         scale_divisor: int = 64,
                         num_records: int = 150_000,
                         warmup_records: int = 100_000,
                         seed: int = 13) -> Fig9Result:
    """Run one Figure 9 panel (both platform configurations).

    Each platform first replays ``warmup_records`` to populate its caches,
    then resets the time/energy accounting and measures the steady state —
    the regime Figure 9 reports.
    """
    config = FIG9_CONFIGS[workload]
    footprint_pages = max(config.footprint_bytes // scale_divisor
                          // PAGE_BYTES, 1)
    warmup = build_workload(config.workload, num_records=warmup_records,
                            seed=seed + 1, footprint_pages=footprint_pages)
    records = build_workload(config.workload, num_records=num_records,
                             seed=seed, footprint_pages=footprint_pages)

    baseline_system = DramOnlySystem(SystemConfig(
        dram_bytes=max(config.baseline_dram_bytes // scale_divisor,
                       PAGE_BYTES),
        power_model_dram_bytes=config.baseline_dram_bytes))
    baseline_system.run(warmup)
    baseline_system.reset_measurement()
    baseline_report: SimulationReport = run_trace(baseline_system, records)

    flash_system = build_flash_system(
        dram_bytes=max(config.flash_dram_bytes // scale_divisor, PAGE_BYTES),
        flash_bytes=max(config.flash_bytes // scale_divisor, 1 << 20),
        power_model_dram_bytes=config.flash_dram_bytes,
    )
    flash_system.run(warmup)
    flash_system.reset_measurement()
    flash_report = run_trace(flash_system, records)

    return Fig9Result(
        workload=workload,
        baseline=baseline_report.power,
        flash=flash_report.power,
    )


def main() -> None:
    for workload in FIG9_CONFIGS:
        result = run_power_comparison(workload)
        print(f"Figure 9 ({workload})")
        for label, power in (("DRAM-only", result.baseline),
                             ("DRAM+Flash", result.flash)):
            print(f"  {label:11s} rd={power.mem_read_w:6.3f}W "
                  f"wr={power.mem_write_w:6.3f}W "
                  f"idle={power.mem_idle_w:6.3f}W "
                  f"disk={power.disk_w:6.3f}W "
                  f"total={power.total_w:6.3f}W")
        print(f"  power ratio {result.power_ratio:.2f}x, "
              f"relative bandwidth {result.relative_bandwidth:.2f}")
        print()


if __name__ == "__main__":
    main()
