"""Figure 4: miss rate of unified vs split Flash disk caches (dbt2/OLTP).

The paper replays a dbt2 disk trace against Flash sizes from 128MB to
640MB and shows the split read/write organisation beating the unified
cache, with the gap widening as the cache grows.  We replay the same
sweep, scaled by a constant factor so the runs stay laptop-sized — the
miss-rate *ratio* between organisations depends on the cache:working-set
proportion, which the scaling preserves (the paper itself scaled all
benchmarks for its simulator, section 6.1).

Spawn-safety: every (size, organisation) pair is an independent sweep
task.  Workers rebuild the dbt2 disk trace and their cache stack from
the task's primitives — nothing is shared or mutated across tasks — and
every pair deliberately carries the *same* experiment seed, because the
figure replays one identical trace against each configuration (the
miss-rate delta must isolate the cache organisation, not workload
noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

from ..core.cache import FlashCacheConfig, FlashDiskCache
from ..core.controller import ProgrammableFlashController
from ..flash.device import FlashDevice
from ..flash.geometry import FlashGeometry
from ..flash.timing import CellMode
from ..parallel import SweepResult, SweepTask, merge_telemetry, sweep
from ..telemetry import Telemetry
from ..workloads.macro import build_workload
from ..workloads.postpdc import derive_disk_trace
from ..workloads.trace import PAGE_BYTES, TraceRecord

__all__ = ["SplitMissPoint", "replay_disk_trace", "run_split_sweep",
           "run_split_timeline", "PAPER_FLASH_SIZES_MB", "SCALE_DIVISOR",
           "tasks", "combine", "timeline_tasks", "combine_timeline"]

#: The x axis of Figure 4.
PAPER_FLASH_SIZES_MB = (128, 256, 384, 512, 640)
#: Scale-down divisor applied to Flash sizes and the dbt2 footprint.
SCALE_DIVISOR = 32


@dataclass(frozen=True)
class SplitMissPoint:
    """Miss rates at one Flash size."""

    flash_mb_paper_scale: int
    unified_miss_rate: float
    split_miss_rate: float

    @property
    def improvement(self) -> float:
        """Absolute miss-rate reduction from splitting."""
        return self.unified_miss_rate - self.split_miss_rate


def replay_disk_trace(cache: FlashDiskCache,
                      records: Sequence[TraceRecord],
                      flush_interval: int = 10_000,
                      telemetry: Optional[Telemetry] = None,
                      series_prefix: str = "") -> None:
    """Feed a disk-level trace straight into the Flash disk cache.

    Figure 4 measures the Flash cache in isolation (the trace is what
    reaches the secondary cache below the PDC): reads that miss are filled
    from disk, writes append to the cache.  Every ``flush_interval``
    records the dirty pages flush to disk (section 5.1: "The disk is
    eventually updated by flushing the write disk cache"), which keeps
    write-cache evictions cheap the way the OS's periodic write-back does.

    With a ``telemetry`` handle the cache stack is instrumented and the
    cumulative miss rate and used-capacity fraction are sampled into the
    ``{series_prefix}miss_rate`` / ``{series_prefix}used_fraction``
    time-series every ``telemetry.sample_interval`` accesses — the
    warm-up curve behind the Figure 4 endpoints.
    """
    if telemetry is not None:
        telemetry.attach_cache(cache)
        next_sample = telemetry.sample_interval
        miss_series = telemetry.series(f"{series_prefix}miss_rate")
        used_series = telemetry.series(f"{series_prefix}used_fraction")
    count = 0
    for record in records:
        for page in record.expand():
            if record.is_read:
                outcome = cache.read(page)
                if outcome is None or not outcome.recovered:
                    cache.insert_clean(page)
            else:
                cache.write(page)
            count += 1
            if flush_interval and count % flush_interval == 0:
                cache.flush()
            if telemetry is not None and count >= next_sample:
                miss_series.append(count, cache.stats.miss_rate)
                used_series.append(count, cache.used_fraction())
                next_sample += telemetry.sample_interval
    if telemetry is not None:
        telemetry.harvest_cache_counters(cache)


def _build_cache(flash_bytes: int, split: bool,
                 frames_per_block: int = 8) -> FlashDiskCache:
    # Scaled-down caches shrink the *block size* along with capacity so the
    # block count — which sets how many blocks the 10% write region gets
    # and how much GC freedom exists — stays representative of the paper's
    # full-size configuration.
    geometry = FlashGeometry.for_capacity(
        flash_bytes, mode=CellMode.MLC, frames_per_block=frames_per_block)
    device = FlashDevice(geometry=geometry, initial_mode=CellMode.MLC)
    controller = ProgrammableFlashController(device)
    # The unified baseline is the paper's "naively managed" out-of-place
    # write cache (section 3.5): invalid holes accumulate across all
    # blocks and only LRU eviction reclaims space, so effective capacity
    # decays.  The split organisation confines the holes to the small
    # write region, where its garbage collector keeps up easily.
    budget = 0.0 if not split else None
    return FlashDiskCache(
        controller,
        FlashCacheConfig(split=split, hot_promotion=False,
                         gc_move_budget=budget),
    )


@lru_cache(maxsize=2)
def _disk_trace(scale_divisor: int, num_records: int,
                seed: int) -> tuple:
    """The figure's input: the raw dbt2 stream filtered through a scaled
    256MB page cache, exactly how the paper captured its dbt2 disk trace
    from the full-system simulator.

    Memoised per process (the records are immutable) so the serial path
    derives it once for the whole grid, as the original loop did, and
    each pool worker derives it once per process instead of once per
    task.  Deterministic in its arguments, so caching cannot change
    results.
    """
    footprint_pages = (2 << 30) // scale_divisor // PAGE_BYTES  # dbt2 2GB
    raw = build_workload("dbt2", num_records=num_records, seed=seed,
                         footprint_pages=footprint_pages)
    pdc_pages = (256 << 20) // scale_divisor // PAGE_BYTES
    return tuple(derive_disk_trace(raw, pdc_pages))


def _miss_rate_task(flash_mb: int, split: bool, scale_divisor: int,
                    num_records: int, seed: int) -> float:
    """Worker entry point: one (size, organisation) pair's miss rate."""
    records = _disk_trace(scale_divisor, num_records, seed)
    cache = _build_cache(flash_mb * (1 << 20) // scale_divisor, split)
    replay_disk_trace(cache, records)
    return cache.stats.miss_rate


def tasks(
    flash_sizes_mb: Sequence[int] = PAPER_FLASH_SIZES_MB,
    scale_divisor: int = SCALE_DIVISOR,
    num_records: int = 600_000,
    seed: int = 11,
) -> List[SweepTask]:
    """The Figure 4 grid: one task per (size, organisation) pair."""
    return [
        SweepTask(key=f"fig4:{size_mb}mb:{'split' if split else 'unified'}",
                  fn=_miss_rate_task,
                  kwargs={"flash_mb": size_mb, "split": split,
                          "scale_divisor": scale_divisor,
                          "num_records": num_records, "seed": seed})
        for size_mb in flash_sizes_mb
        for split in (False, True)
    ]


def combine(results: Sequence[SweepResult]) -> List[SplitMissPoint]:
    """Pair each size's unified/split miss rates back into figure points."""
    rates = {result.key: result.unwrap() for result in results}
    points: List[SplitMissPoint] = []
    for key in rates:
        if not key.endswith(":unified"):
            continue
        size_mb = int(key.split(":")[1].removesuffix("mb"))
        points.append(SplitMissPoint(
            flash_mb_paper_scale=size_mb,
            unified_miss_rate=rates[key],
            split_miss_rate=rates[f"fig4:{size_mb}mb:split"],
        ))
    return points


def run_split_sweep(
    flash_sizes_mb: Sequence[int] = PAPER_FLASH_SIZES_MB,
    scale_divisor: int = SCALE_DIVISOR,
    num_records: int = 600_000,
    seed: int = 11,
    workers: int = 1,
) -> List[SplitMissPoint]:
    """The Figure 4 sweep: dbt2 disk trace, unified vs split, per size."""
    return combine(sweep(
        tasks(flash_sizes_mb, scale_divisor, num_records, seed),
        workers=workers))


def _timeline_task(flash_mb: int, split: bool, scale_divisor: int,
                   num_records: int, seed: int,
                   sample_interval: int) -> Telemetry:
    """Worker entry point: one organisation's warm-up telemetry."""
    records = _disk_trace(scale_divisor, num_records, seed)
    cache = _build_cache(flash_mb * (1 << 20) // scale_divisor, split)
    telemetry = Telemetry(sample_interval=sample_interval)
    replay_disk_trace(cache, records, telemetry=telemetry,
                      series_prefix="split_" if split else "unified_")
    return telemetry


def timeline_tasks(
    flash_mb: int = 256,
    scale_divisor: int = SCALE_DIVISOR,
    num_records: int = 120_000,
    seed: int = 11,
    sample_interval: int = 10_000,
) -> List[SweepTask]:
    """One task per organisation; each returns its own telemetry handle."""
    return [
        SweepTask(key=f"fig4tl:{'split' if split else 'unified'}",
                  fn=_timeline_task,
                  kwargs={"flash_mb": flash_mb, "split": split,
                          "scale_divisor": scale_divisor,
                          "num_records": num_records, "seed": seed,
                          "sample_interval": sample_interval})
        for split in (False, True)
    ]


def combine_timeline(results: Sequence[SweepResult]) -> Telemetry:
    """Merge the per-organisation telemetry handles into one.

    Each arm samples into prefix-distinct series and its own histograms;
    merging (counters add, histograms merge, series concatenate) yields
    exactly the handle a serial run sharing one telemetry object across
    both arms produces.
    """
    return merge_telemetry(result.unwrap() for result in results)


def run_split_timeline(
    flash_mb: int = 256,
    scale_divisor: int = SCALE_DIVISOR,
    num_records: int = 120_000,
    seed: int = 11,
    sample_interval: int = 10_000,
    workers: int = 1,
) -> Telemetry:
    """Miss-rate-over-trace-position view of the Figure 4 story.

    Replays the same disk trace against a unified and a split cache of
    one size, sampling the cumulative miss rate as the caches warm and
    the unified organisation's invalid holes accumulate.  Series:
    ``unified_miss_rate``, ``split_miss_rate`` (plus the matching
    ``*_used_fraction``).
    """
    return combine_timeline(sweep(
        timeline_tasks(flash_mb, scale_divisor, num_records, seed,
                       sample_interval),
        workers=workers))


def main() -> None:
    print("Figure 4: dbt2 Flash miss rate, unified vs split")
    print(f"{'flash':>8} {'unified':>9} {'split':>9} {'delta':>8}")
    for point in run_split_sweep():
        print(f"{point.flash_mb_paper_scale:>6}MB "
              f"{point.unified_miss_rate:9.3%} {point.split_miss_rate:9.3%} "
              f"{point.improvement:8.3%}")
    telemetry = run_split_timeline()
    unified = telemetry.timeseries["unified_miss_rate"]
    split = telemetry.timeseries["split_miss_rate"]
    print()
    print("Warm-up timeline (256MB paper scale): cumulative miss rate")
    print(f"{'position':>9} {'unified':>9} {'split':>9}")
    for index, position in enumerate(unified.xs):
        print(f"{int(position):>9} {unified.ys[index]:9.3%} "
              f"{split.ys[index]:9.3%}")


if __name__ == "__main__":
    main()
