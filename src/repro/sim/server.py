"""Server throughput model (network-bandwidth proxy).

The paper measures dbt2 and SPECWeb99 *network bandwidth* on an 8-core M5
platform (Table 3).  In a storage-bound server the sustained request rate
is set by three ceilings, and bandwidth is proportional to whichever binds
first:

* **closed-loop latency**: with ``concurrency`` in-flight clients each
  request costs CPU work plus the storage-stack latency;
* **CPU**: at most ``cores / cpu_us`` requests per microsecond;
* **device saturation**: a request cannot complete faster than the
  storage bottleneck's busy time per request (this is how BCH decode
  latency, which occupies the Flash controller, degrades throughput in
  Figure 10 even when individual request latency barely moves).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerModel"]


@dataclass(frozen=True)
class ServerModel:
    """Closed-loop multi-core server throughput."""

    cores: int = 8
    concurrency: int = 64
    cpu_us_per_request: float = 50.0
    response_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.cores < 1 or self.concurrency < 1:
            raise ValueError("cores and concurrency must be >= 1")
        if self.cpu_us_per_request <= 0:
            raise ValueError("cpu_us_per_request must be positive")

    def throughput_rps(self, storage_latency_us: float,
                       bottleneck_busy_us_per_request: float = 0.0) -> float:
        """Sustained requests/second for the given storage behaviour."""
        if storage_latency_us < 0 or bottleneck_busy_us_per_request < 0:
            raise ValueError("latencies must be non-negative")
        request_time_us = self.cpu_us_per_request + storage_latency_us
        closed_loop = self.concurrency / request_time_us
        cpu_bound = self.cores / self.cpu_us_per_request
        rate_per_us = min(closed_loop, cpu_bound)
        if bottleneck_busy_us_per_request > 0:
            rate_per_us = min(rate_per_us,
                              1.0 / bottleneck_busy_us_per_request)
        return rate_per_us * 1e6

    def network_bandwidth_bytes_per_s(
            self, storage_latency_us: float,
            bottleneck_busy_us_per_request: float = 0.0) -> float:
        return self.response_bytes * self.throughput_rps(
            storage_latency_us, bottleneck_busy_us_per_request)

    def relative_bandwidth(self, baseline_latency_us: float,
                           latency_us: float,
                           baseline_busy_us: float = 0.0,
                           busy_us: float = 0.0) -> float:
        """Bandwidth normalised to a baseline configuration (Figure 10)."""
        baseline = self.throughput_rps(baseline_latency_us, baseline_busy_us)
        if baseline == 0:
            raise ValueError("baseline throughput is zero")
        return self.throughput_rps(latency_us, busy_us) / baseline
