"""Trace-driven simulation engine.

The paper uses two simulators: M5 for full-system performance/power runs
and "a light weight trace based Flash disk cache simulator" for the long
reliability and miss-rate studies.  :func:`run_trace` is our equivalent of
the latter wired to the full hierarchy: it streams a trace through a
system, drains dirty state at the end, and returns a single report object
with every metric the evaluation figures consume.

Observability: pass a :class:`~repro.telemetry.Telemetry` handle to get
latency histograms (p50/p95/p99 read and write latency in the report) and
windowed time-series (miss rate, live capacity, wear, retries per N
requests).  With no handle — the default — the run takes the exact
historical code path and its results are bit-identical to pre-telemetry
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..core.cache import CacheStats
from ..core.controller import ControllerStats
from ..core.hierarchy import DramOnlySystem, FlashBackedSystem
from ..dram.page_cache import PdcStats
from ..faults.injector import FaultStats
from ..power.models import PowerBreakdown, system_power_breakdown
from ..reliability import ReliabilityStats, ScrubStats
from ..telemetry import LatencyHistogram, Telemetry, TraceSampler
from ..telemetry.timeseries import TimeSeries
from ..workloads.trace import TraceRecord
from .server import ServerModel

__all__ = ["SimulationReport", "run_trace"]

#: Response payload assumed when no :class:`ServerModel` is supplied;
#: matches the model's own default.
_DEFAULT_RESPONSE_BYTES = ServerModel.response_bytes


@dataclass
class SimulationReport:
    """Everything a finished simulation can report."""

    requests: int
    reads: int
    writes: int
    average_latency_us: float
    wall_clock_us: float
    throughput_rps: float
    pdc: PdcStats
    power: PowerBreakdown
    flash: Optional[CacheStats] = None
    disk_reads: int = 0
    disk_writes: int = 0
    # -- degradation metrics (present only for Flash-backed systems) ---------
    controller: Optional[ControllerStats] = None
    faults: Optional[FaultStats] = None
    #: Error-process model totals (present only when a
    #: :class:`~repro.reliability.ReliabilityModel` ran on the device).
    reliability: Optional[ReliabilityStats] = None
    #: Background retention-scrub totals (present only with a scrubber).
    scrub: Optional[ScrubStats] = None
    #: Fraction of the Flash cache's original page capacity still serving.
    flash_live_capacity: float = 1.0
    #: True when the cache fell below its minimum-blocks floor and the
    #: hierarchy finished the trace on the DRAM+disk bypass.
    flash_degraded: bool = False
    #: Bytes served per request by the fronting server (threaded from
    #: :attr:`ServerModel.response_bytes`; the network-bandwidth proxy
    #: below scales with it).
    response_bytes: int = _DEFAULT_RESPONSE_BYTES
    # -- telemetry (present only when a Telemetry handle ran the trace) ------
    #: Foreground read-request latency distribution.
    read_latency: Optional[LatencyHistogram] = None
    #: Foreground write-request latency distribution.
    write_latency: Optional[LatencyHistogram] = None
    #: Windowed time-series keyed by name (``flash_miss_rate``,
    #: ``live_capacity``, ``wear_max`` ...).
    timeseries: Optional[Dict[str, TimeSeries]] = None

    @property
    def flash_miss_rate(self) -> float:
        return self.flash.read_miss_rate if self.flash else 1.0

    @property
    def network_bandwidth_bytes_per_s(self) -> float:
        """Network-bandwidth proxy: served request payload per second.

        The paper's server benchmarks report network bandwidth; in a
        storage-bound server it is proportional to request throughput.
        """
        return self.throughput_rps * self.response_bytes

    # -- latency percentiles (None without telemetry) -------------------------

    def _latency_percentile(self, histogram: Optional[LatencyHistogram],
                            p: float) -> Optional[float]:
        return histogram.percentile(p) if histogram is not None else None

    @property
    def read_latency_p50(self) -> Optional[float]:
        return self._latency_percentile(self.read_latency, 50.0)

    @property
    def read_latency_p95(self) -> Optional[float]:
        return self._latency_percentile(self.read_latency, 95.0)

    @property
    def read_latency_p99(self) -> Optional[float]:
        return self._latency_percentile(self.read_latency, 99.0)

    @property
    def write_latency_p50(self) -> Optional[float]:
        return self._latency_percentile(self.write_latency, 50.0)

    @property
    def write_latency_p95(self) -> Optional[float]:
        return self._latency_percentile(self.write_latency, 95.0)

    @property
    def write_latency_p99(self) -> Optional[float]:
        return self._latency_percentile(self.write_latency, 99.0)


def run_trace(system: DramOnlySystem | FlashBackedSystem,
              records: Iterable[TraceRecord],
              drain: bool = True,
              telemetry: Optional[Telemetry] = None,
              server: Optional[ServerModel] = None) -> SimulationReport:
    """Run a trace to completion and summarise.

    ``drain`` flushes dirty PDC/Flash state afterwards so that power and
    disk-traffic accounting cover the whole data lifecycle.  ``telemetry``
    (optional) is attached to every layer for the duration of the run and
    sampled every ``telemetry.sample_interval`` requests; the report then
    carries latency histograms and time-series.  ``server`` supplies the
    response payload size behind the report's network-bandwidth proxy.
    """
    if telemetry is None:
        system.run(records)
    else:
        telemetry.attach(system)
        sampler = TraceSampler(telemetry, system,
                               interval=telemetry.sample_interval)
        process = system.process
        maybe_sample = sampler.maybe_sample
        # Track trace position locally (one request per expanded page)
        # rather than reading the stats property back per record.  The
        # counter starts from the system's running request count — not
        # zero — so a system that already processed records (a warmup
        # phase, a previous run_trace call) keeps one continuous x axis.
        position = system.stats.requests
        for record in records:
            process(record)
            position += record.pages
            if position >= sampler.next_at:
                maybe_sample(position)
        # ``system.stats.requests`` is the single source of truth for the
        # report; the local counter is only a cheap mirror of it.  If the
        # two ever disagree, the time-series x coordinates no longer line
        # up with the reported request counts — fail loudly rather than
        # emit silently skewed telemetry.
        processed = system.stats.requests
        if position != processed:
            raise RuntimeError(
                f"trace position counter ({position}) drifted from the "
                f"system request count ({processed}); a record expanded "
                f"to a different number of requests than record.pages")
        # Close every series with the end-of-trace state so a short trace
        # still yields at least one point per signal.
        sampler.finalize(processed)
    flash_stats = None
    controller_stats = None
    fault_stats = None
    reliability_stats = None
    scrub_stats = None
    live_capacity = 1.0
    degraded = False
    if isinstance(system, FlashBackedSystem):
        if drain:
            system.drain()
        flash = system.flash
        flash_stats = flash.stats
        controller_stats = flash.controller.stats
        injector = flash.controller.device.fault_injector
        if injector is not None:
            fault_stats = injector.stats
        reliability_model = flash.controller.device.reliability
        if reliability_model is not None:
            reliability_stats = reliability_model.stats
        scrubber = getattr(system, "scrubber", None)
        if scrubber is not None:
            scrub_stats = scrubber.stats
        live_capacity = flash.live_capacity_fraction()
        degraded = flash.degraded
        if telemetry is not None:
            telemetry.harvest_cache_counters(flash)
    if telemetry is not None:
        # After drain, so the counters cover the whole data lifecycle.
        telemetry.harvest_system_counters(system)
    return SimulationReport(
        requests=system.stats.requests,
        reads=system.stats.reads,
        writes=system.stats.writes,
        average_latency_us=system.stats.average_latency_us,
        wall_clock_us=system.wall_clock_us,
        throughput_rps=system.throughput_rps(),
        pdc=system.pdc.stats,
        power=system_power_breakdown(system),
        flash=flash_stats,
        disk_reads=system.disk.reads,
        disk_writes=system.disk.writes,
        controller=controller_stats,
        faults=fault_stats,
        reliability=reliability_stats,
        scrub=scrub_stats,
        flash_live_capacity=live_capacity,
        flash_degraded=degraded,
        response_bytes=(server.response_bytes if server is not None
                        else _DEFAULT_RESPONSE_BYTES),
        read_latency=(telemetry.read_latency
                      if telemetry is not None else None),
        write_latency=(telemetry.write_latency
                       if telemetry is not None else None),
        timeseries=(telemetry.timeseries
                    if telemetry is not None else None),
    )
