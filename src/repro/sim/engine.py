"""Trace-driven simulation engine.

The paper uses two simulators: M5 for full-system performance/power runs
and "a light weight trace based Flash disk cache simulator" for the long
reliability and miss-rate studies.  :func:`run_trace` is our equivalent of
the latter wired to the full hierarchy: it streams a trace through a
system, drains dirty state at the end, and returns a single report object
with every metric the evaluation figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.cache import CacheStats
from ..core.controller import ControllerStats
from ..core.hierarchy import DramOnlySystem, FlashBackedSystem
from ..dram.page_cache import PdcStats
from ..faults.injector import FaultStats
from ..power.models import PowerBreakdown, system_power_breakdown
from ..workloads.trace import TraceRecord

__all__ = ["SimulationReport", "run_trace"]


@dataclass
class SimulationReport:
    """Everything a finished simulation can report."""

    requests: int
    reads: int
    writes: int
    average_latency_us: float
    wall_clock_us: float
    throughput_rps: float
    pdc: PdcStats
    power: PowerBreakdown
    flash: Optional[CacheStats] = None
    disk_reads: int = 0
    disk_writes: int = 0
    # -- degradation metrics (present only for Flash-backed systems) ---------
    controller: Optional[ControllerStats] = None
    faults: Optional[FaultStats] = None
    #: Fraction of the Flash cache's original page capacity still serving.
    flash_live_capacity: float = 1.0
    #: True when the cache fell below its minimum-blocks floor and the
    #: hierarchy finished the trace on the DRAM+disk bypass.
    flash_degraded: bool = False

    @property
    def flash_miss_rate(self) -> float:
        return self.flash.read_miss_rate if self.flash else 1.0

    @property
    def network_bandwidth_bytes_per_s(self) -> float:
        """Network-bandwidth proxy: served request payload per second.

        The paper's server benchmarks report network bandwidth; in a
        storage-bound server it is proportional to request throughput.
        """
        return self.throughput_rps * 2048.0


def run_trace(system: DramOnlySystem | FlashBackedSystem,
              records: Iterable[TraceRecord],
              drain: bool = True) -> SimulationReport:
    """Run a trace to completion and summarise.

    ``drain`` flushes dirty PDC/Flash state afterwards so that power and
    disk-traffic accounting cover the whole data lifecycle.
    """
    system.run(records)
    flash_stats = None
    controller_stats = None
    fault_stats = None
    live_capacity = 1.0
    degraded = False
    if isinstance(system, FlashBackedSystem):
        if drain:
            system.drain()
        flash = system.flash
        flash_stats = flash.stats
        controller_stats = flash.controller.stats
        injector = flash.controller.device.fault_injector
        if injector is not None:
            fault_stats = injector.stats
        live_capacity = flash.live_capacity_fraction()
        degraded = flash.degraded
    return SimulationReport(
        requests=system.stats.requests,
        reads=system.stats.reads,
        writes=system.stats.writes,
        average_latency_us=system.stats.average_latency_us,
        wall_clock_us=system.wall_clock_us,
        throughput_rps=system.throughput_rps(),
        pdc=system.pdc.stats,
        power=system_power_breakdown(system),
        flash=flash_stats,
        disk_reads=system.disk.reads,
        disk_writes=system.disk.writes,
        controller=controller_stats,
        faults=fault_stats,
        flash_live_capacity=live_capacity,
        flash_degraded=degraded,
    )
