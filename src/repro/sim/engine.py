"""Trace-driven simulation engine.

The paper uses two simulators: M5 for full-system performance/power runs
and "a light weight trace based Flash disk cache simulator" for the long
reliability and miss-rate studies.  :func:`run_trace` is our equivalent of
the latter wired to the full hierarchy: it streams a trace through a
system, drains dirty state at the end, and returns a single report object
with every metric the evaluation figures consume.

Observability: pass a :class:`~repro.telemetry.Telemetry` handle to get
latency histograms (p50/p95/p99 read and write latency in the report) and
windowed time-series (miss rate, live capacity, wear, retries per N
requests).  With no handle — the default — the run takes the exact
historical code path and its results are bit-identical to pre-telemetry
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.cache import CacheStats
from ..core.controller import ControllerStats
from ..core.hierarchy import DramOnlySystem, FlashBackedSystem
from ..dram.page_cache import PdcStats
from ..faults.injector import FaultStats
from ..power.models import PowerBreakdown, system_power_breakdown
from ..reliability import ReliabilityStats, ScrubStats
from ..telemetry import LatencyHistogram, Telemetry, TraceSampler
from ..telemetry.timeseries import TimeSeries
from ..workloads.trace import TraceRecord
from .server import ServerModel

__all__ = ["QueueingStats", "SimulationReport", "run_trace",
           "summarise_system"]

#: Response payload assumed when no :class:`ServerModel` is supplied;
#: matches the model's own default.
_DEFAULT_RESPONSE_BYTES = ServerModel.response_bytes


@dataclass
class QueueingStats:
    """Concurrency accounting from the event engine (DESIGN.md 14).

    Present on a report only when the trace ran through
    :func:`repro.sim.concurrent.run_trace_concurrent`; splits every
    request's response time into *service* (what the serial model
    charges — the cache/device work itself) and *queue delay* (waiting
    for a window slot or a busy NAND channel/plane), and carries the
    channel-utilization view of the device fabric.
    """

    queue_depth: int
    channels: int
    planes: int
    #: Event-loop makespan: admission of the first request to completion
    #: of the last (us).
    span_us: float
    #: Per-request queue-delay distribution (us).
    queue_delay: LatencyHistogram
    #: Per-request service-latency distribution (us).
    service_latency: LatencyHistogram
    #: Busy time per NAND channel over the span (us).
    channel_busy_us: List[float] = field(default_factory=list)
    #: Ops that found their channel/plane occupied and stalled.
    channel_stalls: int = 0
    #: Background GC bursts observed by the loop.
    gc_events: int = 0
    #: Background scrub bursts observed by the loop.
    scrub_events: int = 0

    @property
    def mean_queue_delay_us(self) -> float:
        return self.queue_delay.mean

    @property
    def mean_service_us(self) -> float:
        return self.service_latency.mean

    def channel_utilization(self) -> List[float]:
        """Per-channel busy fraction of the span (a channel with
        ``planes`` planes offers ``planes * span_us`` of service)."""
        if self.span_us <= 0:
            return [0.0] * len(self.channel_busy_us)
        capacity_us = self.span_us * self.planes
        return [busy_us / capacity_us for busy_us in self.channel_busy_us]


@dataclass
class SimulationReport:
    """Everything a finished simulation can report."""

    requests: int
    reads: int
    writes: int
    average_latency_us: float
    wall_clock_us: float
    throughput_rps: float
    pdc: PdcStats
    power: PowerBreakdown
    flash: Optional[CacheStats] = None
    disk_reads: int = 0
    disk_writes: int = 0
    # -- degradation metrics (present only for Flash-backed systems) ---------
    controller: Optional[ControllerStats] = None
    faults: Optional[FaultStats] = None
    #: Error-process model totals (present only when a
    #: :class:`~repro.reliability.ReliabilityModel` ran on the device).
    reliability: Optional[ReliabilityStats] = None
    #: Background retention-scrub totals (present only with a scrubber).
    scrub: Optional[ScrubStats] = None
    #: Fraction of the Flash cache's original page capacity still serving.
    flash_live_capacity: float = 1.0
    #: True when the cache fell below its minimum-blocks floor and the
    #: hierarchy finished the trace on the DRAM+disk bypass.
    flash_degraded: bool = False
    #: Bytes served per request by the fronting server (threaded from
    #: :attr:`ServerModel.response_bytes`; the network-bandwidth proxy
    #: below scales with it).
    response_bytes: int = _DEFAULT_RESPONSE_BYTES
    # -- telemetry (present only when a Telemetry handle ran the trace) ------
    #: Foreground read-request latency distribution.
    read_latency: Optional[LatencyHistogram] = None
    #: Foreground write-request latency distribution.
    write_latency: Optional[LatencyHistogram] = None
    #: Windowed time-series keyed by name (``flash_miss_rate``,
    #: ``live_capacity``, ``wear_max`` ...).
    timeseries: Optional[Dict[str, TimeSeries]] = None
    # -- concurrency (present only for event-engine runs) --------------------
    #: Queue-delay/service split and channel utilization from
    #: :func:`repro.sim.concurrent.run_trace_concurrent`; ``None`` for
    #: the serial engine (no queueing exists at depth 1).
    queueing: Optional[QueueingStats] = None

    @property
    def flash_miss_rate(self) -> float:
        return self.flash.read_miss_rate if self.flash else 1.0

    @property
    def network_bandwidth_bytes_per_s(self) -> float:
        """Network-bandwidth proxy: served request payload per second.

        The paper's server benchmarks report network bandwidth; in a
        storage-bound server it is proportional to request throughput.
        """
        return self.throughput_rps * self.response_bytes

    # -- latency percentiles (None without telemetry) -------------------------

    def _latency_percentile(self, histogram: Optional[LatencyHistogram],
                            p: float) -> Optional[float]:
        return histogram.percentile(p) if histogram is not None else None

    @property
    def read_latency_p50(self) -> Optional[float]:
        return self._latency_percentile(self.read_latency, 50.0)

    @property
    def read_latency_p95(self) -> Optional[float]:
        return self._latency_percentile(self.read_latency, 95.0)

    @property
    def read_latency_p99(self) -> Optional[float]:
        return self._latency_percentile(self.read_latency, 99.0)

    @property
    def write_latency_p50(self) -> Optional[float]:
        return self._latency_percentile(self.write_latency, 50.0)

    @property
    def write_latency_p95(self) -> Optional[float]:
        return self._latency_percentile(self.write_latency, 95.0)

    @property
    def write_latency_p99(self) -> Optional[float]:
        return self._latency_percentile(self.write_latency, 99.0)

    # -- queueing percentiles (None without the event engine) -----------------

    def _queueing_histogram(self, name: str) -> Optional[LatencyHistogram]:
        queueing = self.queueing
        return getattr(queueing, name) if queueing is not None else None

    @property
    def queue_delay_p50(self) -> Optional[float]:
        return self._latency_percentile(
            self._queueing_histogram("queue_delay"), 50.0)

    @property
    def queue_delay_p95(self) -> Optional[float]:
        return self._latency_percentile(
            self._queueing_histogram("queue_delay"), 95.0)

    @property
    def queue_delay_p99(self) -> Optional[float]:
        return self._latency_percentile(
            self._queueing_histogram("queue_delay"), 99.0)

    @property
    def service_latency_p50(self) -> Optional[float]:
        return self._latency_percentile(
            self._queueing_histogram("service_latency"), 50.0)

    @property
    def service_latency_p95(self) -> Optional[float]:
        return self._latency_percentile(
            self._queueing_histogram("service_latency"), 95.0)

    @property
    def service_latency_p99(self) -> Optional[float]:
        return self._latency_percentile(
            self._queueing_histogram("service_latency"), 99.0)


def run_trace(system: DramOnlySystem | FlashBackedSystem,
              records: Iterable[TraceRecord],
              drain: bool = True,
              telemetry: Optional[Telemetry] = None,
              server: Optional[ServerModel] = None) -> SimulationReport:
    """Run a trace to completion and summarise.

    ``drain`` flushes dirty PDC/Flash state afterwards so that power and
    disk-traffic accounting cover the whole data lifecycle.  ``telemetry``
    (optional) is attached to every layer for the duration of the run and
    sampled every ``telemetry.sample_interval`` requests; the report then
    carries latency histograms and time-series.  ``server`` supplies the
    response payload size behind the report's network-bandwidth proxy.
    """
    if telemetry is None:
        system.run(records)
    else:
        telemetry.attach(system)
        sampler = TraceSampler(telemetry, system,
                               interval=telemetry.sample_interval)
        process = system.process
        maybe_sample = sampler.maybe_sample
        # Track trace position locally (one request per expanded page)
        # rather than reading the stats property back per record.  The
        # counter starts from the system's running request count — not
        # zero — so a system that already processed records (a warmup
        # phase, a previous run_trace call) keeps one continuous x axis.
        position = system.stats.requests
        for record in records:
            process(record)
            position += record.pages
            if position >= sampler.next_at:
                maybe_sample(position)
        # ``system.stats.requests`` is the single source of truth for the
        # report; the local counter is only a cheap mirror of it.  If the
        # two ever disagree, the time-series x coordinates no longer line
        # up with the reported request counts — fail loudly rather than
        # emit silently skewed telemetry.
        processed = system.stats.requests
        if position != processed:
            raise RuntimeError(
                f"trace position counter ({position}) drifted from the "
                f"system request count ({processed}); a record expanded "
                f"to a different number of requests than record.pages")
        # Close every series with the end-of-trace state so a short trace
        # still yields at least one point per signal.
        sampler.finalize(processed)
    return summarise_system(system, drain=drain, telemetry=telemetry,
                            server=server)


def summarise_system(system: DramOnlySystem | FlashBackedSystem,
                     drain: bool = True,
                     telemetry: Optional[Telemetry] = None,
                     server: Optional[ServerModel] = None,
                     wall_clock_us: Optional[float] = None,
                     throughput_rps: Optional[float] = None,
                     queueing: Optional[QueueingStats] = None
                     ) -> SimulationReport:
    """Drain a finished system and package it as a report.

    Shared tail of :func:`run_trace` and the event engine
    (:func:`repro.sim.concurrent.run_trace_concurrent`): the latter
    overrides ``wall_clock_us``/``throughput_rps`` with its event-loop
    makespan and attaches the :class:`QueueingStats` split.
    """
    flash_stats = None
    controller_stats = None
    fault_stats = None
    reliability_stats = None
    scrub_stats = None
    live_capacity = 1.0
    degraded = False
    if isinstance(system, FlashBackedSystem):
        if drain:
            system.drain()
        flash = system.flash
        flash_stats = flash.stats
        controller_stats = flash.controller.stats
        injector = flash.controller.device.fault_injector
        if injector is not None:
            fault_stats = injector.stats
        reliability_model = flash.controller.device.reliability
        if reliability_model is not None:
            reliability_stats = reliability_model.stats
        scrubber = getattr(system, "scrubber", None)
        if scrubber is not None:
            scrub_stats = scrubber.stats
        live_capacity = flash.live_capacity_fraction()
        degraded = flash.degraded
        if telemetry is not None:
            telemetry.harvest_cache_counters(flash)
    if telemetry is not None:
        # After drain, so the counters cover the whole data lifecycle.
        telemetry.harvest_system_counters(system)
    return SimulationReport(
        requests=system.stats.requests,
        reads=system.stats.reads,
        writes=system.stats.writes,
        average_latency_us=system.stats.average_latency_us,
        wall_clock_us=(wall_clock_us if wall_clock_us is not None
                       else system.wall_clock_us),
        throughput_rps=(throughput_rps if throughput_rps is not None
                        else system.throughput_rps()),
        pdc=system.pdc.stats,
        power=system_power_breakdown(system),
        flash=flash_stats,
        disk_reads=system.disk.reads,
        disk_writes=system.disk.writes,
        controller=controller_stats,
        faults=fault_stats,
        reliability=reliability_stats,
        scrub=scrub_stats,
        flash_live_capacity=live_capacity,
        flash_degraded=degraded,
        response_bytes=(server.response_bytes if server is not None
                        else _DEFAULT_RESPONSE_BYTES),
        read_latency=(telemetry.read_latency
                      if telemetry is not None else None),
        write_latency=(telemetry.write_latency
                       if telemetry is not None else None),
        timeseries=(telemetry.timeseries
                    if telemetry is not None else None),
        queueing=queueing,
    )
