"""Deterministic discrete-event core for the concurrent simulator.

The paper's Flash disk cache fronts a server with many requests in
flight; modelling that requires an event-driven clock rather than the
serial request loop of :mod:`repro.sim.engine`.  This module provides
the primitive: a :class:`EventLoop` whose priority queue is ordered by
``(time_us, seq)`` — the sequence number is assigned at post time, so
two events scheduled for the same instant always fire in posting order.
Nothing here reads the wall clock (simlint SIM001) and nothing here may
advance device clocks behind the loop's back (simlint SIM010): handlers
receive the event and take the current time from ``loop.now_us``.

Event types are the fixed vocabulary of the concurrent engine
(:mod:`repro.sim.concurrent`):

* ``ARRIVE``   — a request enters the outstanding-request window;
* ``DISPATCH`` — a request leaves the host queue and starts service;
* ``CHANNEL_BUSY`` — an op found its NAND channel/plane occupied and
  had to stall (payload carries the channel and the wait);
* ``COMPLETE`` — a request finished; its window slot frees;
* ``GC``       — background garbage-collection work was generated;
* ``SCRUB``    — background retention-scrub work was generated;
* ``REJOIN``   — a repaired cluster shard re-entered the ring
  (:mod:`repro.cluster.shard`, repair/re-admission);
* ``SYNC``     — one anti-entropy catch-up op (a sync write on the
  rejoining shard, or the paired source read on a neighbour).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EventType", "Event", "EventLoop"]


class EventType(Enum):
    """The concurrent engine's event vocabulary."""

    ARRIVE = "arrive"
    DISPATCH = "dispatch"
    CHANNEL_BUSY = "channel_busy"
    COMPLETE = "complete"
    GC = "gc"
    SCRUB = "scrub"
    REJOIN = "rejoin"
    SYNC = "sync"


@dataclass
class Event:
    """One typed occurrence at one simulated instant."""

    type: EventType
    payload: Any = None


Handler = Callable[[Event], None]


class EventLoop:
    """Stable-ordered discrete-event loop.

    Determinism contract:

    * the queue orders on ``(time_us, seq)`` where ``seq`` is a counter
      incremented per post — ties in simulated time resolve in posting
      order, never by payload identity, hash order, or wall clock;
    * time is monotonic: posting into the past raises, and ``now_us``
      only moves when the loop pops an event;
    * handlers take the current time from :attr:`now_us`; they must not
      read wall clocks or advance device clocks directly (simlint
      SIM001/SIM010).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._now_us = 0.0
        self._handlers: Dict[EventType, Handler] = {}
        #: Events dispatched so far, by type (observability/testing).
        self.dispatched: Dict[EventType, int] = {}

    @property
    def now_us(self) -> float:
        """Current simulated time (us)."""
        return self._now_us

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def register(self, event_type: EventType, handler: Handler) -> None:
        """Bind ``handler`` to ``event_type`` (one handler per type)."""
        if event_type in self._handlers:
            raise ValueError(f"handler already registered for {event_type}")
        self._handlers[event_type] = handler

    def post(self, delay_us: float, event: Event) -> None:
        """Schedule ``event`` ``delay_us`` after the current time."""
        if delay_us < 0:
            raise ValueError("delay_us must be non-negative")
        self.post_at(self._now_us + delay_us, event)

    def post_at(self, time_us: float, event: Event) -> None:
        """Schedule ``event`` at an absolute simulated time."""
        if time_us < self._now_us:
            raise ValueError(
                f"cannot post into the past ({time_us} < {self._now_us})")
        heapq.heappush(self._heap, (time_us, self._seq, event))
        self._seq += 1

    def step(self) -> Optional[Event]:
        """Pop and dispatch one event; ``None`` when the queue is empty."""
        if not self._heap:
            return None
        time_us, _, event = heapq.heappop(self._heap)
        self._now_us = time_us
        self.dispatched[event.type] = self.dispatched.get(event.type, 0) + 1
        try:
            handler = self._handlers[event.type]
        except KeyError:
            raise KeyError(f"no handler registered for {event.type}") \
                from None
        handler(event)
        return event

    def run(self) -> float:
        """Dispatch until the queue drains; returns the final time (us)."""
        while self.step() is not None:
            pass
        return self._now_us
