"""Event-driven concurrent trace engine (DESIGN.md section 14).

:func:`run_trace_concurrent` runs the same traces as
:func:`repro.sim.engine.run_trace` but with many requests in flight: an
outstanding-request window of ``queue_depth`` slots admits work
open-loop (the trace never waits to *generate* requests — admission is
gated only by the window), and each request's NAND operations are
scheduled onto a ``channels x planes`` fabric
(:class:`repro.flash.channels.NandScheduler`).  The report gains a
:class:`~repro.sim.engine.QueueingStats` block splitting response time
into service (what the serial model charges) and queue delay (window
and channel/plane waits).

Determinism and the compatibility path
--------------------------------------

State and timing are deliberately split:

* **functional work is serial in trace order.**  ARRIVE handlers pull
  requests from the trace in order and execute them immediately through
  the hierarchy's non-blocking ``submit_read``/``submit_write`` entry
  points — so cache contents, wear, faults, and every counter are
  *identical at any queue depth or channel count* (and identical to the
  serial engine).  Concurrency changes when work *finishes*, never what
  work happens;
* **timing is replayed on the event loop.**  The captured op stream is
  placed on the channel/plane fabric; any wait is charged to the
  request's queue delay, and its completion time is
  ``dispatch + service + waits``.  Background work the request
  generated (GC, scrub) occupies the fabric — delaying *other*
  requests — but is not charged to its own response time, matching the
  paper's "all GCs are performed in the background".

At ``queue_depth=1, channels=1, planes=1`` there is nothing to overlap,
so the call routes to the serial engine unchanged — every fig1b..fig13
result is byte-identical by construction (asserted in
``tests/test_events.py``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..core.hierarchy import DramOnlySystem, FlashBackedSystem, PendingRequest
from ..flash.channels import ChannelConfig, NandScheduler
from ..telemetry import LatencyHistogram, Telemetry, TraceSampler
from ..workloads.trace import TraceRecord
from .engine import QueueingStats, SimulationReport, run_trace, \
    summarise_system
from .events import Event, EventLoop, EventType
from .server import ServerModel

__all__ = ["run_trace_concurrent"]


def _expand(records: Iterable[TraceRecord]) -> Iterator[Tuple[int, bool]]:
    """Flatten records to (page, is_read) requests in trace order."""
    for record in records:
        for page in record.expand():
            yield page, record.is_read


class _ConcurrentEngine:
    """One trace's worth of event-loop state (not reusable)."""

    def __init__(self, system: DramOnlySystem | FlashBackedSystem,
                 records: Iterable[TraceRecord],
                 queue_depth: int, config: ChannelConfig,
                 telemetry: Optional[Telemetry]) -> None:
        self.system = system
        self.source = _expand(records)
        self.queue_depth = queue_depth
        self.loop = EventLoop()
        self.scheduler = NandScheduler(config)
        self.queue_delay = LatencyHistogram("queue_delay_us")
        self.service_latency = LatencyHistogram("service_latency_us")
        self.telemetry = telemetry
        self.sampler: Optional[TraceSampler] = None
        self.position = system.stats.requests
        self.in_flight = 0
        self.channel_stalls = 0
        self.gc_events = 0
        self.scrub_events = 0
        self._exhausted = False
        self._last_scrub_passes = self._scrub_passes()
        loop = self.loop
        loop.register(EventType.ARRIVE, self._on_arrive)
        loop.register(EventType.DISPATCH, self._on_dispatch)
        loop.register(EventType.CHANNEL_BUSY, self._on_channel_busy)
        loop.register(EventType.COMPLETE, self._on_complete)
        loop.register(EventType.GC, self._on_gc)
        loop.register(EventType.SCRUB, self._on_scrub)

    def _scrub_passes(self) -> int:
        scrubber = getattr(self.system, "scrubber", None)
        return scrubber.stats.passes if scrubber is not None else 0

    # -- event handlers (time comes from self.loop.now_us; SIM010) -----------

    def _on_arrive(self, event: Event) -> None:
        """Admit the next trace request into a freed window slot."""
        try:
            page, is_read = next(self.source)
        except StopIteration:
            self._exhausted = True
            return
        loop = self.loop
        system = self.system
        # Functional execution happens at admission, in trace order —
        # the determinism anchor (see the module docstring).
        if is_read:
            pending = system.submit_read(page)
        else:
            pending = system.submit_write(page)
        pending.arrive_us = loop.now_us
        self.in_flight += 1
        self.position += 1
        sampler = self.sampler
        if sampler is not None and self.position >= sampler.next_at:
            sampler.maybe_sample(self.position)
        if pending.gc_us > 0:
            loop.post(0.0, Event(EventType.GC, pending.gc_us))
        scrub_passes = self._scrub_passes()
        if scrub_passes > self._last_scrub_passes:
            self._last_scrub_passes = scrub_passes
            loop.post(0.0, Event(EventType.SCRUB, pending.page))
        # Host CPU/network time precedes storage dispatch (the same
        # per-request constant the serial wall clock charges).
        loop.post(system.config.cpu_us_per_request,
                  Event(EventType.DISPATCH, pending))

    def _on_dispatch(self, event: Event) -> None:
        """Place the request's op stream on the channel/plane fabric."""
        pending: PendingRequest = event.payload
        loop = self.loop
        pending.dispatch_us = loop.now_us
        ready_us = loop.now_us
        wait_us = 0.0
        scheduler = self.scheduler
        for op in pending.ops:
            placed = scheduler.schedule(ready_us, op.latency_us)
            if placed.wait_us > 0:
                loop.post_at(placed.start_us,
                             Event(EventType.CHANNEL_BUSY,
                                   (placed.channel, placed.wait_us)))
                wait_us += placed.wait_us
            ready_us = placed.end_us
        # Response = service as charged by the serial model, plus every
        # wait the op chain suffered.  Background op *latency* (GC,
        # scrub rewrites) occupies the fabric but is excluded from
        # service, so it delays neighbours rather than this request.
        finish_us = pending.dispatch_us + pending.service_us + wait_us
        loop.post_at(finish_us, Event(EventType.COMPLETE, pending))

    def _on_channel_busy(self, event: Event) -> None:
        self.channel_stalls += 1

    def _on_complete(self, event: Event) -> None:
        pending: PendingRequest = event.payload
        loop = self.loop
        pending.finish_us = loop.now_us
        self.system.complete_request(pending)
        self.queue_delay.observe(pending.queue_delay_us)
        self.service_latency.observe(pending.service_us)
        self.in_flight -= 1
        if not self._exhausted:
            loop.post(0.0, Event(EventType.ARRIVE, None))

    def _on_gc(self, event: Event) -> None:
        self.gc_events += 1

    def _on_scrub(self, event: Event) -> None:
        self.scrub_events += 1

    # -- driving ---------------------------------------------------------------

    def run(self) -> float:
        """Prime the window, drain the loop; returns the makespan (us)."""
        for _ in range(self.queue_depth):
            self.loop.post(0.0, Event(EventType.ARRIVE, None))
        loop_end_us = self.loop.run()
        horizon_us = self.scheduler.horizon_us()
        return loop_end_us if loop_end_us >= horizon_us else horizon_us


def run_trace_concurrent(system: DramOnlySystem | FlashBackedSystem,
                         records: Iterable[TraceRecord],
                         queue_depth: int = 1,
                         channels: int = 1,
                         planes: int = 1,
                         drain: bool = True,
                         telemetry: Optional[Telemetry] = None,
                         server: Optional[ServerModel] = None
                         ) -> SimulationReport:
    """Run a trace through the event-driven concurrent engine.

    ``queue_depth`` sizes the outstanding-request window, ``channels``
    and ``planes`` size the NAND fabric.  The returned report's
    ``wall_clock_us`` is the event-loop makespan and ``queueing``
    carries the service/queue-delay split; every functional metric
    (cache stats, wear, miss rates, average service latency) is
    identical to the serial engine's at any setting.

    ``queue_depth=1, channels=1, planes=1`` is the compatibility mode:
    the call routes to :func:`~repro.sim.engine.run_trace` and the
    result is byte-identical to the legacy serial path.
    """
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    config = ChannelConfig(channels=channels, planes=planes)
    if queue_depth == 1 and config.resources == 1:
        return run_trace(system, records, drain=drain,
                         telemetry=telemetry, server=server)
    engine = _ConcurrentEngine(system, records, queue_depth, config,
                               telemetry)
    if telemetry is not None:
        telemetry.attach(system)
        engine.sampler = TraceSampler(telemetry, system,
                                      interval=telemetry.sample_interval)
    span_us = engine.run()
    if engine.sampler is not None:
        engine.sampler.finalize(engine.position)
    requests = system.stats.requests
    throughput_rps = requests / (span_us * 1e-6) if span_us > 0 else 0.0
    queueing = QueueingStats(
        queue_depth=queue_depth,
        channels=channels,
        planes=planes,
        span_us=span_us,
        queue_delay=engine.queue_delay,
        service_latency=engine.service_latency,
        channel_busy_us=list(engine.scheduler.channel_busy_us),
        channel_stalls=engine.channel_stalls,
        gc_events=engine.gc_events,
        scrub_events=engine.scrub_events,
    )
    return summarise_system(system, drain=drain, telemetry=telemetry,
                            server=server, wall_clock_us=span_us,
                            throughput_rps=throughput_rps,
                            queueing=queueing)
