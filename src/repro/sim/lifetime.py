"""Accelerated (event-driven) Flash aging simulation (Figures 11 and 12).

Figure 12 measures the number of host accesses a Flash based disk cache
survives before *total failure* (every block retired), comparing the
programmable controller against a fixed BCH-1 controller; Figure 11 breaks
down which repair the programmable controller chose (stronger ECC vs
MLC->SLC) per workload.  Simulating 10^5..10^6 W/E cycles page by page is
infeasible, so this module replays the controller's *reliability events*
exactly and skips the uneventful cycles in between:

* Global wear-leveling spreads erases uniformly over live blocks, so all
  frames age at the same W/E-cycle rate; each block erase absorbs one
  block's worth of page writes, converting cycles to host page-writes via
  the live capacity (as blocks retire, survivors age faster).
* A frame's next reliability event is the damage level at which its raw
  error count reaches its current ECC strength — available in closed form
  from the device's order-statistic failure sampler
  (:meth:`~repro.flash.device.FlashDevice.next_error_damage`), divided by
  the mode's read sensitivity.
* At each event the *real* controller policy runs
  (:meth:`~repro.core.controller.ProgrammableFlashController.choose_repair`
  via the fault-response path), fed per-frame access frequencies sampled
  from the workload's popularity distribution over the cached (hottest)
  half of the working set — Figure 11's configuration sets the Flash to
  half the working-set size.

The result records host accesses to total failure, the event log, and the
controller's reconfiguration statistics.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, List, Optional, Tuple

from ..core.controller import (
    ControllerStats,
    FixedEccController,
    ProgrammableFlashController,
    ReconfigKind,
)
from ..flash.device import FlashDevice, MLC_READ_SENSITIVITY
from ..parallel import derive_seed
from ..flash.geometry import FlashGeometry, PageAddress
from ..flash.timing import CellMode
from ..flash.wear import CellLifetimeModel, WearModelConfig
from ..reliability import (
    ReliabilityConfig,
    ReliabilityModel,
    ReliabilityStats,
    ScrubConfig,
    ScrubStats,
)
from ..workloads.macro import MACRO_WORKLOADS, _MICRO_SPECS, MacroWorkloadSpec
from ..workloads.synthetic import SyntheticConfig

__all__ = ["AgingConfig", "AgingResult", "LifetimeSimulator",
           "simulate_lifetime", "lifetime_ratio",
           "ErrorRegime", "RegimeConfig", "RegimeResult",
           "RegimeSimulator", "simulate_regime", "standard_regimes"]

#: Footprints are scaled to at most this many pages for the aging runs;
#: popularity *shape* is preserved (exp rates are rescaled).
_MAX_AGING_FOOTPRINT_PAGES = 1 << 18


@dataclass(frozen=True)
class AgingConfig:
    """Configuration of one accelerated aging run."""

    workload: str = "alpha2"
    controller: str = "programmable"      # or "bch1"
    num_blocks: int = 16
    frames_per_block: int = 8
    cache_coverage: float = 0.5           # Flash = half the working set
    stdev_frac: float = 0.05
    seed: int = 42
    max_events: int = 200_000

    def __post_init__(self) -> None:
        if self.controller not in ("programmable", "bch1"):
            raise ValueError("controller must be 'programmable' or 'bch1'")
        if not 0.0 < self.cache_coverage <= 1.0:
            raise ValueError("cache_coverage must be in (0, 1]")
        if self.num_blocks < 1 or self.frames_per_block < 1:
            raise ValueError("geometry must be non-trivial")


@dataclass
class AgingResult:
    """Outcome of an accelerated aging run."""

    config: AgingConfig
    host_accesses_to_failure: float
    page_writes_to_failure: float
    erase_cycles_to_failure: float
    events: int
    controller_stats: ControllerStats
    half_capacity_accesses: Optional[float] = None
    first_choices: Dict[str, int] = field(default_factory=dict)

    @property
    def reconfig_breakdown(self) -> Dict[str, float]:
        """Lifetime-wide descriptor-update mix."""
        return self.controller_stats.reconfig_breakdown()

    @property
    def early_reconfig_breakdown(self) -> Dict[str, float]:
        """Figure 11's quantity: the decision mix "near the point where
        the Flash cells start to fail" — each frame's *first*
        reconfiguration, before forced late-life ECC escalation dilutes
        the signal."""
        total = sum(self.first_choices.values())
        if total == 0:
            return {"code_strength": 0.0, "density": 0.0}
        return {
            "code_strength": self.first_choices.get("code_strength", 0) / total,
            "density": self.first_choices.get("density", 0) / total,
        }


def _workload_profile(name: str) -> Tuple[int, float, tuple]:
    """(footprint pages, write fraction, tail spec) for any Table 4 name."""
    if name in MACRO_WORKLOADS:
        spec = MACRO_WORKLOADS[name]
        return spec.footprint_pages, 1.0 - spec.read_fraction, spec.tail
    if name in _MICRO_SPECS:
        return (SyntheticConfig().footprint_pages, 0.1, _MICRO_SPECS[name])
    raise KeyError(f"unknown workload {name!r}")


class LifetimeSimulator:
    """Event-driven Flash aging for one (workload, controller) pair."""

    def __init__(self, config: AgingConfig):
        self.config = config
        footprint, write_fraction, tail = _workload_profile(config.workload)
        self.write_fraction = max(write_fraction, 1e-3)
        # Scale the footprint for tractable popularity tables, preserving
        # the tail shape (exp rate scales inversely with footprint).
        scale = 1.0
        if footprint > _MAX_AGING_FOOTPRINT_PAGES:
            scale = footprint / _MAX_AGING_FOOTPRINT_PAGES
            footprint = _MAX_AGING_FOOTPRINT_PAGES
        if tail[0] == "exp":
            tail = ("exp", tail[1] * scale)
        self.footprint_pages = footprint
        spec = MacroWorkloadSpec(
            name=config.workload, description="aging profile",
            footprint_bytes=footprint * 2048,
            read_fraction=1.0 - self.write_fraction, tail=tail)
        self.distribution = spec.make_distribution(footprint)

        geometry = FlashGeometry(
            frames_per_block=config.frames_per_block,
            num_blocks=config.num_blocks,
        )
        lifetime_model = CellLifetimeModel(
            WearModelConfig(stdev_frac=config.stdev_frac,
                            cells_per_page=geometry.cells_per_frame))
        self.device = FlashDevice(
            geometry=geometry,
            lifetime_model=lifetime_model,
            initial_mode=CellMode.MLC,
            seed=config.seed,
        )
        if config.controller == "programmable":
            self.controller = ProgrammableFlashController(self.device)
        else:
            self.controller = FixedEccController(self.device, strength=1)
        self._prime_fgst_and_fpst()

    # -- setup -------------------------------------------------------------------

    def _prime_fgst_and_fpst(self) -> None:
        """Install the steady-state context the repair heuristic reads.

        Frames hold the hottest ``cache_coverage`` share of the working
        set; each frame's representative page gets an access frequency
        sampled from the popularity of that cached range, and the FGST
        carries the corresponding miss rate and latencies.
        """
        cfg = self.config
        cached_pages = max(int(self.footprint_pages * cfg.cache_coverage), 1)
        frames = cfg.num_blocks * cfg.frames_per_block
        # The FPST-priming stream must be independent of the device's own
        # wear stream (both flow from cfg.seed); derive it instead of the
        # old ``seed + 1``, which is the fig9 drift pattern SIM002 bans.
        rng = Random(derive_seed(cfg.seed, "lifetime:fpst-prime"))
        total_scale = 1_000_000
        fgst = self.controller.fgst
        cached_mass = 0.0
        # Cumulative popularity of the cached range, sampled (the exact sum
        # over millions of ranks is unnecessary for the heuristic).
        probe = max(cached_pages // 4096, 1)
        for rank in range(0, cached_pages, probe):
            cached_mass += self.distribution.rank_probability(rank) * probe
        cached_mass = min(cached_mass, 1.0)
        fgst.hits = int(total_scale * cached_mass)
        fgst.misses = total_scale - fgst.hits
        fgst.total_accesses = total_scale
        fgst.avg_hit_latency_us = self.device.timing.mlc_read_us
        fgst.avg_miss_penalty_us = 4200.0

        # The marginal-page miss cost the heuristic compares against: the
        # popularity of the least popular *cached* page (what the cache
        # would lose to a density reduction).
        marginal_rank = min(cached_pages, self.footprint_pages - 1)
        self.controller.marginal_miss_estimate = \
            self.distribution.rank_probability(marginal_rank)

        # Frames are assigned popularity ranks drawn from the access
        # distribution itself (not uniformly): descriptor updates are
        # observed on reads, so frequently accessed pages dominate the
        # update mix — the effect behind Figure 11's tail-length trend.
        self._frame_freq: Dict[Tuple[int, int], int] = {}
        for block in range(cfg.num_blocks):
            for frame in range(cfg.frames_per_block):
                rank = self.distribution.sample_rank(rng.random())
                rank = min(rank, cached_pages - 1)
                probability = self.distribution.rank_probability(rank)
                count = int(probability * total_scale)
                self._frame_freq[(block, frame)] = count
                entry = self.controller.fpst.entry(
                    PageAddress(block, frame, 0))
                entry.access_count = count
                entry.valid = True

    # -- event mechanics ------------------------------------------------------------

    def _frame_strength(self, block: int, frame: int) -> int:
        return self.controller.fpst.entry(
            PageAddress(block, frame, 0)).ecc_strength

    def _trigger_cycle(self, block: int, frame: int) -> float:
        """W/E cycle count at which this frame next reaches its ECC limit."""
        strength = self._frame_strength(block, frame)
        damage = self.device.next_error_damage(block, frame, strength - 1)
        sensitivity = self.device.frame_read_sensitivity(block, frame)
        # Nudge past the exact threshold so the replayed read definitely
        # observes the failure (guards against float-division rounding
        # landing one ulp short, which would re-enqueue the same event
        # forever).
        return damage / sensitivity * (1.0 + 1e-9) + 1e-9

    def _live_capacity_pages(self) -> int:
        total = 0
        for block in self.controller.fbst.live_blocks():
            total += self.device.block_capacity_pages(block)
        return total

    def run(self) -> AgingResult:
        """Age the device to total failure; returns the lifetime record."""
        cfg = self.config
        heap: List[Tuple[float, int, int]] = []
        for block in range(cfg.num_blocks):
            for frame in range(cfg.frames_per_block):
                heapq.heappush(
                    heap, (self._trigger_cycle(block, frame), block, frame))

        cycle = 0.0
        page_writes = 0.0
        first_choices: Dict[str, int] = {}
        decided: set[Tuple[int, int]] = set()
        half_capacity_writes: Optional[float] = None
        initial_capacity = self._live_capacity_pages()
        events = 0
        while heap and not self.controller.all_blocks_retired:
            events += 1
            if events > cfg.max_events:
                raise RuntimeError(
                    "aging simulation exceeded max_events; the policy is "
                    "likely oscillating")
            trigger, block, frame = heapq.heappop(heap)
            if self.controller.is_retired(block):
                continue
            if math.isinf(trigger):
                break
            if trigger > cycle:
                live_pages = self._live_capacity_pages()
                delta = trigger - cycle
                page_writes += delta * live_pages
                # Deposit the elapsed damage in every live block.
                for live in self.controller.fbst.live_blocks():
                    self.device.age_block(live, delta)
                cycle = trigger
            # The frame has reached its correction limit: replay the
            # controller's fault response via a real (zero-extra-damage)
            # read of the representative page.
            address = PageAddress(block, frame, 0)
            entry = self.controller.fpst.entry(address)
            entry.access_count = self._frame_freq[(block, frame)]
            result = self.controller.read(address)
            if result.reconfig is not None and (block, frame) not in decided:
                decided.add((block, frame))
                first_choices[result.reconfig.value] = \
                    first_choices.get(result.reconfig.value, 0) + 1
            if result.reconfig is not None or not result.recovered:
                # A pended density change needs its erase to take effect.
                if (block, frame) in self.controller._pending_modes:
                    self.controller.erase(block)
                    self._restore_block_entries(block)
            if self.controller.is_retired(block):
                capacity = self._live_capacity_pages()
                if (half_capacity_writes is None
                        and capacity <= initial_capacity / 2):
                    half_capacity_writes = page_writes
                continue
            heapq.heappush(
                heap, (self._trigger_cycle(block, frame), block, frame))

        host_accesses = page_writes / self.write_fraction
        return AgingResult(
            config=cfg,
            host_accesses_to_failure=host_accesses,
            page_writes_to_failure=page_writes,
            erase_cycles_to_failure=cycle,
            events=events,
            controller_stats=self.controller.stats,
            half_capacity_accesses=(
                half_capacity_writes / self.write_fraction
                if half_capacity_writes is not None else None),
            first_choices=first_choices,
        )

    def _restore_block_entries(self, block: int) -> None:
        """Re-mark the block's representative pages valid after an erase
        (steady-state rewrite traffic immediately repopulates them)."""
        for frame in range(self.config.frames_per_block):
            entry = self.controller.fpst.entry(PageAddress(block, frame, 0))
            entry.valid = True
            entry.access_count = self._frame_freq[(block, frame)]


def simulate_lifetime(workload: str, controller: str = "programmable",
                      seed: int = 42, **overrides) -> AgingResult:
    """One-call aging run for a Table 4 workload."""
    config = AgingConfig(workload=workload, controller=controller,
                         seed=seed, **overrides)
    return LifetimeSimulator(config).run()


def lifetime_ratio(workload: str, seed: int = 42, **overrides) -> float:
    """Programmable-vs-BCH1 lifetime improvement (the Figure 12 metric)."""
    programmable = simulate_lifetime(workload, "programmable", seed,
                                     **overrides)
    fixed = simulate_lifetime(workload, "bch1", seed, **overrides)
    if fixed.host_accesses_to_failure == 0:
        raise RuntimeError("baseline lifetime is zero")
    return (programmable.host_accesses_to_failure
            / fixed.host_accesses_to_failure)


# ---------------------------------------------------------------------------
# Error-regime simulation (physics-driven robustness studies)
# ---------------------------------------------------------------------------
#
# The event-driven :class:`LifetimeSimulator` above replays only *wear*
# (it skips the uneventful cycles between ECC-limit crossings, which is
# exactly what makes it fast and exactly why it cannot see time-dependent
# error processes).  The regime simulator below takes the complementary
# approach: a coarse time-stepped loop with the full
# :class:`~repro.reliability.ReliabilityModel` attached to the device, so
# retention, read disturb, program interference, and process variation
# all act on every probe read — and the scrub countermeasure
# (:meth:`~repro.core.controller.ProgrammableFlashController.refresh_block`)
# can fight back.  Each *step* stands for a fixed slab of real operation:
# so many W/E cycles of write traffic per live frame, so many reads, so
# much idle dwell time on the device clock.


@dataclass(frozen=True)
class ErrorRegime:
    """One operating point of the error physics (a Figure-13 column).

    A regime bundles the :class:`~repro.reliability.ReliabilityConfig`
    rates with the traffic pattern that excites them: write heat
    (``cycles_per_step``), read pressure (``reads_per_frame_per_step``),
    neighbour-write interference, retention dwell, and how old the
    device already is (``initial_cycles``).
    """

    name: str
    reliability: ReliabilityConfig
    #: W/E cycles every live frame accumulates per step (write heat;
    #: wear-leveling spreads writes uniformly, as in the aging model).
    cycles_per_step: float = 0.0
    #: Reads each live frame absorbs per step (read-disturb pressure)
    #: *on top of* the probe read the simulator issues itself.
    reads_per_frame_per_step: int = 0
    #: Neighbour programs deposited per frame per step (interference).
    neighbor_programs_per_step: int = 0
    #: Device idle time (us) added per step (retention exposure).
    dwell_us_per_step: float = 0.0
    #: P/E cycles pre-loaded into every block before the run starts
    #: (an already-aged device).
    initial_cycles: float = 0.0
    #: Host write share, converting page writes to host accesses.
    write_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.cycles_per_step < 0 or self.initial_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        if (self.reads_per_frame_per_step < 0
                or self.neighbor_programs_per_step < 0):
            raise ValueError("per-step event counts must be non-negative")
        if self.dwell_us_per_step < 0:
            raise ValueError("dwell_us_per_step must be non-negative")
        if not 0.0 < self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in (0, 1]")


def standard_regimes() -> Dict[str, ErrorRegime]:
    """The three canonical regimes of the fig13 sweep.

    Rates are tuned so expected raw error counts per frame read
    (``RBER * ~16.9k cells``) traverse the controller's t in [1, 12]
    BCH window over a run — low enough to start correctable, high
    enough to force repair decisions.
    """
    return {
        # Cold data sitting on a mostly idle device: essentially no
        # write traffic, so nothing refreshes naturally and retention
        # dominates.  Scrubbing is the only thing standing between this
        # regime and uncorrectable rot.
        "archival_cold": ErrorRegime(
            name="archival_cold",
            reliability=ReliabilityConfig(
                base_rber=1e-6,
                retention_rber_per_unit=3e-6,
                retention_unit_us=1e9,
                read_disturb_rber_per_read=1e-8,
                block_sigma=0.3,
            ),
            cycles_per_step=0.05,
            reads_per_frame_per_step=1,
            dwell_us_per_step=2e9,
            write_fraction=0.02,
        ),
        # A write-hot tenant: heavy program traffic ages cells fast and
        # sprays interference, but also rewrites data constantly, so
        # retention never accumulates.  Wear is what kills here — the
        # regime where the adaptive controller's repair ladder pays.
        "write_hot": ErrorRegime(
            name="write_hot",
            reliability=ReliabilityConfig(
                base_rber=1e-6,
                retention_rber_per_unit=1e-7,
                retention_unit_us=1e9,
                read_disturb_rber_per_read=5e-9,
                interference_rber_per_program=2e-8,
                wear_accel=2.0,
                block_sigma=0.3,
            ),
            cycles_per_step=40.0,
            reads_per_frame_per_step=4,
            neighbor_programs_per_step=4,
            dwell_us_per_step=1e8,
            write_fraction=0.6,
        ),
        # A device already most of the way through its rated endurance:
        # moderate mixed traffic, but the wear acceleration factor
        # multiplies every other error process from step one.
        "aged_device": ErrorRegime(
            name="aged_device",
            reliability=ReliabilityConfig(
                base_rber=1e-6,
                retention_rber_per_unit=8e-7,
                retention_unit_us=1e9,
                read_disturb_rber_per_read=1e-8,
                interference_rber_per_program=1e-8,
                wear_accel=2.5,
                block_sigma=0.3,
            ),
            cycles_per_step=10.0,
            reads_per_frame_per_step=2,
            neighbor_programs_per_step=1,
            dwell_us_per_step=5e8,
            initial_cycles=7_000.0,
            write_fraction=0.3,
        ),
    }


@dataclass(frozen=True)
class RegimeConfig:
    """Configuration of one error-regime run."""

    regime: ErrorRegime
    controller: str = "programmable"      # or "bch1"
    num_blocks: int = 8
    frames_per_block: int = 4
    stdev_frac: float = 0.05
    seed: int = 42
    max_steps: int = 400
    #: Scrub policy; ``None`` disables background refresh.
    scrub: Optional[ScrubConfig] = None

    def __post_init__(self) -> None:
        if self.controller not in ("programmable", "bch1"):
            raise ValueError("controller must be 'programmable' or 'bch1'")
        if self.num_blocks < 1 or self.frames_per_block < 1:
            raise ValueError("geometry must be non-trivial")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")


@dataclass
class RegimeResult:
    """Outcome of one error-regime run."""

    config: RegimeConfig
    steps_run: int
    host_accesses: float
    page_writes: float
    erase_cycles: float
    probe_reads: int
    uncorrectable_reads: int
    #: True when the device outlived ``max_steps`` (did not totally fail).
    survived: bool
    controller_stats: ControllerStats
    reliability: ReliabilityStats
    scrub: Optional[ScrubStats] = None
    first_choices: Dict[str, int] = field(default_factory=dict)

    @property
    def uber(self) -> float:
        """Uncorrectable bit error rate: uncorrectable reads per bit
        read (the denominator counts every controller read's cells)."""
        if self.probe_reads == 0:
            return 0.0
        return (self.uncorrectable_reads
                / (self.probe_reads * _REGIME_CELLS_PER_FRAME))

    @property
    def repair_breakdown(self) -> Dict[str, float]:
        """Lifetime-wide repair-choice mix (ECC vs density)."""
        return self.controller_stats.reconfig_breakdown()


#: Bits per frame under the default 2048+64-byte page geometry — the
#: UBER denominator's per-read bit count.
_REGIME_CELLS_PER_FRAME = (2048 + 64) * 8


class RegimeSimulator:
    """Time-stepped device aging under one error regime.

    Each step deposits the regime's traffic (wear cycles, reads,
    neighbour programs, dwell time) into the device and the reliability
    model, then issues one *real* probe read per live frame so the
    controller's retry ladder, ECC escalation, and density downgrades
    all respond to the physics.  Optionally a scrub pass (whole-block
    :meth:`~repro.core.controller.ProgrammableFlashController.refresh_block`)
    runs whenever the scrub interval elapses on the device clock.

    Determinism: the device, wear model, and reliability model all seed
    their streams from ``config.seed`` via ``derive_seed``; the step
    loop itself consumes no randomness, so one (regime, controller,
    seed) triple always produces the same trajectory.
    """

    def __init__(self, config: RegimeConfig):
        self.config = config
        regime = config.regime
        geometry = FlashGeometry(
            frames_per_block=config.frames_per_block,
            num_blocks=config.num_blocks,
        )
        lifetime_model = CellLifetimeModel(
            WearModelConfig(stdev_frac=config.stdev_frac,
                            cells_per_page=geometry.cells_per_frame))
        # Rebase the model's stream on the run seed so regime sweeps over
        # seeds decorrelate, while the regime's rates stay authoritative.
        self.model = ReliabilityModel(replace(
            regime.reliability,
            seed=derive_seed(config.seed, f"regime:{regime.name}")))
        self.device = FlashDevice(
            geometry=geometry,
            lifetime_model=lifetime_model,
            initial_mode=CellMode.MLC,
            seed=config.seed,
            reliability=self.model,
        )
        if config.controller == "programmable":
            self.controller = ProgrammableFlashController(self.device)
        else:
            self.controller = FixedEccController(self.device, strength=1)
        self._prime()

    def _prime(self) -> None:
        """Steady-state context: valid representative pages with seeded
        access counts, FGST statistics for the repair heuristic, and any
        pre-existing age the regime specifies."""
        cfg = self.config
        rng = Random(derive_seed(cfg.seed, "regime:fpst-prime"))
        fgst = self.controller.fgst
        fgst.hits = 900_000
        fgst.misses = 100_000
        fgst.total_accesses = 1_000_000
        fgst.avg_hit_latency_us = self.device.timing.mlc_read_us
        fgst.avg_miss_penalty_us = 4200.0
        self.controller.marginal_miss_estimate = 1e-4
        self._frame_freq: Dict[Tuple[int, int], int] = {}
        for block in range(cfg.num_blocks):
            for frame in range(cfg.frames_per_block):
                count = rng.randrange(100, 10_000)
                self._frame_freq[(block, frame)] = count
                entry = self.controller.fpst.entry(
                    PageAddress(block, frame, 0))
                entry.access_count = count
                entry.valid = True
            if cfg.regime.initial_cycles > 0:
                self.device.age_block(block, cfg.regime.initial_cycles)

    def _restore_block_entries(self, block: int) -> None:
        for frame in range(self.config.frames_per_block):
            entry = self.controller.fpst.entry(PageAddress(block, frame, 0))
            entry.valid = True
            entry.access_count = self._frame_freq[(block, frame)]

    def _live_blocks(self) -> List[int]:
        return list(self.controller.fbst.live_blocks())

    def run(self) -> RegimeResult:
        cfg = self.config
        regime = cfg.regime
        controller = self.controller
        device = self.device
        model = self.model
        scrub_stats = ScrubStats() if cfg.scrub is not None else None
        last_scrub_us = 0.0
        cycles_since_rewrite = 0.0
        page_writes = 0.0
        erase_cycles = 0.0
        probe_reads = 0
        uncorrectable = 0
        first_choices: Dict[str, int] = {}
        decided: set[Tuple[int, int]] = set()
        steps = 0

        for _ in range(cfg.max_steps):
            if controller.all_blocks_retired:
                break
            steps += 1
            live = self._live_blocks()
            # -- deposit this step's traffic into the physics ------------
            if regime.cycles_per_step > 0:
                live_pages = 0
                for block in live:
                    live_pages += device.block_capacity_pages(block)
                    device.age_block(block, regime.cycles_per_step)
                page_writes += regime.cycles_per_step * live_pages
                erase_cycles += regime.cycles_per_step
            if regime.dwell_us_per_step > 0:
                device.advance_clock(regime.dwell_us_per_step)
            if (regime.reads_per_frame_per_step
                    or regime.neighbor_programs_per_step):
                for block in live:
                    for frame in range(cfg.frames_per_block):
                        model.accumulate(
                            block, frame,
                            reads=regime.reads_per_frame_per_step,
                            neighbor_programs=(
                                regime.neighbor_programs_per_step))
            # Steady-state rewrite traffic refreshes data roughly once
            # per full W/E cycle of writes: a write-hot regime never
            # accumulates retention age, an archival one always does.
            cycles_since_rewrite += regime.cycles_per_step
            if cycles_since_rewrite >= 1.0:
                cycles_since_rewrite = 0.0
                for block in live:
                    model.note_erase(block, device.clock_us,
                                     cfg.frames_per_block)
            # -- probe reads: the controller sees the physics ------------
            for block in live:
                if controller.is_retired(block):
                    continue
                for frame in range(cfg.frames_per_block):
                    address = PageAddress(block, frame, 0)
                    entry = controller.fpst.get(address)
                    if entry is None or not entry.valid:
                        continue
                    entry.access_count = self._frame_freq[(block, frame)]
                    probe_reads += 1
                    result = controller.read(address)
                    if not result.recovered:
                        uncorrectable += 1
                    if (result.reconfig is not None
                            and (block, frame) not in decided):
                        decided.add((block, frame))
                        first_choices[result.reconfig.value] = \
                            first_choices.get(result.reconfig.value, 0) + 1
                    if result.reconfig is not None or not result.recovered:
                        if (block, frame) in controller._pending_modes:
                            controller.erase(block)
                            self._restore_block_entries(block)
                    if controller.is_retired(block):
                        break
            # -- scrub countermeasure ------------------------------------
            if (cfg.scrub is not None
                    and device.clock_us - last_scrub_us
                    >= cfg.scrub.interval_us):
                last_scrub_us = device.clock_us
                self._scrub_pass(scrub_stats)

        host_accesses = page_writes / regime.write_fraction
        return RegimeResult(
            config=cfg,
            steps_run=steps,
            host_accesses=host_accesses,
            page_writes=page_writes,
            erase_cycles=erase_cycles,
            probe_reads=probe_reads,
            uncorrectable_reads=uncorrectable,
            survived=not controller.all_blocks_retired,
            controller_stats=controller.stats,
            reliability=model.stats,
            scrub=scrub_stats,
            first_choices=first_choices,
        )

    def _scrub_pass(self, stats: Optional[ScrubStats]) -> None:
        """Refresh every live block whose representative data has aged
        past the scrub threshold (whole-block in-place refresh)."""
        assert stats is not None
        cfg = self.config
        scrub = cfg.scrub
        assert scrub is not None
        controller = self.controller
        device = self.device
        model = self.model
        stats.passes += 1
        budget = scrub.max_pages_per_pass
        for block in self._live_blocks():
            if budget <= 0 or controller.is_retired(block):
                continue
            stats.pages_scanned += cfg.frames_per_block
            age_us = model.retention_age_us(block, 0, device.clock_us)
            if age_us < scrub.min_age_us:
                continue
            budget -= cfg.frames_per_block
            reads_before = device.stats.reads
            programs_before = device.stats.programs
            uncorrectable_before = controller.stats.uncorrectable_reads
            elapsed = controller.refresh_block(block)
            stats.scrub_reads += device.stats.reads - reads_before
            stats.page_rewrites += device.stats.programs - programs_before
            stats.uncorrectable_found += (
                controller.stats.uncorrectable_reads - uncorrectable_before)
            stats.busy_us += elapsed
            if not controller.is_retired(block):
                stats.blocks_refreshed += 1
                self._restore_block_entries(block)


def simulate_regime(regime: ErrorRegime | str,
                    controller: str = "programmable",
                    seed: int = 42, **overrides) -> RegimeResult:
    """One-call regime run; ``regime`` may be a standard-regime name."""
    if isinstance(regime, str):
        regime = standard_regimes()[regime]
    config = RegimeConfig(regime=regime, controller=controller,
                          seed=seed, **overrides)
    return RegimeSimulator(config).run()
