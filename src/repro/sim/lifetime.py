"""Accelerated (event-driven) Flash aging simulation (Figures 11 and 12).

Figure 12 measures the number of host accesses a Flash based disk cache
survives before *total failure* (every block retired), comparing the
programmable controller against a fixed BCH-1 controller; Figure 11 breaks
down which repair the programmable controller chose (stronger ECC vs
MLC->SLC) per workload.  Simulating 10^5..10^6 W/E cycles page by page is
infeasible, so this module replays the controller's *reliability events*
exactly and skips the uneventful cycles in between:

* Global wear-leveling spreads erases uniformly over live blocks, so all
  frames age at the same W/E-cycle rate; each block erase absorbs one
  block's worth of page writes, converting cycles to host page-writes via
  the live capacity (as blocks retire, survivors age faster).
* A frame's next reliability event is the damage level at which its raw
  error count reaches its current ECC strength — available in closed form
  from the device's order-statistic failure sampler
  (:meth:`~repro.flash.device.FlashDevice.next_error_damage`), divided by
  the mode's read sensitivity.
* At each event the *real* controller policy runs
  (:meth:`~repro.core.controller.ProgrammableFlashController.choose_repair`
  via the fault-response path), fed per-frame access frequencies sampled
  from the workload's popularity distribution over the cached (hottest)
  half of the working set — Figure 11's configuration sets the Flash to
  half the working-set size.

The result records host accesses to total failure, the event log, and the
controller's reconfiguration statistics.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from ..core.controller import (
    ControllerStats,
    FixedEccController,
    ProgrammableFlashController,
    ReconfigKind,
)
from ..flash.device import FlashDevice, MLC_READ_SENSITIVITY
from ..parallel import derive_seed
from ..flash.geometry import FlashGeometry, PageAddress
from ..flash.timing import CellMode
from ..flash.wear import CellLifetimeModel, WearModelConfig
from ..workloads.macro import MACRO_WORKLOADS, _MICRO_SPECS, MacroWorkloadSpec
from ..workloads.synthetic import SyntheticConfig

__all__ = ["AgingConfig", "AgingResult", "LifetimeSimulator",
           "simulate_lifetime", "lifetime_ratio"]

#: Footprints are scaled to at most this many pages for the aging runs;
#: popularity *shape* is preserved (exp rates are rescaled).
_MAX_AGING_FOOTPRINT_PAGES = 1 << 18


@dataclass(frozen=True)
class AgingConfig:
    """Configuration of one accelerated aging run."""

    workload: str = "alpha2"
    controller: str = "programmable"      # or "bch1"
    num_blocks: int = 16
    frames_per_block: int = 8
    cache_coverage: float = 0.5           # Flash = half the working set
    stdev_frac: float = 0.05
    seed: int = 42
    max_events: int = 200_000

    def __post_init__(self) -> None:
        if self.controller not in ("programmable", "bch1"):
            raise ValueError("controller must be 'programmable' or 'bch1'")
        if not 0.0 < self.cache_coverage <= 1.0:
            raise ValueError("cache_coverage must be in (0, 1]")
        if self.num_blocks < 1 or self.frames_per_block < 1:
            raise ValueError("geometry must be non-trivial")


@dataclass
class AgingResult:
    """Outcome of an accelerated aging run."""

    config: AgingConfig
    host_accesses_to_failure: float
    page_writes_to_failure: float
    erase_cycles_to_failure: float
    events: int
    controller_stats: ControllerStats
    half_capacity_accesses: Optional[float] = None
    first_choices: Dict[str, int] = field(default_factory=dict)

    @property
    def reconfig_breakdown(self) -> Dict[str, float]:
        """Lifetime-wide descriptor-update mix."""
        return self.controller_stats.reconfig_breakdown()

    @property
    def early_reconfig_breakdown(self) -> Dict[str, float]:
        """Figure 11's quantity: the decision mix "near the point where
        the Flash cells start to fail" — each frame's *first*
        reconfiguration, before forced late-life ECC escalation dilutes
        the signal."""
        total = sum(self.first_choices.values())
        if total == 0:
            return {"code_strength": 0.0, "density": 0.0}
        return {
            "code_strength": self.first_choices.get("code_strength", 0) / total,
            "density": self.first_choices.get("density", 0) / total,
        }


def _workload_profile(name: str) -> Tuple[int, float, tuple]:
    """(footprint pages, write fraction, tail spec) for any Table 4 name."""
    if name in MACRO_WORKLOADS:
        spec = MACRO_WORKLOADS[name]
        return spec.footprint_pages, 1.0 - spec.read_fraction, spec.tail
    if name in _MICRO_SPECS:
        return (SyntheticConfig().footprint_pages, 0.1, _MICRO_SPECS[name])
    raise KeyError(f"unknown workload {name!r}")


class LifetimeSimulator:
    """Event-driven Flash aging for one (workload, controller) pair."""

    def __init__(self, config: AgingConfig):
        self.config = config
        footprint, write_fraction, tail = _workload_profile(config.workload)
        self.write_fraction = max(write_fraction, 1e-3)
        # Scale the footprint for tractable popularity tables, preserving
        # the tail shape (exp rate scales inversely with footprint).
        scale = 1.0
        if footprint > _MAX_AGING_FOOTPRINT_PAGES:
            scale = footprint / _MAX_AGING_FOOTPRINT_PAGES
            footprint = _MAX_AGING_FOOTPRINT_PAGES
        if tail[0] == "exp":
            tail = ("exp", tail[1] * scale)
        self.footprint_pages = footprint
        spec = MacroWorkloadSpec(
            name=config.workload, description="aging profile",
            footprint_bytes=footprint * 2048,
            read_fraction=1.0 - self.write_fraction, tail=tail)
        self.distribution = spec.make_distribution(footprint)

        geometry = FlashGeometry(
            frames_per_block=config.frames_per_block,
            num_blocks=config.num_blocks,
        )
        lifetime_model = CellLifetimeModel(
            WearModelConfig(stdev_frac=config.stdev_frac,
                            cells_per_page=geometry.cells_per_frame))
        self.device = FlashDevice(
            geometry=geometry,
            lifetime_model=lifetime_model,
            initial_mode=CellMode.MLC,
            seed=config.seed,
        )
        if config.controller == "programmable":
            self.controller = ProgrammableFlashController(self.device)
        else:
            self.controller = FixedEccController(self.device, strength=1)
        self._prime_fgst_and_fpst()

    # -- setup -------------------------------------------------------------------

    def _prime_fgst_and_fpst(self) -> None:
        """Install the steady-state context the repair heuristic reads.

        Frames hold the hottest ``cache_coverage`` share of the working
        set; each frame's representative page gets an access frequency
        sampled from the popularity of that cached range, and the FGST
        carries the corresponding miss rate and latencies.
        """
        cfg = self.config
        cached_pages = max(int(self.footprint_pages * cfg.cache_coverage), 1)
        frames = cfg.num_blocks * cfg.frames_per_block
        # The FPST-priming stream must be independent of the device's own
        # wear stream (both flow from cfg.seed); derive it instead of the
        # old ``seed + 1``, which is the fig9 drift pattern SIM002 bans.
        rng = Random(derive_seed(cfg.seed, "lifetime:fpst-prime"))
        total_scale = 1_000_000
        fgst = self.controller.fgst
        cached_mass = 0.0
        # Cumulative popularity of the cached range, sampled (the exact sum
        # over millions of ranks is unnecessary for the heuristic).
        probe = max(cached_pages // 4096, 1)
        for rank in range(0, cached_pages, probe):
            cached_mass += self.distribution.rank_probability(rank) * probe
        cached_mass = min(cached_mass, 1.0)
        fgst.hits = int(total_scale * cached_mass)
        fgst.misses = total_scale - fgst.hits
        fgst.total_accesses = total_scale
        fgst.avg_hit_latency_us = self.device.timing.mlc_read_us
        fgst.avg_miss_penalty_us = 4200.0

        # The marginal-page miss cost the heuristic compares against: the
        # popularity of the least popular *cached* page (what the cache
        # would lose to a density reduction).
        marginal_rank = min(cached_pages, self.footprint_pages - 1)
        self.controller.marginal_miss_estimate = \
            self.distribution.rank_probability(marginal_rank)

        # Frames are assigned popularity ranks drawn from the access
        # distribution itself (not uniformly): descriptor updates are
        # observed on reads, so frequently accessed pages dominate the
        # update mix — the effect behind Figure 11's tail-length trend.
        self._frame_freq: Dict[Tuple[int, int], int] = {}
        for block in range(cfg.num_blocks):
            for frame in range(cfg.frames_per_block):
                rank = self.distribution.sample_rank(rng.random())
                rank = min(rank, cached_pages - 1)
                probability = self.distribution.rank_probability(rank)
                count = int(probability * total_scale)
                self._frame_freq[(block, frame)] = count
                entry = self.controller.fpst.entry(
                    PageAddress(block, frame, 0))
                entry.access_count = count
                entry.valid = True

    # -- event mechanics ------------------------------------------------------------

    def _frame_strength(self, block: int, frame: int) -> int:
        return self.controller.fpst.entry(
            PageAddress(block, frame, 0)).ecc_strength

    def _trigger_cycle(self, block: int, frame: int) -> float:
        """W/E cycle count at which this frame next reaches its ECC limit."""
        strength = self._frame_strength(block, frame)
        damage = self.device.next_error_damage(block, frame, strength - 1)
        sensitivity = self.device.frame_read_sensitivity(block, frame)
        # Nudge past the exact threshold so the replayed read definitely
        # observes the failure (guards against float-division rounding
        # landing one ulp short, which would re-enqueue the same event
        # forever).
        return damage / sensitivity * (1.0 + 1e-9) + 1e-9

    def _live_capacity_pages(self) -> int:
        total = 0
        for block in self.controller.fbst.live_blocks():
            total += self.device.block_capacity_pages(block)
        return total

    def run(self) -> AgingResult:
        """Age the device to total failure; returns the lifetime record."""
        cfg = self.config
        heap: List[Tuple[float, int, int]] = []
        for block in range(cfg.num_blocks):
            for frame in range(cfg.frames_per_block):
                heapq.heappush(
                    heap, (self._trigger_cycle(block, frame), block, frame))

        cycle = 0.0
        page_writes = 0.0
        first_choices: Dict[str, int] = {}
        decided: set[Tuple[int, int]] = set()
        half_capacity_writes: Optional[float] = None
        initial_capacity = self._live_capacity_pages()
        events = 0
        while heap and not self.controller.all_blocks_retired:
            events += 1
            if events > cfg.max_events:
                raise RuntimeError(
                    "aging simulation exceeded max_events; the policy is "
                    "likely oscillating")
            trigger, block, frame = heapq.heappop(heap)
            if self.controller.is_retired(block):
                continue
            if math.isinf(trigger):
                break
            if trigger > cycle:
                live_pages = self._live_capacity_pages()
                delta = trigger - cycle
                page_writes += delta * live_pages
                # Deposit the elapsed damage in every live block.
                for live in self.controller.fbst.live_blocks():
                    self.device.age_block(live, delta)
                cycle = trigger
            # The frame has reached its correction limit: replay the
            # controller's fault response via a real (zero-extra-damage)
            # read of the representative page.
            address = PageAddress(block, frame, 0)
            entry = self.controller.fpst.entry(address)
            entry.access_count = self._frame_freq[(block, frame)]
            result = self.controller.read(address)
            if result.reconfig is not None and (block, frame) not in decided:
                decided.add((block, frame))
                first_choices[result.reconfig.value] = \
                    first_choices.get(result.reconfig.value, 0) + 1
            if result.reconfig is not None or not result.recovered:
                # A pended density change needs its erase to take effect.
                if (block, frame) in self.controller._pending_modes:
                    self.controller.erase(block)
                    self._restore_block_entries(block)
            if self.controller.is_retired(block):
                capacity = self._live_capacity_pages()
                if (half_capacity_writes is None
                        and capacity <= initial_capacity / 2):
                    half_capacity_writes = page_writes
                continue
            heapq.heappush(
                heap, (self._trigger_cycle(block, frame), block, frame))

        host_accesses = page_writes / self.write_fraction
        return AgingResult(
            config=cfg,
            host_accesses_to_failure=host_accesses,
            page_writes_to_failure=page_writes,
            erase_cycles_to_failure=cycle,
            events=events,
            controller_stats=self.controller.stats,
            half_capacity_accesses=(
                half_capacity_writes / self.write_fraction
                if half_capacity_writes is not None else None),
            first_choices=first_choices,
        )

    def _restore_block_entries(self, block: int) -> None:
        """Re-mark the block's representative pages valid after an erase
        (steady-state rewrite traffic immediately repopulates them)."""
        for frame in range(self.config.frames_per_block):
            entry = self.controller.fpst.entry(PageAddress(block, frame, 0))
            entry.valid = True
            entry.access_count = self._frame_freq[(block, frame)]


def simulate_lifetime(workload: str, controller: str = "programmable",
                      seed: int = 42, **overrides) -> AgingResult:
    """One-call aging run for a Table 4 workload."""
    config = AgingConfig(workload=workload, controller=controller,
                         seed=seed, **overrides)
    return LifetimeSimulator(config).run()


def lifetime_ratio(workload: str, seed: int = 42, **overrides) -> float:
    """Programmable-vs-BCH1 lifetime improvement (the Figure 12 metric)."""
    programmable = simulate_lifetime(workload, "programmable", seed,
                                     **overrides)
    fixed = simulate_lifetime(workload, "bch1", seed, **overrides)
    if fixed.host_accesses_to_failure == 0:
        raise RuntimeError("baseline lifetime is zero")
    return (programmable.host_accesses_to_failure
            / fixed.host_accesses_to_failure)
