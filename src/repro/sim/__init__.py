"""Simulation layer: platform config, trace engines (serial and
event-driven concurrent), server model, aging."""

from .config import PlatformConfig, TABLE3_PLATFORM
from .engine import QueueingStats, SimulationReport, run_trace
from .events import Event, EventLoop, EventType
from .concurrent import run_trace_concurrent
from .server import ServerModel
from .lifetime import (
    AgingConfig,
    AgingResult,
    LifetimeSimulator,
    simulate_lifetime,
    lifetime_ratio,
)

__all__ = [
    "PlatformConfig",
    "TABLE3_PLATFORM",
    "QueueingStats",
    "SimulationReport",
    "run_trace",
    "Event",
    "EventLoop",
    "EventType",
    "run_trace_concurrent",
    "ServerModel",
    "AgingConfig",
    "AgingResult",
    "LifetimeSimulator",
    "simulate_lifetime",
    "lifetime_ratio",
]
