"""Simulation layer: platform config, trace engine, server model, aging."""

from .config import PlatformConfig, TABLE3_PLATFORM
from .engine import SimulationReport, run_trace
from .server import ServerModel
from .lifetime import (
    AgingConfig,
    AgingResult,
    LifetimeSimulator,
    simulate_lifetime,
    lifetime_ratio,
)

__all__ = [
    "PlatformConfig",
    "TABLE3_PLATFORM",
    "SimulationReport",
    "run_trace",
    "ServerModel",
    "AgingConfig",
    "AgingResult",
    "LifetimeSimulator",
    "simulate_lifetime",
    "lifetime_ratio",
]
