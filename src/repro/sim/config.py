"""The simulated platform configuration (paper Table 3).

One dataclass gathering every Table 3 row, so experiments reference the
paper's configuration symbolically instead of re-typing magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flash.timing import (
    DEFAULT_DISK_TIMING,
    DEFAULT_DRAM_TIMING,
    DEFAULT_FLASH_TIMING,
    DiskTiming,
    DramTiming,
    FlashTiming,
)

__all__ = ["PlatformConfig", "TABLE3_PLATFORM"]


@dataclass(frozen=True)
class PlatformConfig:
    """Table 3, verbatim."""

    processor_cores: int = 8
    processor_issue: str = "single issue in-order"
    clock_hz: float = 1e9
    l1_ways: int = 4
    l1_bytes: int = 16 << 10
    l2_ways: int = 8
    l2_bytes: int = 2 << 20
    dram_bytes_min: int = 128 << 20
    dram_bytes_max: int = 512 << 20
    dram: DramTiming = DEFAULT_DRAM_TIMING
    flash_bytes_min: int = 256 << 20
    flash_bytes_max: int = 2 << 30
    flash: FlashTiming = DEFAULT_FLASH_TIMING
    bch_latency_min_us: float = 58.0
    bch_latency_max_us: float = 400.0
    disk: DiskTiming = DEFAULT_DISK_TIMING

    @property
    def dram_dimm_range(self) -> tuple[int, int]:
        """1-4 DIMMs of 128MB (Table 3: "128~512MB (1~4 DIMMs)")."""
        return (self.dram_bytes_min // (128 << 20),
                self.dram_bytes_max // (128 << 20))


TABLE3_PLATFORM = PlatformConfig()
