"""The full storage hierarchies of Figure 2.

Two systems, same request API:

* :class:`DramOnlySystem` — the conventional left side of Figure 2: a
  DRAM primary disk cache (e.g. 512MB) in front of the hard drive.
* :class:`FlashBackedSystem` — the paper's right side: a smaller DRAM
  primary disk cache (e.g. 256MB) in front of a Flash secondary disk
  cache (e.g. 1GB) with its programmable memory controller, in front of
  the hard drive.

Both process page-granular :class:`~repro.workloads.trace.TraceRecord`
streams closed-loop.  Foreground latency (what a request waits on) is kept
separate from background work (PDC write-back, Flash fills, GC) — the
paper performs "all GCs ... in the background" — but background work still
consumes device busy time and energy, and the wall clock can never run
faster than the busiest device, which is how GC pressure feeds back into
throughput.

Accounting hooks expose everything the evaluation figures need: the
Figure 9 power/bandwidth breakdown, Figure 10 throughput-vs-ECC, and the
miss rates of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..dram.model import DramModel
from ..dram.page_cache import PrimaryDiskCache
from ..disk.model import DiskModel
from ..faults.injector import FaultConfig, FaultInjector
from ..flash.device import DeviceOp, FlashDevice
from ..flash.geometry import FlashGeometry
from ..flash.timing import CellMode
from ..flash.wear import CellLifetimeModel
from ..reliability import (
    ReliabilityConfig,
    ReliabilityModel,
    ScrubConfig,
    Scrubber,
)
from ..workloads.trace import PAGE_BYTES, TraceRecord
from .cache import FlashCacheConfig, FlashDiskCache
from .controller import ControllerConfig, ProgrammableFlashController

__all__ = [
    "SystemConfig",
    "RequestStats",
    "PendingRequest",
    "DramOnlySystem",
    "FlashBackedSystem",
    "build_flash_system",
]


@dataclass(frozen=True)
class SystemConfig:
    """Capacity plan for a simulated platform (Table 3 row)."""

    dram_bytes: int
    flash_bytes: int = 0
    page_bytes: int = PAGE_BYTES
    #: Fraction of DRAM used as page-cache slots (the rest models the OS,
    #: Flash metadata tables, and application footprint).
    pdc_fraction: float = 0.85
    #: CPU + network time a request spends outside the storage stack; sets
    #: the device idle gaps that power accounting depends on.
    cpu_us_per_request: float = 100.0
    #: Platform size the DRAM power model should represent when
    #: ``dram_bytes`` has been scaled down for simulation speed.
    power_model_dram_bytes: int | None = None
    #: Dirty data is flushed to disk in batches every this many requests,
    #: modelling the OS's periodic write-back daemon; batched flushes are
    #: largely sequential, so they cost one seek plus streaming transfer.
    flush_interval_requests: int = 2000

    def __post_init__(self) -> None:
        if self.dram_bytes < self.page_bytes:
            raise ValueError("DRAM must hold at least one page")
        if not 0.0 < self.pdc_fraction <= 1.0:
            raise ValueError("pdc_fraction must be in (0, 1]")

    @property
    def pdc_pages(self) -> int:
        return max(1, int(self.dram_bytes * self.pdc_fraction)
                   // self.page_bytes)


@dataclass
class RequestStats:
    """Foreground request accounting."""

    reads: int = 0
    writes: int = 0
    total_latency_us: float = 0.0
    disk_fills: int = 0
    flash_fills: int = 0

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def average_latency_us(self) -> float:
        return self.total_latency_us / self.requests if self.requests else 0.0


@dataclass
class PendingRequest:
    """One submitted-but-not-completed request (non-blocking API).

    ``submit_read``/``submit_write`` run the request's *functional* work
    immediately (cache state must mutate in trace order for determinism)
    and return this handle; the event engine owns the *timing*: it
    stamps ``arrive_us``/``dispatch_us``/``finish_us`` while scheduling
    ``ops`` on the channel/plane fabric, then closes the request with
    :meth:`_SystemBase.complete_request`.
    """

    page: int
    is_read: bool
    #: Foreground storage latency the serial model charged (us).
    service_us: float
    #: NAND ops issued while servicing (foreground fills and any GC the
    #: request triggered), in issue order.
    ops: List[DeviceOp] = field(default_factory=list)
    #: Background flash (GC) time this request generated.
    gc_us: float = 0.0
    #: Background time (flash fills, flushes) this request generated.
    background_delta_us: float = 0.0
    # -- stamped by the event engine ---------------------------------------
    arrive_us: float = 0.0
    dispatch_us: float = 0.0
    finish_us: float = 0.0
    #: Opaque engine bookkeeping slot (the cluster engine parks the
    #: originating arrival tuple here so a request in flight when its
    #: shard dies can be retried on a surviving replica).
    context: Optional[object] = None

    @property
    def queue_delay_us(self) -> float:
        """Waiting time beyond the serial service latency."""
        return max(self.finish_us - self.dispatch_us - self.service_us, 0.0)


class _SystemBase:
    """Shared request-loop plumbing of both hierarchies."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.dram = DramModel(size_bytes=config.dram_bytes,
                              power_model_bytes=config.power_model_dram_bytes)
        self.pdc = PrimaryDiskCache(capacity_pages=config.pdc_pages)
        self.disk = DiskModel()
        self.stats = RequestStats()
        self.background_us = 0.0
        #: Optional :class:`repro.telemetry.Telemetry` handle observing
        #: the request path; ``None`` (default) adds nothing.
        self.telemetry = None
        self._writeback_queue: list[int] = []
        self._requests_since_flush = 0

    # Subclasses implement the levels below the PDC.
    def _fill_from_below(self, page: int) -> float:
        raise NotImplementedError

    def _write_back(self, page: int) -> None:
        raise NotImplementedError

    def read(self, page: int) -> float:
        """Service one page read; returns foreground latency (us)."""
        self.stats.reads += 1
        latency = self.dram.read(self.config.page_bytes)
        hit, evictions = self.pdc.read(page)
        if not hit:
            latency += self._fill_from_below(page)
            for eviction in evictions:
                if eviction.dirty:
                    self._write_back(eviction.page)
        self.stats.total_latency_us += latency
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.request_read(latency, hit)
        self._tick_flush()
        return latency

    def write(self, page: int) -> float:
        """Service one page write (into the PDC, write-back)."""
        self.stats.writes += 1
        latency = self.dram.write(self.config.page_bytes)
        hit, evictions = self.pdc.write(page)
        for eviction in evictions:
            if eviction.dirty:
                self._write_back(eviction.page)
        self.stats.total_latency_us += latency
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.request_write(latency, hit)
        self._tick_flush()
        return latency

    # -- non-blocking entry points ---------------------------------------------

    def _device(self) -> Optional[FlashDevice]:
        """The NAND device whose ops the submit path captures (if any)."""
        return None

    def _gc_time_us(self) -> float:
        """Cumulative background-GC flash time (0 without a flash tier)."""
        return 0.0

    def submit_read(self, page: int) -> PendingRequest:
        """Non-blocking :meth:`read`: returns a :class:`PendingRequest`.

        The functional work (cache state, stats, telemetry) happens now,
        exactly as in :meth:`read`; the timing work — scheduling the
        captured NAND ops, charging queue delay — belongs to the caller
        (the event engine).
        """
        return self._submit(page, is_read=True)

    def submit_write(self, page: int) -> PendingRequest:
        """Non-blocking :meth:`write`; see :meth:`submit_read`."""
        return self._submit(page, is_read=False)

    def _submit(self, page: int, is_read: bool) -> PendingRequest:
        device = self._device()
        gc_before_us = self._gc_time_us()
        background_before_us = self.background_us
        ops: List[DeviceOp] = []
        if device is not None:
            with device.capture_ops(ops):
                service_us = self.read(page) if is_read else self.write(page)
        else:
            service_us = self.read(page) if is_read else self.write(page)
        return PendingRequest(
            page=page,
            is_read=is_read,
            service_us=service_us,
            ops=ops,
            gc_us=self._gc_time_us() - gc_before_us,
            background_delta_us=self.background_us - background_before_us,
        )

    def complete_request(self, pending: PendingRequest) -> float:
        """Close out a submitted request once the engine stamped its
        times; returns the response time (queueing + service, us)."""
        if pending.finish_us < pending.dispatch_us:
            raise ValueError("complete_request before the engine stamped "
                             "dispatch/finish times")
        return pending.finish_us - pending.dispatch_us

    def _tick_flush(self) -> None:
        self._requests_since_flush += 1
        if self._requests_since_flush >= self.config.flush_interval_requests:
            self._requests_since_flush = 0
            self._periodic_flush()

    def _periodic_flush(self) -> None:
        """Write queued dirty pages to disk as one batched, mostly
        sequential operation (the write-back daemon's elevator pass)."""
        self._drain_writeback_queue()

    def _drain_writeback_queue(self) -> None:
        if self._writeback_queue:
            self.background_us += self.disk.write(
                num_pages=len(self._writeback_queue))
            self._writeback_queue.clear()

    def process(self, record: TraceRecord) -> float:
        """Apply one trace record (multi-page extents expand)."""
        total = 0.0
        for page in record.expand():
            if record.is_read:
                total += self.read(page)
            else:
                total += self.write(page)
        return total

    def run(self, records: Iterable[TraceRecord]) -> float:
        """Process a whole trace; returns total foreground latency."""
        total = 0.0
        for record in records:
            total += self.process(record)
        return total

    # -- time/power accounting ---------------------------------------------------

    @property
    def wall_clock_us(self) -> float:
        """Simulated elapsed time: foreground latency plus per-request
        CPU/network time, but never less than the busiest device
        (background work cannot be hidden forever)."""
        foreground = (self.stats.total_latency_us
                      + self.stats.requests * self.config.cpu_us_per_request)
        floor = max(self.disk.busy_us,
                    self.dram.read_busy_us + self.dram.write_busy_us)
        flash_busy = getattr(self, "_flash_busy_us", lambda: 0.0)()
        return max(foreground, floor, flash_busy)

    def throughput_rps(self) -> float:
        """Requests per second over the simulated window."""
        wall = self.wall_clock_us
        return self.stats.requests / (wall * 1e-6) if wall else 0.0

    def reset_measurement(self) -> None:
        """Zero the time/energy accounting while keeping cache contents.

        Call after a warmup phase so power and throughput report the
        steady state rather than the cold-start disk fills.
        """
        self.dram.reset_stats()
        self.disk.reset_stats()
        self.stats = RequestStats()
        self.background_us = 0.0


class DramOnlySystem(_SystemBase):
    """Conventional platform: DRAM page cache straight onto the disk."""

    def _fill_from_below(self, page: int) -> float:
        self.stats.disk_fills += 1
        latency = self.disk.read()
        latency += self.dram.write(self.config.page_bytes)
        return latency

    def _write_back(self, page: int) -> None:
        # OS write-back is asynchronous and batched: the page joins the
        # write-back queue drained by the periodic flush.
        self._writeback_queue.append(page)


class FlashBackedSystem(_SystemBase):
    """The paper's platform: DRAM PDC -> Flash disk cache -> disk."""

    def __init__(self, config: SystemConfig,
                 flash_cache: FlashDiskCache) -> None:
        if config.flash_bytes <= 0:
            raise ValueError("FlashBackedSystem needs flash_bytes > 0")
        super().__init__(config)
        self.flash = flash_cache
        #: Optional :class:`repro.reliability.Scrubber`; ``None`` (default)
        #: means no background retention scrubbing.
        self.scrubber: Optional[Scrubber] = None

    # -- plumbing --------------------------------------------------------------

    def _flash_busy_us(self) -> float:
        return self.flash.controller.device.stats.busy_us

    def _device(self) -> Optional[FlashDevice]:
        return self.flash.controller.device

    def _gc_time_us(self) -> float:
        return self.flash.stats.gc_time_us

    def _fill_from_below(self, page: int) -> float:
        outcome = self.flash.read(page)
        if outcome is not None and outcome.recovered:
            self.stats.flash_fills += 1
            return outcome.latency_us + self.dram.write(self.config.page_bytes)
        # Flash miss (or CRC-failed page): fetch from disk, fill both the
        # PDC (synchronously) and the Flash read cache (in the background).
        latency = (outcome.latency_us if outcome is not None else 0.0)
        self.stats.disk_fills += 1
        latency += self.disk.read()
        latency += self.dram.write(self.config.page_bytes)
        self.background_us += self.flash.insert_clean(page)
        return latency

    def _write_back(self, page: int) -> None:
        outcome = self.flash.write(page)
        self.background_us += outcome.latency_us
        self._writeback_queue.extend(outcome.flushed_lbas)

    def _periodic_flush(self) -> None:
        # Flush the Flash write cache first (section 5.1: "The disk is
        # eventually updated by flushing the write disk cache") so its
        # pages are clean by the time eviction recycles their blocks.
        self._writeback_queue.extend(self.flash.flush())
        scrubber = self.scrubber
        if scrubber is not None:
            # Retention scrub rides the write-back daemon's tick: cheap
            # clock check until the scrub interval elapses, then one pass
            # whose traffic is charged to background time (and whose
            # eviction-flushed dirty pages join this very flush batch).
            elapsed_us, flushed = scrubber.maybe_scrub()
            if flushed:
                self._writeback_queue.extend(flushed)
            self.background_us += elapsed_us
        self._drain_writeback_queue()

    def reset_measurement(self) -> None:
        super().reset_measurement()
        from ..flash.device import FlashStats
        self.flash.controller.device.stats = FlashStats()
        self.flash.stats.foreground_time_us = 0.0
        self.flash.stats.gc_time_us = 0.0

    def drain(self) -> None:
        """Flush PDC dirty pages to Flash and Flash dirty pages to disk
        (simulation barrier; keeps the energy accounting honest)."""
        for page in self.pdc.flush():
            self._write_back(page)
        self._writeback_queue.extend(self.flash.flush())
        self._drain_writeback_queue()


def build_flash_system(
    dram_bytes: int,
    flash_bytes: int,
    cache_config: FlashCacheConfig | None = None,
    controller_config: ControllerConfig | None = None,
    lifetime_model: Optional[CellLifetimeModel] = None,
    initial_mode: CellMode = CellMode.MLC,
    seed: int = 0,
    power_model_dram_bytes: int | None = None,
    fault_config: FaultConfig | None = None,
    reliability_config: ReliabilityConfig | None = None,
    scrub_config: ScrubConfig | None = None,
) -> FlashBackedSystem:
    """Convenience factory wiring device -> controller -> cache -> system.

    ``flash_bytes`` is the MLC-mode data capacity (Table 3 sizes Flash this
    way); wear modelling is off unless a ``lifetime_model`` is supplied,
    which keeps pure performance studies fast.  A ``fault_config`` with any
    non-zero rate attaches a deterministic fault injector to the device
    and switches the cache into fault-aware graceful degradation.  A
    ``reliability_config`` with any non-zero rate attaches the seeded
    error-process model (wear/retention/disturb/interference physics) to
    the device; add a ``scrub_config`` on top for background retention
    scrubbing (requires the model — there is nothing to age without it).
    """
    geometry = FlashGeometry.for_capacity(flash_bytes, mode=initial_mode)
    injector = None
    if fault_config is not None and fault_config.any_enabled:
        injector = FaultInjector(fault_config)
    reliability = None
    if reliability_config is not None and reliability_config.any_enabled:
        reliability = ReliabilityModel(reliability_config)
    device = FlashDevice(
        geometry=geometry,
        lifetime_model=lifetime_model,
        initial_mode=initial_mode,
        seed=seed,
        fault_injector=injector,
        reliability=reliability,
    )
    controller = ProgrammableFlashController(
        device, config=controller_config)
    if cache_config is None:
        # Bound background GC to roughly one page move per request so
        # compaction cannot out-consume the device (write amplification);
        # beyond that the cache evicts (cheap for flushed-clean pages).
        cache_config = FlashCacheConfig(gc_move_budget=1.0)
    cache = FlashDiskCache(controller, config=cache_config)
    system_config = SystemConfig(
        dram_bytes=dram_bytes, flash_bytes=flash_bytes,
        power_model_dram_bytes=power_model_dram_bytes)
    system = FlashBackedSystem(system_config, cache)
    if scrub_config is not None:
        if reliability is None:
            raise ValueError("scrub_config requires a reliability_config "
                             "with at least one non-zero rate")
        system.scrubber = Scrubber(cache, scrub_config)
    return system
