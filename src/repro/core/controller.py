"""The programmable Flash memory controller (paper sections 4 and 5.2).

The controller is the reliability layer between the disk-cache software
and the raw NAND array.  Per page it maintains (in the FPST) a BCH error
correction strength ``t`` in [1, 12] and a density mode (MLC or SLC); on
every access it:

* generates a *descriptor* from the FPST (ECC strength + mode) — the
  control message a real device driver would DMA to the controller;
* charges the BCH decode/encode latency of the page's current strength on
  top of the raw NAND latency (and the CRC check, which is negligible);
* watches the raw bit-error count.  When a page reaches its correction
  limit, the reconfiguration heuristic of section 5.2.1 picks the cheaper
  of two repairs by estimated latency impact:

      delta_t_cs = freq_i * delta_code_delay          (stronger ECC)
      delta_t_d  ~= delta_miss * (t_miss + t_hit) + freq_i * delta_SLC
                                                      (MLC -> SLC)

  The chosen change is *pended* and applied at the block's next erase
  ("the updated page settings are applied on the next erase and write
  access").  A page already at ``t = max`` and SLC retires its block
  permanently.

A fixed-strength baseline (:class:`FixedEccController`) models the
conventional BCH-1 controller Figure 12 compares against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..ecc.latency import AcceleratorConfig, BCHLatencyModel
from ..flash.device import DeviceOp, EraseFailure, FlashDevice, ProgramFailure
from ..flash.geometry import PageAddress
from ..flash.timing import CellMode
from .tables import (
    ACCESS_COUNTER_MAX,
    FlashBlockStatusTable,
    FlashGlobalStatus,
    FlashPageStatusTable,
)

__all__ = [
    "ReconfigKind",
    "PageDescriptor",
    "ControllerConfig",
    "ControllerReadResult",
    "ControllerStats",
    "ProgrammableFlashController",
    "FixedEccController",
]

#: CRC32 check latency: "tens of nanoseconds" (section 4.1.2).
CRC_CHECK_US = 0.05


class ReconfigKind(enum.Enum):
    """The two descriptor-update responses of section 5.2.1."""

    CODE_STRENGTH = "code_strength"
    DENSITY = "density"


@dataclass(frozen=True)
class PageDescriptor:
    """Control message sent to the controller ahead of a page access."""

    address: PageAddress
    ecc_strength: int
    mode: CellMode


@dataclass(frozen=True)
class ControllerConfig:
    """Policy constants of the programmable controller."""

    max_ecc_strength: int = 12     # hardware limit (section 4.1)
    initial_ecc_strength: int = 1
    counter_max: int = ACCESS_COUNTER_MAX
    #: Reduction in read latency from an MLC->SLC switch (50us -> 25us).
    #: Derived from timing at runtime; this is only a fallback.
    slc_read_gain_us: float = 25.0
    #: Read-retry ladder depth: when a read exceeds the page's correction
    #: strength, re-sense up to this many times (each retry costs a full
    #: NAND read plus decode) before declaring it uncorrectable.  Retries
    #: only help against *transient* errors (read disturb, injected
    #: bursts); 0 disables the ladder, preserving the historical
    #: single-sense behaviour for wear-only studies.
    read_retry_max: int = 0
    #: Retire a block after this many program failures across its frames.
    program_fail_retire_threshold: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.initial_ecc_strength <= self.max_ecc_strength:
            raise ValueError("initial ECC strength outside [1, max]")
        if self.read_retry_max < 0:
            raise ValueError("read_retry_max must be non-negative")
        if self.program_fail_retire_threshold < 1:
            raise ValueError("program_fail_retire_threshold must be >= 1")


@dataclass(frozen=True)
class ControllerReadResult:
    """Outcome of a controller-mediated page read."""

    latency_us: float
    corrected_errors: int
    recovered: bool               # False => CRC-confirmed uncorrectable
    reconfig: Optional[ReconfigKind]
    hot_promotion: bool           # counter saturated on an MLC page


@dataclass
class ControllerStats:
    """Counts of the controller's reliability actions (Figure 11 inputs)."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    ecc_reconfigs: int = 0
    density_reconfigs: int = 0
    uncorrectable_reads: int = 0
    blocks_retired: int = 0
    hot_promotions: int = 0
    # -- degradation metrics (fault handling) --------------------------------
    read_retries: int = 0          # extra senses spent in the retry ladder
    retry_recovered_reads: int = 0  # reads saved by a re-sense
    program_faults: int = 0        # program-status failures observed
    erase_faults: int = 0          # erase-status failures observed
    frames_marked_bad: int = 0     # frames pulled from service

    @property
    def descriptor_updates(self) -> int:
        return self.ecc_reconfigs + self.density_reconfigs

    def reconfig_breakdown(self) -> Dict[str, float]:
        """Fractions of descriptor updates by kind (Figure 11 bars)."""
        total = self.descriptor_updates
        if total == 0:
            return {"code_strength": 0.0, "density": 0.0}
        return {
            "code_strength": self.ecc_reconfigs / total,
            "density": self.density_reconfigs / total,
        }


class ProgrammableFlashController:
    """Variable-ECC, variable-density Flash memory controller.

    Owns the NAND device plus the FPST/FBST/FGST tables, and implements
    the reconfiguration policy.  The disk-cache layer above allocates
    pages and decides placement; this layer decides *how reliably* each
    page is stored.
    """

    def __init__(
        self,
        device: FlashDevice,
        config: ControllerConfig | None = None,
        latency_model: BCHLatencyModel | None = None,
        fgst: FlashGlobalStatus | None = None,
    ) -> None:
        self.device = device
        self.config = config or ControllerConfig()
        self.latency_model = latency_model or BCHLatencyModel(
            AcceleratorConfig(max_t=self.config.max_ecc_strength)
        )
        self.fpst = FlashPageStatusTable(
            default_ecc_strength=self.config.initial_ecc_strength)
        self.fbst = FlashBlockStatusTable(device.geometry.num_blocks)
        self.fgst = fgst or FlashGlobalStatus()
        self.stats = ControllerStats()
        #: Optional :class:`repro.telemetry.Telemetry` handle; ``None``
        #: (default) keeps the mediated operations un-instrumented.
        self.telemetry: Optional[Any] = None
        #: Optional externally measured miss-rate increase per lost cache
        #: page (the paper's runtime-measured "delta miss").  When None, a
        #: uniform-popularity estimate is derived from the FGST.
        self.marginal_miss_estimate: Optional[float] = None
        #: Invoked with the block index whenever a block retires, so the
        #: cache layer can pull it from service and shrink its capacity.
        self.retire_listener: Optional[Callable[[int], None]] = None
        # Pending density changes keyed by (block, frame), applied at erase.
        self._pending_modes: Dict[tuple[int, int], CellMode] = {}
        # Frames with program-status failures: permanently out of service.
        self._bad_frames: Set[tuple[int, int]] = set()
        # Per-block page-capacity memo; capacity only moves when a frame
        # goes bad or an erase applies a pended density change, so those
        # paths invalidate and everyone else reads the memo.
        self._block_capacity: Dict[int, int] = {}
        self._program_fail_counts: Dict[int, int] = {}
        self._decode_cache: Dict[int, float] = {}
        self._encode_cache: Dict[int, float] = {}

    # -- descriptor plumbing --------------------------------------------------

    def descriptor(self, address: PageAddress) -> PageDescriptor:
        entry = self.fpst.entry(address)
        return PageDescriptor(address, entry.ecc_strength, entry.mode)

    def _decode_us(self, t: int) -> float:
        cached = self._decode_cache.get(t)
        if cached is None:
            cached = self.latency_model.decode_us(t)
            self._decode_cache[t] = cached
        return cached

    def _encode_us(self, t: int) -> float:
        cached = self._encode_cache.get(t)
        if cached is None:
            cached = self.latency_model.encode_us(t)
            self._encode_cache[t] = cached
        return cached

    # -- mediated NAND operations ------------------------------------------------

    def read(self, address: PageAddress) -> ControllerReadResult:
        """Timed page read with ECC decode and reconfiguration triggers.

        When the first sense exceeds the page's correction strength and
        ``read_retry_max`` allows it, the controller re-senses: transient
        errors (read disturb) can vanish on a retry, turning a would-be
        uncorrectable read into a recovered one.  Every retry costs a full
        NAND read plus decode, charged to the returned latency.
        """
        entry = self.fpst.entry(address)
        raw = self.device.read_page(address)
        entry.mode = raw.mode  # FPST reflects the physical frame mode
        latency = raw.latency_us + self._decode_us(entry.ecc_strength) \
            + CRC_CHECK_US
        self.stats.reads += 1

        errors = raw.raw_bit_errors
        retries = 0
        while errors > entry.ecc_strength \
                and retries < self.config.read_retry_max:
            retries += 1
            self.stats.read_retries += 1
            resense = self.device.read_page(address)
            latency += resense.latency_us \
                + self._decode_us(entry.ecc_strength) + CRC_CHECK_US
            errors = min(errors, resense.raw_bit_errors)

        recovered = errors <= entry.ecc_strength
        if retries and recovered:
            self.stats.retry_recovered_reads += 1
        if not recovered:
            self.stats.uncorrectable_reads += 1
        reconfig: Optional[ReconfigKind] = None
        if errors >= entry.ecc_strength:
            # At (or past) the correction limit: reconfigure per 5.2.1.
            reconfig = self._respond_to_faults(address, entry)

        hot = entry.touch(self.config.counter_max) \
            and entry.mode is CellMode.MLC
        if hot:
            self.stats.hot_promotions += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.flash_read(latency, retries, recovered)
        return ControllerReadResult(
            latency_us=latency,
            corrected_errors=min(errors, entry.ecc_strength),
            recovered=recovered,
            reconfig=reconfig,
            hot_promotion=hot,
        )

    def program(self, address: PageAddress, lba: Optional[int] = None,
                data: Optional[bytes] = None) -> float:
        """Timed page program with ECC encode; registers the page in FPST.

        A :class:`~repro.flash.device.ProgramFailure` from the device is
        re-raised after bookkeeping: the frame is marked bad (its pages
        leave the address space) and the block retires once it has
        accumulated ``program_fail_retire_threshold`` failures.  The
        caller is expected to remap the data to a fresh page.
        """
        try:
            result = self.device.program_page(address, data)
        except ProgramFailure:
            self.stats.programs += 1
            self._note_program_failure(address)
            raise
        entry = self.fpst.entry(address)
        entry.mode = result.mode
        entry.valid = True
        entry.lba = lba
        entry.access_count = 0
        self.stats.programs += 1
        latency = result.latency_us + self._encode_us(entry.ecc_strength)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.flash_program(latency)
        return latency

    # -- non-blocking entry points ------------------------------------------------

    def submit_read(self, address: PageAddress
                    ) -> tuple["ControllerReadResult", List[DeviceOp]]:
        """Non-blocking form of :meth:`read` for the event engine.

        Executes the read functionally (state changes, retries, and
        reconfiguration triggers happen exactly as in :meth:`read`) and
        additionally returns the NAND ops it issued, captured via the
        device op sink, so the caller can schedule them on the
        channel/plane fabric instead of blocking on the summed latency.
        """
        ops: List[DeviceOp] = []
        with self.device.capture_ops(ops):
            result = self.read(address)
        return result, ops

    def submit_program(self, address: PageAddress,
                       lba: Optional[int] = None,
                       data: Optional[bytes] = None
                       ) -> tuple[float, List[DeviceOp]]:
        """Non-blocking form of :meth:`program`; see :meth:`submit_read`.

        A :class:`~repro.flash.device.ProgramFailure` propagates exactly
        as from :meth:`program` — the captured ops up to the failure are
        attached to the exception as ``pending_ops``.
        """
        ops: List[DeviceOp] = []
        try:
            with self.device.capture_ops(ops):
                latency_us = self.program(address, lba=lba, data=data)
        except ProgramFailure as failure:
            failure.pending_ops = ops
            raise
        return latency_us, ops

    def _note_program_failure(self, address: PageAddress) -> None:
        """Pull a failing frame out of service; retire the block after K."""
        self.stats.program_faults += 1
        key = (address.block, address.frame)
        if key not in self._bad_frames:
            self._bad_frames.add(key)
            self._block_capacity.pop(address.block, None)
            self.stats.frames_marked_bad += 1
            # The frame's pages leave the address space.  Only *invalid*
            # entries drop immediately: valid ones keep their LBA
            # back-pointers so the cache layer can unmap the data they
            # held before abandoning the frame.
            mode = self.device.frame_mode(address.block, address.frame)
            for subpage in range(
                    self.device.geometry.pages_per_frame(mode)):
                page = PageAddress(address.block, address.frame, subpage)
                entry = self.fpst.get(page)
                if entry is not None and not entry.valid:
                    self.fpst.drop(page)
        failures = self._program_fail_counts.get(address.block, 0) + 1
        self._program_fail_counts[address.block] = failures
        if failures >= self.config.program_fail_retire_threshold:
            self._retire_block(address.block)

    def erase(self, block: int) -> float:
        """Timed block erase; applies pended density reconfigurations.

        An :class:`~repro.flash.device.EraseFailure` retires the block
        (the firmware convention) and is re-raised so the cache layer can
        drop the block from its capacity.
        """
        new_modes = {
            frame: mode
            for (blk, frame), mode in list(self._pending_modes.items())
            if blk == block
        }
        if new_modes:
            # The applied density switch changes the block's page count.
            self._block_capacity.pop(block, None)
        # Capture the *pre-erase* page layout: an MLC->SLC switch halves
        # the address space and the vanished subpage-1 entries must drop.
        stale_pages = self.pages_of_block(block)
        try:
            result = self.device.erase_block(block,
                                             new_modes=new_modes or None)
        except EraseFailure:
            self.stats.erases += 1
            self.stats.erase_faults += 1
            self._retire_block(block)
            raise
        for frame in new_modes:
            del self._pending_modes[(block, frame)]
        fbst_entry = self.fbst.entry(block)
        fbst_entry.erase_count = result.erase_count
        geometry = self.device.geometry
        # ECC strength and density mode describe the *physical* page's wear
        # state, so they persist across the erase; contents-related fields
        # (validity, LBA, hotness) reset.
        fbst_entry.total_ecc = 0
        fbst_entry.total_slc_pages = 0
        for frame in range(geometry.frames_per_block):
            mode = self.device.frame_mode(block, frame)
            if mode is CellMode.SLC:
                fbst_entry.total_slc_pages += 1
            live_subpages = geometry.pages_per_frame(mode)
            for address in (a for a in stale_pages if a.frame == frame):
                if address.subpage >= live_subpages:
                    self.fpst.drop(address)
                    continue
                entry = self.fpst.get(address)
                if entry is None:
                    continue
                entry.valid = False
                entry.lba = None
                entry.access_count = 0
                entry.mode = mode
                # The wear signal is strength *added* over the lifetime
                # default, matching the incremental accounting done when a
                # reconfiguration happens between erases.
                fbst_entry.total_ecc += max(
                    entry.ecc_strength - self.config.initial_ecc_strength, 0)
        self.stats.erases += 1
        return result.latency_us

    def invalidate(self, address: PageAddress) -> None:
        """Mark a page invalid (out-of-place write superseded it)."""
        entry = self.fpst.get(address)
        if entry is not None:
            entry.valid = False

    def refresh_block(self, block: int) -> float:
        """Scrub refresh: re-read, erase, and rewrite a block in place.

        The retention countermeasure at controller level (used by the
        regime simulator; the trace-path cache scrubs out-of-place via
        :meth:`~repro.core.cache.FlashDiskCache.scrub_page` so its
        region bookkeeping stays exact).  Every valid page is re-read
        through the normal ECC path — latent errors are detected and
        the section 5.2.1 response runs — then the block is erased
        (applying any pended density change and resetting the frames'
        retention clocks) and the surviving pages are reprogrammed at
        their own addresses with LBA back-pointers and access history
        preserved.  Pages whose re-read fails are dropped; a read that
        retires the block aborts the refresh.  Returns the total
        latency of the reads, the erase, and the rewrites.
        """
        elapsed = 0.0
        survivors: List[tuple[PageAddress, Optional[int], int]] = []
        for address in self.pages_of_block(block):
            entry = self.fpst.get(address)
            if entry is None or not entry.valid:
                continue
            result = self.read(address)
            elapsed += result.latency_us
            if self.is_retired(block):
                return elapsed
            if not result.recovered:
                # The copy is lost; nothing worth rewriting.
                entry.valid = False
                entry.lba = None
                continue
            survivors.append((address, entry.lba, entry.access_count))
        try:
            elapsed += self.erase(block)
        except EraseFailure as failure:
            return elapsed + failure.latency_us
        live = set(self.pages_of_block(block))
        for address, lba, access_count in survivors:
            if address not in live:
                # A pended MLC->SLC switch applied at the erase shrank
                # the address space; the vanished subpage's data must be
                # re-fetched by the layer above.
                continue
            try:
                elapsed += self.program(address, lba=lba)
            except ProgramFailure as failure:
                elapsed += failure.latency_us
                if self.is_retired(block):
                    break
                continue
            self.fpst.entry(address).access_count = access_count
        return elapsed

    # -- section 5.2.1: response to an increase in faults -------------------------

    def _respond_to_faults(self, address: PageAddress,
                           entry: FPSTEntry) -> Optional[ReconfigKind]:
        """Choose stronger ECC vs density reduction by the latency heuristics."""
        can_strengthen = entry.ecc_strength < self.config.max_ecc_strength
        can_densify = entry.mode is CellMode.MLC
        if not can_strengthen and not can_densify:
            self._retire_block(address.block)
            return None

        if can_strengthen and can_densify:
            choice = self._cheaper_repair(entry)
        elif can_strengthen:
            choice = ReconfigKind.CODE_STRENGTH
        else:
            choice = ReconfigKind.DENSITY

        if choice is ReconfigKind.CODE_STRENGTH:
            entry.ecc_strength += 1
            self._account_page_ecc(address.block, 1, None)
            self.stats.ecc_reconfigs += 1
        else:
            self._pend_density_change(address)
            self.stats.density_reconfigs += 1
        if self.telemetry is not None:
            self.telemetry.reconfig(choice.value)
        return choice

    def choose_repair(self, entry: FPSTEntry) -> ReconfigKind:
        """Public face of the section 5.2.1 heuristic: given a page's FPST
        entry, pick the repair (stronger ECC vs MLC->SLC) with the smaller
        estimated latency impact.  Exposed for the accelerated lifetime
        simulator, which replays the same policy event-driven."""
        return self._cheaper_repair(entry)

    def _cheaper_repair(self, entry: FPSTEntry) -> ReconfigKind:
        """Evaluate delta_t_cs vs delta_t_d (section 5.2.1 heuristics)."""
        fgst = self.fgst
        freq = fgst.relative_frequency(entry.access_count)
        delta_code_delay = (
            self._decode_us(entry.ecc_strength + 1)
            - self._decode_us(entry.ecc_strength)
        )
        delta_tcs = freq * delta_code_delay

        timing = self.device.timing
        slc_gain = timing.mlc_read_us - timing.slc_read_us
        delta_miss = self._density_miss_increase()
        t_miss = fgst.avg_miss_penalty_us or 4200.0
        t_hit = fgst.avg_hit_latency_us or timing.mlc_read_us
        delta_td = delta_miss * (t_miss + t_hit) - freq * slc_gain
        return (ReconfigKind.CODE_STRENGTH if delta_tcs <= delta_td
                else ReconfigKind.DENSITY)

    def _density_miss_increase(self) -> float:
        """Estimated miss-rate increase from halving one frame's capacity.

        Losing one page of an N-page cache raises the miss rate by the hit
        share of the *marginal* (least popular cached) page.  When the
        environment has measured that quantity (section 5.2.1: "delta miss
        [is] measured during run-time"), it is installed in
        :attr:`marginal_miss_estimate`; otherwise fall back to the uniform
        share (1 - miss) / N.
        """
        if self.marginal_miss_estimate is not None:
            return self.marginal_miss_estimate
        total_pages = (self.device.geometry.num_blocks
                       * self.device.geometry.frames_per_block * 2)
        return (1.0 - self.fgst.miss_rate) / total_pages

    def _pend_density_change(self, address: PageAddress) -> None:
        self._pending_modes[(address.block, address.frame)] = CellMode.SLC

    def request_slc(self, address: PageAddress) -> None:
        """Externally pend an MLC->SLC switch (hot-page promotion path)."""
        self._pend_density_change(address)

    def _retire_block(self, block: int) -> None:
        entry = self.fbst.entry(block)
        if not entry.retired:
            entry.retired = True
            self._block_capacity.pop(block, None)
            self.stats.blocks_retired += 1
            if self.telemetry is not None:
                self.telemetry.retire(block)
            if self.retire_listener is not None:
                self.retire_listener(block)

    def _account_page_ecc(self, block: int, ecc_delta: int,
                          mode: Optional[CellMode]) -> None:
        self.fbst.entry(block).total_ecc += ecc_delta

    # -- queries used by the cache layer ---------------------------------------

    def pages_of_block(self, block: int) -> List[PageAddress]:
        """All page addresses the block offers under current frame modes.

        Frames marked bad by program failures are excluded — their pages
        have left the address space.
        """
        geometry = self.device.geometry
        pages: List[PageAddress] = []
        for frame, mode in enumerate(self.device.block_frame_modes(block)):
            if (block, frame) in self._bad_frames:
                continue
            for subpage in range(geometry.pages_per_frame(mode)):
                pages.append(PageAddress(block, frame, subpage))
        return pages

    def block_capacity_pages(self, block: int) -> int:
        """Logical pages the block offers, net of bad frames."""
        cached = self._block_capacity.get(block)
        if cached is not None:
            return cached
        modes = self.device.block_frame_modes(block)
        if self._bad_frames:
            modes = [mode for frame, mode in enumerate(modes)
                     if (block, frame) not in self._bad_frames]
        # Two modes exist; counting one of them prices the whole block
        # with two pages_per_frame lookups instead of one per frame.
        geometry = self.device.geometry
        slc = modes.count(CellMode.SLC)
        capacity = (slc * geometry.pages_per_frame(CellMode.SLC)
                    + (len(modes) - slc)
                    * geometry.pages_per_frame(CellMode.MLC))
        self._block_capacity[block] = capacity
        return capacity

    def is_bad_frame(self, block: int, frame: int) -> bool:
        return (block, frame) in self._bad_frames

    def wear_out(self, block: int) -> float:
        return self.fbst.wear_out(block)

    def is_retired(self, block: int) -> bool:
        return self.fbst.entry(block).retired

    @property
    def all_blocks_retired(self) -> bool:
        return self.fbst.retired_count == len(self.fbst)


class FixedEccController(ProgrammableFlashController):
    """Conventional BCH-1 controller: no reconfiguration, no density control.

    The Figure 12 baseline: when a page's raw error count reaches the fixed
    correction strength, the block simply retires.
    """

    def __init__(self, device: FlashDevice, strength: int = 1,
                 fgst: FlashGlobalStatus | None = None) -> None:
        config = ControllerConfig(
            max_ecc_strength=strength, initial_ecc_strength=strength)
        super().__init__(device, config=config, fgst=fgst)

    def _respond_to_faults(self, address: PageAddress,
                           entry: FPSTEntry) -> Optional[ReconfigKind]:
        self._retire_block(address.block)
        return None
