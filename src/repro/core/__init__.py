"""The paper's primary contribution: the Flash based disk cache, its
programmable memory controller, the management tables, the SLC/MLC
partition optimizer, and the two full storage hierarchies of Figure 2."""

from .errors import (
    CacheError,
    CacheCapacityError,
    CacheDegradedError,
    ReserveBlockLostError,
    NoEvictableBlockError,
)
from .tables import (
    ACCESS_COUNTER_MAX,
    FPSTEntry,
    FlashPageStatusTable,
    FBSTEntry,
    FlashBlockStatusTable,
    FlashGlobalStatus,
    FlashCacheHashTable,
    metadata_overhead_bytes,
)
from .controller import (
    ReconfigKind,
    PageDescriptor,
    ControllerConfig,
    ControllerReadResult,
    ControllerStats,
    ProgrammableFlashController,
    FixedEccController,
)
from .cache import (
    Region,
    FlashCacheConfig,
    CacheStats,
    FlashReadOutcome,
    WriteOutcome,
    FlashDiskCache,
)
from .density import (
    DensityPartitionPoint,
    DensityPartitionOptimizer,
    die_area_for_capacity_mm2,
)
from .hierarchy import (
    SystemConfig,
    RequestStats,
    DramOnlySystem,
    FlashBackedSystem,
    build_flash_system,
)

__all__ = [
    "CacheError",
    "CacheCapacityError",
    "CacheDegradedError",
    "ReserveBlockLostError",
    "NoEvictableBlockError",
    "ACCESS_COUNTER_MAX",
    "FPSTEntry",
    "FlashPageStatusTable",
    "FBSTEntry",
    "FlashBlockStatusTable",
    "FlashGlobalStatus",
    "FlashCacheHashTable",
    "metadata_overhead_bytes",
    "ReconfigKind",
    "PageDescriptor",
    "ControllerConfig",
    "ControllerReadResult",
    "ControllerStats",
    "ProgrammableFlashController",
    "FixedEccController",
    "Region",
    "FlashCacheConfig",
    "CacheStats",
    "FlashReadOutcome",
    "WriteOutcome",
    "FlashDiskCache",
    "DensityPartitionPoint",
    "DensityPartitionOptimizer",
    "die_area_for_capacity_mm2",
    "SystemConfig",
    "RequestStats",
    "DramOnlySystem",
    "FlashBackedSystem",
    "build_flash_system",
]
