"""Typed exceptions of the Flash disk-cache layers.

Every crash path in :mod:`repro.core.cache` raises one of these instead
of a bare ``RuntimeError``, so callers can distinguish "the cache is
degrading and should fall back" from genuine bugs.  They subclass
``RuntimeError`` for backward compatibility with callers (and tests)
that predate the typed hierarchy.

The split between the two branches matters:

* :class:`CacheCapacityError` is *by design*: in the SSD configuration
  (``allow_eviction_for_space=False``) every page is precious, so a full
  device genuinely cannot accept another write.  It always propagates.
* :class:`CacheDegradedError` and its subclasses mean the cache has lost
  hardware (retired blocks, a dead reserve) — in disk-cache semantics
  the cache catches these itself and degrades to a DRAM+disk bypass
  rather than failing, because the backing disk always has the data.
"""

from __future__ import annotations

__all__ = [
    "CacheError",
    "CacheCapacityError",
    "CacheDegradedError",
    "ReserveBlockLostError",
    "NoEvictableBlockError",
]


class CacheError(RuntimeError):
    """Base class for Flash disk-cache errors."""


class CacheCapacityError(CacheError):
    """The Flash is full of valid pages and eviction is disabled.

    Raised only under SSD semantics (``allow_eviction_for_space=False``),
    where dropping data is forbidden and garbage collection is the only
    reclaim mechanism; a disk cache never raises this.
    """


class CacheDegradedError(CacheError):
    """The cache has lost capacity or structure it needs to operate.

    In disk-cache semantics these are recovery signals, not failures: the
    cache layer catches them, sheds the affected state, and keeps serving
    (degrading to a DRAM+disk bypass below its minimum-blocks floor).
    """


class ReserveBlockLostError(CacheDegradedError):
    """A region's GC reserve block died and no free block could replace it."""


class NoEvictableBlockError(CacheDegradedError):
    """Eviction was requested but the region has no content blocks left."""
