"""Analytical SLC/MLC partition optimizer (paper section 4.2, Figure 7).

For a given Flash die area, what fraction should the density controller
run in SLC mode?  SLC pages read in 25 us but cost twice the area per bit
(ITRS 2007: 0.0130 um^2/bit SLC vs 0.0065 um^2/bit MLC); MLC doubles the
capacity — and capacity buys hit rate, whose alternative is a 4.2 ms disk
access.  The paper answers with trace-driven analysis (Figure 7); this
module reproduces it analytically from a workload's popularity
distribution:

* the cache holds the most popular pages, with the very hottest in the
  SLC partition (the density controller's saturating counters migrate hot
  pages there, section 5.2.2);
* average access latency =
  sum(p_i * t_slc, hottest pages in SLC)
  + sum(p_i * t_mlc, next pages in MLC)
  + (1 - hit mass) * t_disk;
* sweep the SLC area fraction to find the latency-minimal partition.

Matches the paper's findings: small-footprint, short-tailed workloads
(Financial2) want mostly SLC; workloads whose working set dwarfs the cache
(WebSearch1 at half its 5GB working set) want nearly all MLC, because
capacity dominates; and once the die covers the full working set the
optimum snaps to 100% SLC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..flash.timing import (
    CellMode,
    FlashTiming,
    ITRS_ROADMAP,
    DEFAULT_FLASH_TIMING,
)
from ..workloads.synthetic import PopularityDistribution
from ..workloads.trace import PAGE_BYTES

__all__ = [
    "DensityPartitionPoint",
    "DensityPartitionOptimizer",
    "die_area_for_capacity_mm2",
]

#: ITRS 2007 cell areas in um^2 per bit.
_SLC_UM2_PER_BIT = ITRS_ROADMAP[2007].nand_slc_um2_per_bit
_MLC_UM2_PER_BIT = ITRS_ROADMAP[2007].nand_mlc_um2_per_bit
_UM2_PER_MM2 = 1e6


def die_area_for_capacity_mm2(capacity_bytes: int,
                              mode: CellMode = CellMode.MLC) -> float:
    """Die area needed for a capacity at ITRS-2007 cell density."""
    per_bit = _SLC_UM2_PER_BIT if mode is CellMode.SLC else _MLC_UM2_PER_BIT
    return capacity_bytes * 8 * per_bit / _UM2_PER_MM2


@dataclass(frozen=True)
class DensityPartitionPoint:
    """One Figure 7 data point."""

    die_area_mm2: float
    optimal_slc_fraction: float
    average_latency_us: float
    slc_pages: int
    mlc_pages: int


class DensityPartitionOptimizer:
    """Latency-optimal SLC/MLC split for one workload's popularity curve."""

    def __init__(self, distribution: PopularityDistribution,
                 timing: FlashTiming = DEFAULT_FLASH_TIMING,
                 disk_latency_us: float = 4200.0,
                 page_bytes: int = PAGE_BYTES) -> None:
        self.distribution = distribution
        self.timing = timing
        self.disk_latency_us = disk_latency_us
        self.page_bytes = page_bytes
        # Cumulative popularity mass of the top-k pages, so any partition's
        # hit mass is two array lookups.
        n = distribution.n
        self._cumulative: List[float] = [0.0] * (n + 1)
        acc = 0.0
        for rank in range(n):
            acc += distribution.rank_probability(rank)
            self._cumulative[rank + 1] = acc

    @property
    def working_set_pages(self) -> int:
        return self.distribution.n

    @property
    def working_set_area_mm2(self) -> float:
        """Die area holding the full working set in pure MLC."""
        return die_area_for_capacity_mm2(
            self.working_set_pages * self.page_bytes)

    def _top_mass(self, pages: int) -> float:
        index = min(max(pages, 0), self.distribution.n)
        return self._cumulative[index]

    def partition_capacity(self, die_area_mm2: float,
                           slc_fraction: float) -> tuple[int, int]:
        """(SLC pages, MLC pages) for an area split ``slc_fraction``."""
        if die_area_mm2 <= 0:
            raise ValueError("die area must be positive")
        if not 0.0 <= slc_fraction <= 1.0:
            raise ValueError("slc_fraction must be in [0, 1]")
        area_um2 = die_area_mm2 * _UM2_PER_MM2
        page_bits = self.page_bytes * 8
        slc_pages = int(area_um2 * slc_fraction / _SLC_UM2_PER_BIT / page_bits)
        mlc_pages = int(area_um2 * (1.0 - slc_fraction)
                        / _MLC_UM2_PER_BIT / page_bits)
        return slc_pages, mlc_pages

    def average_latency_us(self, die_area_mm2: float,
                           slc_fraction: float) -> float:
        """Expected access latency with hottest pages in the SLC partition."""
        slc_pages, mlc_pages = self.partition_capacity(
            die_area_mm2, slc_fraction)
        slc_mass = self._top_mass(slc_pages)
        cached_mass = self._top_mass(slc_pages + mlc_pages)
        mlc_mass = cached_mass - slc_mass
        miss_mass = 1.0 - cached_mass
        return (slc_mass * self.timing.slc_read_us
                + mlc_mass * self.timing.mlc_read_us
                + miss_mass * self.disk_latency_us)

    def optimize(self, die_area_mm2: float,
                 grid_points: int = 101) -> DensityPartitionPoint:
        """Sweep SLC fractions and return the latency-minimal partition."""
        if grid_points < 2:
            raise ValueError("grid needs at least two points")
        best_fraction, best_latency = 0.0, math.inf
        for step in range(grid_points):
            fraction = step / (grid_points - 1)
            latency = self.average_latency_us(die_area_mm2, fraction)
            if latency < best_latency - 1e-12:
                best_fraction, best_latency = fraction, latency
        slc_pages, mlc_pages = self.partition_capacity(
            die_area_mm2, best_fraction)
        return DensityPartitionPoint(
            die_area_mm2=die_area_mm2,
            optimal_slc_fraction=best_fraction,
            average_latency_us=best_latency,
            slc_pages=slc_pages,
            mlc_pages=mlc_pages,
        )

    def figure_7_series(self, die_areas_mm2: Sequence[float],
                        grid_points: int = 101
                        ) -> List[DensityPartitionPoint]:
        """The Figure 7 sweep: optimal latency + partition per die area."""
        return [self.optimize(area, grid_points) for area in die_areas_mm2]
