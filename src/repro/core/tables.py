"""The four DRAM-resident Flash management tables (paper section 3).

The Flash based disk cache is software managed; all of its metadata lives
in DRAM (kept out of Flash because metadata updates would wear it out):

* **FCHT** — FlashCache hash table: maps disk logical block addresses to
  Flash page addresses; fully associative, accessed by hashing.
* **FPST** — Flash page status table: per page, the ECC strength,
  SLC/MLC mode, a saturating access counter, and the valid bit.
* **FBST** — Flash block status table: per block, the erase count and the
  inputs of the wear-out cost function
  ``wear_out = N_erase + k1 * TotalECC + k2 * TotalSLC_MLC``.
* **FGST** — Flash global status table: running miss rate and average
  hit/miss latencies, consumed by the reconfiguration heuristics.

Section 3 bounds the combined overhead at <2% of the Flash size (~360MB of
DRAM for 32GB of Flash); :func:`metadata_overhead_bytes` reproduces that
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..flash.geometry import PageAddress
from ..flash.timing import CellMode

__all__ = [
    "FPSTEntry",
    "FlashPageStatusTable",
    "FBSTEntry",
    "FlashBlockStatusTable",
    "FlashGlobalStatus",
    "FlashCacheHashTable",
    "metadata_overhead_bytes",
]

#: Saturating access-counter ceiling (FPST "saturating access counter").
ACCESS_COUNTER_MAX = 64


@dataclass
class FPSTEntry:
    """Flash page status: ECC strength, density mode, hotness, validity."""

    ecc_strength: int = 1
    mode: CellMode = CellMode.MLC
    access_count: int = 0
    valid: bool = False
    lba: Optional[int] = None  # reverse map used by garbage collection

    def touch(self, counter_max: int = ACCESS_COUNTER_MAX) -> bool:
        """Bump the saturating counter; True when it (just) saturates."""
        if self.access_count < counter_max:
            self.access_count += 1
        return self.access_count >= counter_max

    def saturate(self, counter_max: int = ACCESS_COUNTER_MAX) -> None:
        """Set the counter to its ceiling (used after an SLC migration,
        section 5.2.2: "set to a saturated value")."""
        self.access_count = counter_max


class FlashPageStatusTable:
    """FPST: one entry per live Flash page, keyed by physical address."""

    def __init__(self, default_ecc_strength: int = 1) -> None:
        self.default_ecc_strength = default_ecc_strength
        self._entries: Dict[PageAddress, FPSTEntry] = {}

    def entry(self, address: PageAddress) -> FPSTEntry:
        existing = self._entries.get(address)
        if existing is None:
            existing = FPSTEntry(ecc_strength=self.default_ecc_strength)
            self._entries[address] = existing
        return existing

    def get(self, address: PageAddress) -> Optional[FPSTEntry]:
        return self._entries.get(address)

    def drop(self, address: PageAddress) -> None:
        self._entries.pop(address, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[PageAddress, FPSTEntry]]:
        return iter(self._entries.items())


@dataclass
class FBSTEntry:
    """Flash block status: erase count plus wear cost-function inputs.

    ``total_ecc`` is the sum of ECC strengths across the block's pages and
    ``total_slc_pages`` the number of pages converted to SLC due to wear —
    exactly the ``TotalECC,i`` and ``TotalSLC_MLC,i`` terms of section 3.3.
    """

    erase_count: int = 0
    total_ecc: int = 0
    total_slc_pages: int = 0
    retired: bool = False

    def wear_out(self, k1: float, k2: float) -> float:
        """The paper's degree-of-wear-out cost function."""
        return (self.erase_count
                + k1 * self.total_ecc
                + k2 * self.total_slc_pages)


class FlashBlockStatusTable:
    """FBST: per-block wear profile, driving wear-level-aware replacement."""

    def __init__(self, num_blocks: int, k1: float = 1.0, k2: float = 10.0) -> None:
        if num_blocks < 1:
            raise ValueError("FBST needs at least one block")
        if k2 < k1:
            raise ValueError(
                "k2 must be >= k1: a density switch signals more wear than "
                "an ECC strength increase (section 3.3)"
            )
        self.k1 = k1
        self.k2 = k2
        self._entries = [FBSTEntry() for _ in range(num_blocks)]

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, block: int) -> FBSTEntry:
        return self._entries[block]

    def wear_out(self, block: int) -> float:
        return self._entries[block].wear_out(self.k1, self.k2)

    def newest_block(self, exclude_retired: bool = True) -> int:
        """Index of the block with minimum wear-out (the "newest" block)."""
        best_index, best_wear = -1, float("inf")
        for index, entry in enumerate(self._entries):
            if exclude_retired and entry.retired:
                continue
            wear = entry.wear_out(self.k1, self.k2)
            if wear < best_wear:
                best_index, best_wear = index, wear
        if best_index < 0:
            raise RuntimeError("all blocks are retired")
        return best_index

    def live_blocks(self) -> Iterator[int]:
        for index, entry in enumerate(self._entries):
            if not entry.retired:
                yield index

    @property
    def retired_count(self) -> int:
        return sum(1 for entry in self._entries if entry.retired)


@dataclass
class FlashGlobalStatus:
    """FGST: running cache-wide miss rate and latency averages.

    Updated on every secondary-disk-cache access; the reconfiguration
    heuristics (section 5.2.1) read ``miss_rate``, ``avg_hit_latency_us``
    and ``avg_miss_penalty_us`` from here.  Exponentially weighted moving
    averages keep the figures responsive to phase changes without storing
    history.
    """

    hits: int = 0
    misses: int = 0
    total_accesses: int = 0
    avg_hit_latency_us: float = 0.0
    avg_miss_penalty_us: float = 0.0
    ewma_alpha: float = 0.01

    def record_hit(self, latency_us: float) -> None:
        self.hits += 1
        self.total_accesses += 1
        self.avg_hit_latency_us = self._blend(self.avg_hit_latency_us, latency_us)

    def record_miss(self, penalty_us: float) -> None:
        self.misses += 1
        self.total_accesses += 1
        self.avg_miss_penalty_us = self._blend(self.avg_miss_penalty_us, penalty_us)

    def _blend(self, current: float, sample: float) -> float:
        if current == 0.0:
            return sample
        return (1.0 - self.ewma_alpha) * current + self.ewma_alpha * sample

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def relative_frequency(self, access_count: int) -> float:
        """``freq_i``: a page's share of total cache accesses."""
        if self.total_accesses == 0:
            return 0.0
        return access_count / self.total_accesses


class FlashCacheHashTable:
    """FCHT: fully associative LBA -> Flash-address map with hashed lookup.

    Functionally a dictionary; the ``buckets`` parameter models the
    hash-table *indexing width* from section 3.1 (the paper found ~100
    indexable entries reach maximum throughput) via
    :meth:`lookup_cost_us` — longer expected chains cost more tag checks.
    """

    #: Per-probe software cost on the platform's 1GHz in-order cores.
    PROBE_COST_US = 0.02
    #: Fixed hash + dispatch overhead per lookup.
    BASE_COST_US = 0.05

    def __init__(self, buckets: int = 128) -> None:
        if buckets < 1:
            raise ValueError("FCHT needs at least one bucket")
        self.buckets = buckets
        self._map: Dict[int, PageAddress] = {}

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lba: int) -> bool:
        return lba in self._map

    def lookup(self, lba: int) -> Optional[PageAddress]:
        return self._map.get(lba)

    def insert(self, lba: int, address: PageAddress) -> None:
        self._map[lba] = address

    def remove(self, lba: int) -> Optional[PageAddress]:
        return self._map.pop(lba, None)

    def lookup_cost_us(self) -> float:
        """Expected software lookup latency for the current occupancy."""
        expected_chain = max(1.0, len(self._map) / self.buckets)
        return self.BASE_COST_US + self.PROBE_COST_US * expected_chain

    def items(self) -> Iterator[tuple[int, PageAddress]]:
        return iter(self._map.items())


def metadata_overhead_bytes(flash_bytes: int, page_bytes: int = 2048,
                            fcht_entry_bytes: int = 16,
                            fpst_entry_bytes: int = 6,
                            fbst_entry_bytes: int = 8,
                            pages_per_block: int = 128) -> int:
    """DRAM footprint of the four tables for a given Flash size.

    Section 3: "The overhead of the four tables ... is less than 2% of the
    Flash size", dominated by the per-page FCHT and FPST. For 32GB of MLC
    Flash this lands in the paper's ~360MB ballpark.
    """
    if flash_bytes < page_bytes:
        raise ValueError("flash smaller than one page")
    num_pages = flash_bytes // page_bytes
    num_blocks = max(1, num_pages // pages_per_block)
    fgst_bytes = 64
    return (num_pages * (fcht_entry_bytes + fpst_entry_bytes)
            + num_blocks * fbst_entry_bytes
            + fgst_bytes)
