"""The Flash based disk cache (paper sections 3 and 5.1).

This is the secondary disk cache that sits between the DRAM primary disk
cache and the hard drive.  The headline design points reproduced here:

* **Split read/write regions** (section 3.5).  The Flash is divided into a
  read disk cache (default 90% of blocks) and a write disk cache (10%).
  All writes are out-of-place appends into the write region's log, so
  write-triggered garbage collection only ever considers the small write
  region; the read region keeps its capacity full of valid pages and only
  recycles blocks on read misses.  A ``split=False`` configuration gives
  the unified baseline of Figure 4, where writes punch invalid holes
  across the whole cache.
* **Out-of-place writes and garbage collection** (sections 2.2, 5.1).
  Pages program once per erase cycle, so updates append and invalidate.
  GC copies a victim block's valid pages into a reserve block, erases the
  victim, and rotates it in as the new reserve; it is only worthwhile
  while the region holds at least a block's worth of invalid pages —
  otherwise the LRU block is evicted outright (flushing dirty pages to
  disk when the victim is in the write region).  GC also compacts the
  read region when write-invalidations drop its valid capacity under the
  90% watermark.  All GC work runs in the background and is accounted
  separately (Figure 1(b) measures its time overhead).
* **Wear-level-aware replacement** (section 3.6).  Victims start as the
  region's LRU block; if the victim's FBST wear-out exceeds the globally
  newest block's by a threshold, the newest block's content migrates into
  the (erased) victim and the newest block is recycled instead — blocks
  swap region ownership so capacity is preserved while erases spread.
* **Hot-page SLC promotion** (section 5.2.2).  When a page's FPST access
  counter saturates in MLC mode, the page migrates to an SLC-formatted
  block, trading half a frame of capacity for half the read latency.
* **Graceful degradation** (section 4, Figure 12 in spirit).  The cache
  never loses data permanently and never crashes on hardware faults: an
  uncorrectable read becomes an invalidate-and-miss (the backing disk
  always has the data), a failed program remaps to a fresh frame, and a
  failed erase retires its block, shrinking the cache's live capacity
  while it keeps serving.  Below a documented minimum-blocks floor
  (:attr:`FlashCacheConfig.min_live_blocks`) the cache switches itself
  off and the hierarchy falls back to DRAM+disk.
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ..flash.device import EraseFailure, ProgramFailure
from ..flash.geometry import PageAddress
from ..flash.timing import CellMode
from .controller import ControllerReadResult, ProgrammableFlashController
from .errors import (
    CacheCapacityError,
    CacheDegradedError,
    NoEvictableBlockError,
    ReserveBlockLostError,
)
from .tables import FlashCacheHashTable

__all__ = [
    "Region",
    "FlashCacheConfig",
    "CacheStats",
    "FlashReadOutcome",
    "WriteOutcome",
    "ScrubOutcome",
    "FlashDiskCache",
]


class Region(enum.Enum):
    """Which disk-cache region a block belongs to."""

    READ = "read"
    WRITE = "write"
    UNIFIED = "unified"


@dataclass(frozen=True)
class FlashCacheConfig:
    """Policy knobs of the Flash based disk cache."""

    split: bool = True
    read_fraction: float = 0.9          # section 3.5: 90% read / 10% write
    gc_read_watermark: float = 0.90     # section 5.1 read-region GC trigger
    wear_threshold: float = 64.0        # section 3.6 swap threshold
    fcht_buckets: int = 128
    hot_promotion: bool = True
    #: True (disk-cache semantics): when GC cannot free a whole block the
    #: LRU block is simply evicted.  False models the Flash-as-disk / SSD
    #: setting of section 2.2 (and Figure 1(b)), where every page is
    #: precious and garbage collection is the only way to reclaim space.
    allow_eviction_for_space: bool = True
    #: Format write-region blocks as SLC when they are opened: the write
    #: log is the hottest, most rewritten Flash real estate, so trading
    #: half its capacity for the 200us (vs 680us) program and 1.5ms (vs
    #: 3.3ms) erase is the density controller's section 4.2 play applied
    #: statically.
    write_region_slc: bool = False
    #: Background GC bandwidth, in page moves of credit earned per
    #: foreground cache operation; ``None`` = unlimited.  GC runs "in the
    #: background" (section 5.1), so it can only spend device idle time —
    #: when a GC pass would need more moves than the accrued credit the
    #: cache falls back to evicting, losing cached data.  This is the
    #: mechanism behind the paper's observation that out-of-place writes
    #: "increase the garbage collection overhead which in turn increases
    #: the number of overall disk cache misses" (section 3.5), and the
    #: split design's remedy of shrinking the blocks GC must consider.
    gc_move_budget: Optional[float] = None
    #: The graceful-degradation floor: once retirements leave fewer than
    #: this many live (non-retired) blocks across the cache, the cache
    #: stops serving Flash entirely and the hierarchy runs DRAM+disk.
    #: Four is the structural minimum the constructor itself demands
    #: (one reserve plus one allocatable block per region); below it the
    #: split cache cannot maintain its invariants.
    min_live_blocks: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.read_fraction < 1.0:
            raise ValueError("read_fraction must be in (0, 1)")
        if not 0.0 < self.gc_read_watermark <= 1.0:
            raise ValueError("gc_read_watermark must be in (0, 1]")
        if self.wear_threshold <= 0:
            raise ValueError("wear_threshold must be positive")
        if self.min_live_blocks < 1:
            raise ValueError("min_live_blocks must be positive")


@dataclass
class CacheStats:
    """Cache-level counters; GC activity is tracked separately because the
    paper charges it to the background, not to requests."""

    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    write_region_hits: int = 0
    invalidations: int = 0
    fills: int = 0
    read_evictions: int = 0
    write_evictions: int = 0
    flushed_pages: int = 0
    gc_runs: int = 0
    gc_page_moves: int = 0
    gc_time_us: float = 0.0
    foreground_time_us: float = 0.0
    wear_swaps: int = 0
    slc_promotions: int = 0
    uncorrectable: int = 0
    # -- degradation metrics (fault handling) --------------------------------
    #: Faults survived without data loss: the page dropped out of Flash
    #: but the backing disk still holds its (current) content.
    recovered_faults: int = 0
    #: Faults that lost a *dirty* page — the disk serves stale data.
    unrecovered_faults: int = 0
    #: Programs that failed and were replayed onto a fresh frame.
    remapped_programs: int = 0
    #: Blocks the cache pulled from service after the controller retired
    #: them (erase failures, program-failure thresholds, worn-out pages).
    retired_blocks: int = 0
    #: Times the cache dropped to the DRAM+disk bypass (0 or 1 per run).
    degraded_events: int = 0
    #: Requests served while in the degraded bypass.
    bypass_reads: int = 0
    bypass_writes: int = 0

    @property
    def read_miss_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_misses / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Overall miss rate: read misses over all cache accesses (writes
        always 'hit' the log, so reads carry the miss signal)."""
        total = self.read_hits + self.read_misses + self.writes
        return self.read_misses / total if total else 0.0

    @property
    def gc_overhead(self) -> float:
        """GC time relative to foreground cache service time (Fig 1(b))."""
        if self.foreground_time_us == 0.0:
            return 0.0
        return self.gc_time_us / self.foreground_time_us


@dataclass(frozen=True)
class FlashReadOutcome:
    """Result of a Flash cache read hit."""

    latency_us: float
    recovered: bool


@dataclass(frozen=True)
class WriteOutcome:
    """Result of a write into the cache.

    ``flushed_lbas`` are dirty pages pushed to disk by a write-region
    eviction; the hierarchy layer schedules the actual disk writes.
    """

    latency_us: float
    flushed_lbas: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ScrubOutcome:
    """Result of one :meth:`FlashDiskCache.scrub_page` refresh attempt.

    ``refreshed`` means the page was re-read clean and rewritten fresh;
    ``uncorrectable`` means the re-read found a latent error past
    correction (the page was dropped — the countermeasure arrived too
    late).  ``flushed_lbas`` are dirty pages pushed to disk by evictions
    the rewrite triggered.
    """

    latency_us: float
    refreshed: bool
    uncorrectable: bool = False
    flushed_lbas: Tuple[int, ...] = ()


class _RegionState:
    """Bookkeeping for one cache region's blocks."""

    __slots__ = ("name", "free_blocks", "open_block", "open_free",
                 "lru", "valid", "invalid", "reserve_block", "reserve_free")

    def __init__(self, name: Region) -> None:
        self.name = name
        self.free_blocks: Deque[int] = deque()
        self.open_block: Optional[int] = None
        self.open_free: Deque[PageAddress] = deque()
        self.lru: "OrderedDict[int, None]" = OrderedDict()
        self.valid: Dict[int, Set[PageAddress]] = {}
        self.invalid: Dict[int, int] = {}
        # The reserve is a persistent GC log: garbage collection compacts
        # victims' valid pages into it across runs, and each emptied victim
        # becomes an allocatable free block.
        self.reserve_block: Optional[int] = None
        self.reserve_free: Deque[PageAddress] = deque()

    def total_invalid(self) -> int:
        return sum(self.invalid.values())

    def blocks_with_content(self) -> List[int]:
        return list(self.lru)


class FlashDiskCache:
    """Software-managed Flash secondary disk cache over a programmable
    Flash memory controller."""

    def __init__(self, controller: ProgrammableFlashController,
                 config: FlashCacheConfig | None = None) -> None:
        self.controller = controller
        self.config = config or FlashCacheConfig()
        self.fcht = FlashCacheHashTable(buckets=self.config.fcht_buckets)
        self.stats = CacheStats()
        #: Optional :class:`repro.telemetry.Telemetry` handle; ``None``
        #: (default) leaves the lookup/GC paths un-instrumented.
        self.telemetry: Optional[Any] = None
        self._location: Dict[int, Region] = {}  # lba -> owning log
        self._dirty: Set[int] = set()           # lbas not yet on disk
        #: Dirty lbas whose Flash home died; they leave via the next flush.
        self._orphan_dirty: Set[int] = set()
        self._gc_credit = 0.0                   # background move budget
        #: True once the cache fell below its minimum-blocks floor and
        #: handed the hierarchy back to DRAM+disk.
        self.degraded = False
        #: Fault-aware mode engages only when the device carries a fault
        #: injector.  The historical wear-only studies predate cache-level
        #: block shedding (controller retirement was advisory), and their
        #: figures must keep reproducing bit-identically.
        self._fault_aware = controller.device.fault_injector is not None
        num_blocks = controller.device.geometry.num_blocks
        if num_blocks < 4:
            raise ValueError("Flash disk cache needs at least 4 blocks")

        if self.config.split:
            read_blocks = max(2, int(num_blocks * self.config.read_fraction))
            read_blocks = min(read_blocks, num_blocks - 2)
            self._read = _RegionState(Region.READ)
            self._write = _RegionState(Region.WRITE)
            for block in range(read_blocks):
                self._read.free_blocks.append(block)
            for block in range(read_blocks, num_blocks):
                self._write.free_blocks.append(block)
        else:
            unified = _RegionState(Region.UNIFIED)
            for block in range(num_blocks):
                unified.free_blocks.append(block)
            self._read = unified
            self._write = unified
        # One erased block per region is held back as the GC reserve.
        for region in self._regions():
            region.reserve_block = region.free_blocks.popleft()
            region.reserve_free = deque(
                self.controller.pages_of_block(region.reserve_block))
            region.valid.setdefault(region.reserve_block, set())
            region.invalid.setdefault(region.reserve_block, 0)
        # The controller tells us whenever a block retires so capacity
        # bookkeeping (and the degradation floor) stays exact.
        self.controller.retire_listener = self._on_block_retired
        self._initial_pages = self.total_pages()

    def _regions(self) -> List[_RegionState]:
        if self._read is self._write:
            return [self._read]
        return [self._read, self._write]

    # -- capacity queries ----------------------------------------------------

    def total_pages(self) -> int:
        """Current logical page capacity across all non-retired blocks
        (bad frames excluded)."""
        seen: Set[int] = set()
        total = 0
        for region in self._regions():
            for block in self._all_region_blocks(region):
                if block in seen:
                    continue
                seen.add(block)
                if not self.controller.is_retired(block):
                    total += self.controller.block_capacity_pages(block)
        return total

    def valid_pages(self) -> int:
        return sum(len(pages) for region in self._regions()
                   for pages in region.valid.values())

    def used_fraction(self) -> float:
        total = self.total_pages()
        return self.valid_pages() / total if total else 0.0

    def live_capacity_fraction(self) -> float:
        """Fraction of the original page capacity still in service."""
        if self._initial_pages <= 0:
            return 0.0
        return self.total_pages() / self._initial_pages

    def _live_blocks(self) -> int:
        """Distinct non-retired blocks still tracked by any region."""
        seen: Set[int] = set()
        for region in self._regions():
            for block in self._all_region_blocks(region):
                if block not in seen \
                        and not self.controller.is_retired(block):
                    seen.add(block)
        return len(seen)

    def _all_region_blocks(self, region: _RegionState) -> List[int]:
        blocks = list(region.free_blocks) + list(region.lru)
        if region.open_block is not None:
            blocks.append(region.open_block)
        if region.reserve_block is not None:
            blocks.append(region.reserve_block)
        return blocks

    # -- lookup / read ---------------------------------------------------------

    def contains(self, lba: int) -> bool:
        return lba in self.fcht

    def read(self, lba: int) -> Optional[FlashReadOutcome]:
        """Serve a read from Flash; ``None`` on miss.

        An uncorrectable page (CRC-confirmed) is dropped from the cache
        and reported with ``recovered=False`` so the caller refetches from
        disk.  In the degraded (DRAM+disk bypass) state every read is an
        immediate miss.
        """
        # Hit/miss/write hooks fire only for event subscribers; their
        # counters mirror CacheStats and are harvested at end of run
        # (Telemetry.harvest_cache_counters), keeping this path cheap.
        telemetry = self.telemetry
        if self.degraded:
            self.stats.bypass_reads += 1
            self.stats.read_misses += 1
            if telemetry is not None and telemetry.bus.active:
                telemetry.cache_miss()
            return None
        self._accrue_gc_credit()
        address = self.fcht.lookup(lba)
        lookup_us = self.fcht.lookup_cost_us()
        if address is None:
            self.stats.read_misses += 1
            self.controller.fgst.record_miss(4200.0)
            self.stats.foreground_time_us += lookup_us
            if telemetry is not None and telemetry.bus.active:
                telemetry.cache_miss()
            return None

        result = self.controller.read(address)
        latency = lookup_us + result.latency_us
        self.stats.foreground_time_us += latency
        if not result.recovered:
            self.stats.uncorrectable += 1
            self._drop_page(lba, address)
            if lba in self._dirty:
                self._dirty.discard(lba)
                self.stats.unrecovered_faults += 1
                if self._fault_aware:
                    # The Flash copy was newer than the disk's; route the
                    # LBA through the next flush so write-back accounting
                    # stays balanced.
                    self._orphan_dirty.add(lba)
            else:
                self.stats.recovered_faults += 1
            self.stats.read_misses += 1
            self.controller.fgst.record_miss(4200.0)
            if telemetry is not None and telemetry.bus.active:
                telemetry.cache_miss()
            return FlashReadOutcome(latency_us=latency, recovered=False)

        self.stats.read_hits += 1
        self.controller.fgst.record_hit(result.latency_us)
        if telemetry is not None and telemetry.bus.active:
            telemetry.cache_hit(latency)
        self._touch_block(address.block)
        if result.hot_promotion and self.config.hot_promotion:
            self._promote_to_slc(lba, address)
        return FlashReadOutcome(latency_us=latency, recovered=True)

    def _touch_block(self, block: int) -> None:
        for region in self._regions():
            if block in region.lru:
                region.lru.move_to_end(block)
                return

    # -- fills (read misses) -----------------------------------------------------

    def insert_clean(self, lba: int) -> float:
        """Install a page fetched from disk into the read region.

        Returns the (background) program latency.  Section 5.1: on a read
        miss the disk content is copied to both the PDC and the read cache.
        A degraded cache installs nothing (the PDC alone caches the line).
        """
        if self.degraded:
            return 0.0
        self._accrue_gc_credit()
        old = self.fcht.lookup(lba)
        if old is not None:
            self._drop_page(lba, old)
        try:
            address, latency, flushed = \
                self._program_with_remap(self._read, lba)
        except CacheDegradedError:
            if not self.config.allow_eviction_for_space:
                raise
            self._enter_degraded()
            return 0.0
        if flushed:
            # Dirty flushes can only originate in the write region; the
            # read region never produces them (unified mode drops them,
            # preserving the historical accounting).
            self.stats.flushed_pages += len(flushed)
        self._register(lba, address, self._read, Region.READ)
        self.stats.fills += 1
        return latency

    # -- writes ---------------------------------------------------------------------

    def write(self, lba: int) -> WriteOutcome:
        """Out-of-place write into the write region (section 5.1).

        Existing copies — in either region — are invalidated first.  The
        read region may cross the GC watermark as a result and compact in
        the background.  A degraded cache forwards the write straight to
        disk via ``flushed_lbas``.
        """
        self.stats.writes += 1
        telemetry = self.telemetry
        if telemetry is not None and telemetry.bus.active:
            telemetry.cache_write()
        if self.degraded:
            self.stats.bypass_writes += 1
            self._orphan_dirty.discard(lba)
            return WriteOutcome(latency_us=0.0, flushed_lbas=(lba,))
        self._accrue_gc_credit()
        flushed: List[int] = []
        existing = self.fcht.lookup(lba)
        if existing is not None:
            region = self._region_of(lba)
            if region is self._write and self.config.split:
                self.stats.write_region_hits += 1
            self._drop_page(lba, existing)
            if self.config.split and region is self._read:
                self._maybe_gc_read_region()

        try:
            address, latency, evict_flushed = \
                self._program_with_remap(self._write, lba)
        except CacheDegradedError:
            if not self.config.allow_eviction_for_space:
                raise
            self._enter_degraded()
            self.stats.bypass_writes += 1
            self._orphan_dirty.discard(lba)
            return WriteOutcome(latency_us=0.0, flushed_lbas=(lba,))
        flushed.extend(evict_flushed)
        self.stats.foreground_time_us += latency
        self._register(lba, address, self._write, Region.WRITE)
        self._dirty.add(lba)
        return WriteOutcome(latency_us=latency, flushed_lbas=tuple(flushed))

    # -- scrubbing (retention refresh) ----------------------------------------------

    def cached_lbas(self) -> List[int]:
        """Every currently mapped LBA, sorted (deterministic scan order
        for the scrub pass regardless of insertion history)."""
        return sorted(self._location)

    def scrub_page(self, lba: int) -> ScrubOutcome:
        """Refresh one cached page: re-read it through the controller
        (latent errors are detected, counted, and answered by the normal
        section 5.2.1 response) and rewrite it out-of-place in its owning
        region, resetting its retention age.

        Runs entirely on the cache's ordinary machinery — FCHT remap,
        region bookkeeping, GC/eviction pressure from the rewrite — so
        every invariant the foreground path maintains holds here too.
        Read hit/miss statistics are untouched: scrubbing is background
        maintenance, not request traffic.
        """
        if self.degraded:
            return ScrubOutcome(latency_us=0.0, refreshed=False)
        address = self.fcht.lookup(lba)
        if address is None:
            return ScrubOutcome(latency_us=0.0, refreshed=False)
        result = self.controller.read(address)
        latency = result.latency_us
        if not result.recovered:
            self.stats.uncorrectable += 1
            self._drop_page(lba, address)
            if lba in self._dirty:
                self._dirty.discard(lba)
                self.stats.unrecovered_faults += 1
                if self._fault_aware:
                    self._orphan_dirty.add(lba)
            else:
                self.stats.recovered_faults += 1
            return ScrubOutcome(latency_us=latency, refreshed=False,
                                uncorrectable=True)
        if self.fcht.lookup(lba) != address or self.degraded:
            # The read's fault response (block retirement, degradation)
            # already unmapped the page; nothing left to rewrite.
            return ScrubOutcome(latency_us=latency, refreshed=False)
        tag = self._location.get(lba) or Region.READ
        region = self._write if tag is Region.WRITE else self._read
        dirty = lba in self._dirty
        self._drop_page(lba, address)
        try:
            new_address, program_us, flushed = \
                self._program_with_remap(region, lba)
        except CacheDegradedError:
            if not self.config.allow_eviction_for_space:
                raise
            # ``lba`` is still in ``_dirty`` (if it was dirty), so
            # entering the bypass routes it out through the orphan flush.
            self._enter_degraded()
            return ScrubOutcome(latency_us=latency, refreshed=False)
        self._register(lba, new_address, region, tag)
        if dirty:
            # The rewrite does not launder dirtiness: the copy is still
            # newer than the disk's until the next flush.
            self._dirty.add(lba)
        return ScrubOutcome(latency_us=latency + program_us,
                            refreshed=True,
                            flushed_lbas=tuple(flushed))

    # -- page bookkeeping helpers ---------------------------------------------------

    def _region_of(self, lba: int) -> _RegionState:
        tag = self._location.get(lba)
        if tag is Region.WRITE:
            return self._write
        return self._read

    def _register(self, lba: int, address: PageAddress,
                  region: _RegionState, tag: Region) -> None:
        self.fcht.insert(lba, address)
        self._location[lba] = tag
        region.valid.setdefault(address.block, set()).add(address)

    def _drop_page(self, lba: int, address: PageAddress) -> None:
        """Invalidate a cached page everywhere it is tracked."""
        self.fcht.remove(lba)
        tag = self._location.pop(lba, None)
        region = self._write if tag is Region.WRITE else self._read
        pages = region.valid.get(address.block)
        if pages is not None and address in pages:
            pages.remove(address)
            region.invalid[address.block] = \
                region.invalid.get(address.block, 0) + 1
        self.controller.invalidate(address)
        self.stats.invalidations += 1

    # -- fault handling and graceful degradation ----------------------------------------

    def _fault_drop(self, lba: int, address: PageAddress) -> None:
        """Unmap a page whose Flash copy was destroyed by a fault.

        No-ops when the FCHT no longer points at ``address`` (the page
        moved or was already unmapped).  A clean page is merely
        re-fetchable from disk (recovered); a dirty page leaves the disk
        stale (unrecovered) but still exits through the next flush so
        write-back accounting stays balanced.
        """
        if self.fcht.lookup(lba) != address:
            return
        self.fcht.remove(lba)
        tag = self._location.pop(lba, None)
        region = self._write if tag is Region.WRITE else self._read
        pages = region.valid.get(address.block)
        if pages is not None:
            pages.discard(address)
        if lba in self._dirty:
            self._dirty.discard(lba)
            self._orphan_dirty.add(lba)
            self.stats.unrecovered_faults += 1
        else:
            self.stats.recovered_faults += 1

    def _abandon_bad_frame(self, address: PageAddress) -> None:
        """Purge every page of a frame the controller just marked bad.

        The controller keeps the frame's *valid* FPST entries alive long
        enough for us to read their LBA back-pointers; after the unmap
        they are dropped here and the frame's addresses leave every
        allocation queue.
        """
        block, frame = address.block, address.frame
        geometry = self.controller.device.geometry
        mode = self.controller.device.frame_mode(block, frame)
        for subpage in range(geometry.pages_per_frame(mode)):
            page = PageAddress(block, frame, subpage)
            entry = self.controller.fpst.get(page)
            if entry is not None:
                if entry.valid and entry.lba is not None:
                    self._fault_drop(entry.lba, page)
                self.controller.fpst.drop(page)
        for region in self._regions():
            if region.open_free:
                region.open_free = deque(
                    a for a in region.open_free
                    if not (a.block == block and a.frame == frame))
            if region.reserve_free:
                region.reserve_free = deque(
                    a for a in region.reserve_free
                    if not (a.block == block and a.frame == frame))
            pages = region.valid.get(block)
            if pages:
                doomed = {a for a in pages if a.frame == frame}
                pages -= doomed

    def _program_with_remap(
            self, region: _RegionState,
            lba: Optional[int]) -> Tuple[PageAddress, float, List[int]]:
        """Allocate and program a page, replaying onto a fresh frame after
        each program failure.  Returns (address, total latency including
        failed attempts, dirty LBAs flushed by evictions)."""
        flushed: List[int] = []
        latency = 0.0
        while True:
            address, evict_flushed = self._allocate_page_collect(region)
            flushed.extend(evict_flushed)
            try:
                latency += self.controller.program(address, lba=lba)
            except ProgramFailure as failure:
                latency += failure.latency_us
                self.stats.remapped_programs += 1
                self._abandon_bad_frame(address)
                continue
            return address, latency, flushed

    def _try_erase(self, block: int) -> Tuple[float, bool]:
        """Erase a block; on failure the controller has already retired it
        (and the retire listener pulled it from every region structure).
        Returns (latency, success)."""
        try:
            return self.controller.erase(block), True
        except EraseFailure as failure:
            return failure.latency_us, False

    def _adopt_reserve(self, region: _RegionState) -> Optional[int]:
        """Replace a dead GC reserve with a free (erased) block."""
        while region.free_blocks:
            block = region.free_blocks.popleft()
            if self.controller.is_retired(block):
                continue
            region.reserve_block = block
            region.valid.setdefault(block, set())
            region.invalid.setdefault(block, 0)
            return block
        return None

    def _on_block_retired(self, block: int) -> None:
        """Controller retire callback: pull the block out of service.

        Active only in fault-aware mode — the wear-only studies keep the
        historical advisory-retirement semantics (see ``_fault_aware``).
        Data still mapped in the block is dropped (the disk has it, or it
        leaves via the orphan flush), and the block vanishes from every
        free/LRU/open/reserve structure, shrinking live capacity.
        """
        if not self._fault_aware:
            return
        self.stats.retired_blocks += 1
        for region in self._regions():
            for address in list(region.valid.get(block, ())):
                entry = self.controller.fpst.get(address)
                if entry is not None and entry.lba is not None:
                    self._fault_drop(entry.lba, address)
            region.valid.pop(block, None)
            region.invalid.pop(block, None)
            region.lru.pop(block, None)
            if block in region.free_blocks:
                region.free_blocks = deque(
                    b for b in region.free_blocks if b != block)
            if region.open_block == block:
                region.open_block = None
                region.open_free = deque()
            if region.reserve_block == block:
                region.reserve_block = None
                region.reserve_free = deque()
        self._check_degradation()

    def _check_degradation(self) -> None:
        if not self.degraded \
                and self._live_blocks() < self.config.min_live_blocks:
            self._enter_degraded()

    def _enter_degraded(self) -> None:
        """Drop below the minimum-blocks floor: switch the Flash off.

        The cache stops serving (reads miss, writes forward to disk) and
        sheds its mapping state; dirty data is parked in the orphan set so
        the next flush still pushes it to disk.
        """
        if self.degraded:
            return
        self.degraded = True
        self.stats.degraded_events += 1
        if self.telemetry is not None:
            self.telemetry.degrade()
        self._orphan_dirty.update(self._dirty)
        self._dirty.clear()
        self.fcht = FlashCacheHashTable(buckets=self.config.fcht_buckets)
        self._location.clear()

    # -- allocation, eviction, wear-leveling -------------------------------------------

    def _allocate_page_collect(
            self, region: _RegionState) -> Tuple[PageAddress, List[int]]:
        flushed: List[int] = []
        while not region.open_free:
            if region.open_block is not None:
                # Open block is full: close it into the LRU set.
                region.lru[region.open_block] = None
                region.lru.move_to_end(region.open_block)
                region.open_block = None
            if region.free_blocks:
                slc = (self.config.write_region_slc
                       and self.config.split and region is self._write)
                self._open_block(region, region.free_blocks.popleft(),
                                 slc=slc)
                continue
            block_capacity = self._nominal_block_pages()
            collected = False
            if region.total_invalid() >= block_capacity \
                    or not self.config.allow_eviction_for_space:
                collected = self._garbage_collect(region)
            if not collected:
                if not self.config.allow_eviction_for_space:
                    raise CacheCapacityError(
                        "flash is full of valid pages and eviction is "
                        "disabled (SSD semantics): no space can be reclaimed")
                flushed.extend(self._evict_block(region))
        return region.open_free.popleft(), flushed

    def _accrue_gc_credit(self) -> None:
        if self.config.gc_move_budget is not None:
            self._gc_credit += self.config.gc_move_budget

    def _gc_move_allowance(self) -> Optional[int]:
        """How many GC page moves the background budget currently allows
        (None = unlimited).  SSD mode ignores the budget: with eviction
        forbidden, GC must run regardless."""
        if self.config.gc_move_budget is None \
                or not self.config.allow_eviction_for_space:
            return None
        return int(self._gc_credit)

    def _nominal_block_pages(self) -> int:
        geometry = self.controller.device.geometry
        return geometry.pages_per_block(CellMode.MLC)

    def _open_block(self, region: _RegionState, block: int,
                    slc: bool = False) -> bool:
        """Open an erased block for appends.  Returns False — leaving the
        region without an open block — when the block cannot serve: it
        retired, its SLC format erase failed, or bad frames left it
        without a single usable page."""
        if self._fault_aware and self.controller.is_retired(block):
            return False
        if slc:
            latency, ok = self._format_block_slc(block)
            self.stats.gc_time_us += latency
            if not ok:
                return False
        pages = [
            address for address in self.controller.pages_of_block(block)
            if address not in region.valid.get(block, set())
        ]
        if not pages:
            # Every frame is bad: the block silently leaves service.
            return False
        region.open_block = block
        region.open_free = deque(pages)
        region.valid.setdefault(block, set())
        region.invalid.setdefault(block, 0)
        return True

    def _format_block_slc(self, block: int) -> Tuple[float, bool]:
        for frame in range(self.controller.device.geometry.frames_per_block):
            if not self.controller.is_bad_frame(block, frame):
                self.controller.request_slc(PageAddress(block, frame, 0))
        return self._try_erase(block)

    def _garbage_collect(self, region: _RegionState) -> bool:
        """Compact one victim block into the reserve GC log.

        The victim's valid pages move into the reserve block's free pages;
        the erased victim then either becomes the new reserve (when the
        old one filled up, which closes it into the LRU set) or joins the
        free list as allocatable space.  Victim selection is greedy
        most-invalid (cheapest move per page reclaimed); all work runs in
        the background (time booked to ``gc_time_us``).  Returns False
        when no victim fits the remaining reserve space (the caller falls
        back to eviction) or, in SSD mode, when the reserve died and no
        free block can replace it (:class:`ReserveBlockLostError`).
        """
        reserve = region.reserve_block
        if reserve is None:
            reserve = self._adopt_reserve(region)
            if reserve is None:
                if not self.config.allow_eviction_for_space:
                    raise ReserveBlockLostError(
                        "GC reserve block died and no free block can "
                        "replace it")
                return False
        region.reserve_free = deque(self.controller.pages_of_block(reserve))
        allowance = self._gc_move_allowance()
        max_moves = len(region.reserve_free)
        if allowance is not None:
            max_moves = min(max_moves, allowance)
        victim = self._most_invalid_block(region, max_valid=max_moves)
        if victim is None:
            return False
        if allowance is not None:
            self._gc_credit -= len(region.valid.get(victim, set()))
        self.stats.gc_runs += 1
        moves_before = self.stats.gc_page_moves
        elapsed = 0.0
        for address in sorted(region.valid.get(victim, set()),
                              key=lambda a: (a.frame, a.subpage)):
            if self._fault_aware and self.controller.is_retired(victim):
                # The victim retired under us (read-triggered wear-out or
                # fault); the listener already dropped its leftover pages.
                break
            lba = self.controller.fpst.entry(address).lba
            read_result = self.controller.read(address)
            elapsed += read_result.latency_us
            if self._fault_aware and not read_result.recovered:
                # The copy is unreadable: dropping it is safe (the disk
                # has the data) and better than propagating garbage.
                self.stats.uncorrectable += 1
                if lba is not None:
                    self._fault_drop(lba, address)
                continue
            moved = False
            while region.reserve_free:
                target = region.reserve_free.popleft()
                try:
                    elapsed += self.controller.program(target, lba=lba)
                except ProgramFailure as failure:
                    elapsed += failure.latency_us
                    self.stats.remapped_programs += 1
                    self._abandon_bad_frame(target)
                    continue
                moved = True
                break
            if not moved:
                # Bad frames ran the reserve dry mid-pass; the page
                # cannot move, so it falls out of the cache.
                if lba is not None:
                    self._fault_drop(lba, address)
                continue
            self.stats.gc_page_moves += 1
            if lba is not None:
                self.fcht.insert(lba, target)
            region.valid.setdefault(reserve, set()).add(target)
        erase_latency, erase_ok = self._try_erase(victim)
        elapsed += erase_latency
        # The erased victim becomes the new spare; the partially filled
        # old spare must not strand its remaining erased pages, so it
        # becomes the region's open block when possible, otherwise its
        # unused slots are booked as reclaimable (invalid) space.  When a
        # fault killed the victim (or the reserve) mid-pass, the retire
        # listener already pulled the dead block from the region and the
        # surviving side simply keeps its role where it can.
        remaining = region.reserve_free
        region.reserve_free = deque()
        reserve_alive = region.reserve_block == reserve
        if erase_ok and not (self._fault_aware
                             and self.controller.is_retired(victim)):
            region.lru.pop(victim, None)
            region.valid[victim] = set()
            region.invalid[victim] = 0
            region.reserve_block = victim
        elif reserve_alive:
            # Victim died: the old reserve now carries content, so it must
            # leave reserve duty; a replacement is adopted on the next GC.
            region.reserve_block = None
        if reserve_alive:
            region.invalid.setdefault(reserve, 0)
            if region.open_block is None:
                region.open_block = reserve
                region.open_free = remaining
            else:
                region.lru[reserve] = None
                region.lru.move_to_end(reserve)
                region.invalid[reserve] += len(remaining)
        self.stats.gc_time_us += elapsed
        if self.telemetry is not None:
            self.telemetry.gc(elapsed,
                              self.stats.gc_page_moves - moves_before)
        return True

    def _most_invalid_block(self, region: _RegionState,
                            max_valid: int | None = None) -> Optional[int]:
        """Greedy GC victim: most invalid pages, and (when ``max_valid`` is
        given) whose valid pages fit the reserve block's capacity."""
        best, best_count = None, 0
        for block in region.lru:
            count = region.invalid.get(block, 0)
            if count <= best_count:
                continue
            if max_valid is not None \
                    and len(region.valid.get(block, set())) > max_valid:
                continue
            best, best_count = block, count
        return best

    def _evict_block(self, region: _RegionState) -> List[int]:
        """Evict a whole block (LRU, wear-level aware); returns dirty LBAs.

        Read-region content is clean and simply dropped; write-region
        content is dirty and must flush to disk (section 5.1).
        """
        while True:
            if not region.lru:
                raise NoEvictableBlockError(
                    "eviction requested but region has no blocks")
            candidate = next(iter(region.lru))
            chosen = self._wear_level_victim(region, candidate)
            if chosen is not None:
                victim = chosen
                break
            # A fault destroyed the candidate mid-swap; the retire
            # listener pulled it from the LRU, so pick another.
        flushed: List[int] = []
        for address in list(region.valid.get(victim, set())):
            lba = self.controller.fpst.entry(address).lba
            if lba is not None:
                if lba in self._dirty:
                    flushed.append(lba)
                    self._dirty.discard(lba)
                self.fcht.remove(lba)
                self._location.pop(lba, None)
        erase_latency, erase_ok = self._try_erase(victim)
        self.stats.foreground_time_us += erase_latency
        if erase_ok and not (self._fault_aware
                             and self.controller.is_retired(victim)):
            region.lru.pop(victim, None)
            region.valid[victim] = set()
            region.invalid[victim] = 0
            region.free_blocks.append(victim)
        # On erase failure (or a mid-erase retirement) the retire listener
        # already removed the block; its capacity is simply gone.
        if region is self._write and self.config.split:
            self.stats.write_evictions += 1
        else:
            self.stats.read_evictions += 1
        self.stats.flushed_pages += len(flushed)
        return flushed

    def _wear_level_victim(self, region: _RegionState,
                           victim: int) -> Optional[int]:
        """Section 3.6: swap in the globally newest block when the LRU
        victim is too worn, migrating the newest block's content into the
        victim first.  Returns ``None`` when a fault destroyed the victim
        mid-swap (the caller picks a new one)."""
        newest = self._global_newest_block(exclude={victim})
        if newest is None:
            return victim
        wear_gap = (self.controller.wear_out(victim)
                    - self.controller.wear_out(newest))
        if wear_gap <= self.config.wear_threshold:
            return victim
        newest_region = self._owning_region(newest)
        if newest_region is None or newest not in newest_region.lru:
            return victim  # newest block has no migratable content
        victim_pages = deque(self.controller.pages_of_block(victim))
        newest_valid = newest_region.valid.get(newest, set())
        if len(newest_valid) > len(victim_pages):
            # The victim cannot hold the newest block's content (density
            # mismatch); skip the swap rather than drop pages.
            return victim
        self.stats.wear_swaps += 1
        elapsed, erase_ok = self._try_erase(victim)
        if not erase_ok:
            self.stats.gc_time_us += elapsed
            return None
        victim_region = region
        # Migrate newest -> victim; the two blocks swap owners.
        moved: Set[PageAddress] = set()
        for address in sorted(newest_valid,
                              key=lambda a: (a.frame, a.subpage)):
            lba = self.controller.fpst.entry(address).lba
            read_result = self.controller.read(address)
            elapsed += read_result.latency_us
            if self._fault_aware and not read_result.recovered:
                self.stats.uncorrectable += 1
                if lba is not None:
                    self._fault_drop(lba, address)
                continue
            placed = False
            while victim_pages:
                target = victim_pages.popleft()
                try:
                    elapsed += self.controller.program(target, lba=lba)
                except ProgramFailure as failure:
                    elapsed += failure.latency_us
                    self.stats.remapped_programs += 1
                    self._abandon_bad_frame(target)
                    # The helper cannot see our local deque: purge the
                    # dead frame's remaining pages from it here.
                    victim_pages = deque(
                        a for a in victim_pages
                        if not (a.block == target.block
                                and a.frame == target.frame))
                    continue
                placed = True
                break
            if not placed:
                if lba is not None:
                    self._fault_drop(lba, address)
                continue
            if lba is not None:
                self.fcht.insert(lba, target)
            moved.add(target)
        self.stats.gc_time_us += elapsed
        if self._fault_aware and self.controller.is_retired(victim):
            # Program failures retired the victim mid-migration; whatever
            # moved into it was already dropped by the retire listener.
            return None
        # Victim block now carries the newest block's content and takes its
        # place in the newest block's region LRU.
        newest_region.lru.pop(newest, None)
        newest_region.lru[victim] = None
        newest_region.valid[victim] = moved
        newest_region.invalid[victim] = 0
        victim_region.lru.pop(victim, None)
        if newest_region is not victim_region:
            victim_region.valid.pop(victim, None)
            victim_region.invalid.pop(victim, None)
        # The newest block is erased by the caller as the actual victim; it
        # joins the requesting region at the LRU end.
        newest_region.valid.pop(newest, None)
        newest_region.invalid.pop(newest, None)
        victim_region.lru[newest] = None
        victim_region.lru.move_to_end(newest, last=False)
        victim_region.valid[newest] = set()
        victim_region.invalid[newest] = 0
        return newest

    def _global_newest_block(self, exclude: Set[int]) -> Optional[int]:
        """Minimum-wear block with content, over all regions (section 3.6:
        "Newest blocks are chosen from the entire set of Flash blocks")."""
        best, best_wear = None, float("inf")
        for region in self._regions():
            for block in region.lru:
                if block in exclude or self.controller.is_retired(block):
                    continue
                wear = self.controller.wear_out(block)
                if wear < best_wear:
                    best, best_wear = block, wear
        return best

    def _owning_region(self, block: int) -> Optional[_RegionState]:
        for region in self._regions():
            if block in region.lru or block == region.open_block:
                return region
        return None

    # -- read-region compaction (section 5.1) ------------------------------------------

    def _maybe_gc_read_region(self) -> None:
        region = self._read
        capacity = sum(
            self.controller.block_capacity_pages(block)
            for block in region.lru
        )
        if capacity == 0:
            return
        valid = sum(len(region.valid.get(block, set())) for block in region.lru)
        if valid / capacity < self.config.gc_read_watermark \
                and region.total_invalid() >= self._nominal_block_pages():
            self._garbage_collect(region)

    # -- hot-page promotion (section 5.2.2) ----------------------------------------------

    def _promote_to_slc(self, lba: int, address: PageAddress) -> None:
        """Migrate a saturated MLC page into an SLC-formatted block."""
        tag = self._location.get(lba) or Region.READ
        region = self._write if tag is Region.WRITE else self._read
        target = self._slc_page(region)
        if target is None:
            return  # no capacity for promotion right now
        read_result = self.controller.read(address)
        elapsed = read_result.latency_us
        if self._fault_aware and not read_result.recovered:
            # Source page unreadable: the promotion dies and so does the
            # cached copy; give the SLC slot back.
            region.open_free.appendleft(target)
            self.stats.uncorrectable += 1
            self._drop_page(lba, address)
            if lba in self._dirty:
                self._dirty.discard(lba)
                self._orphan_dirty.add(lba)
                self.stats.unrecovered_faults += 1
            else:
                self.stats.recovered_faults += 1
            self.stats.gc_time_us += elapsed
            return
        self._drop_page(lba, address)
        while True:
            try:
                elapsed += self.controller.program(target, lba=lba)
                break
            except ProgramFailure as failure:
                elapsed += failure.latency_us
                self.stats.remapped_programs += 1
                self._abandon_bad_frame(target)
                next_target = self._slc_page(region)
                if next_target is None:
                    # Promotion abandoned and the Flash copy is gone; a
                    # dirty page still reaches the disk via the orphan
                    # flush.
                    if lba in self._dirty:
                        self._dirty.discard(lba)
                        self._orphan_dirty.add(lba)
                        self.stats.unrecovered_faults += 1
                    else:
                        self.stats.recovered_faults += 1
                    self.stats.gc_time_us += elapsed
                    return
                target = next_target
        entry = self.controller.fpst.entry(target)
        entry.saturate()
        self._register(lba, target, region, tag)
        self.stats.slc_promotions += 1
        self.stats.gc_time_us += elapsed

    def _slc_page(self, region: _RegionState) -> Optional[PageAddress]:
        """Next free SLC page, formatting a free block to SLC if needed."""
        if region.open_block is not None and region.open_free:
            head = region.open_free[0]
            if self.controller.device.frame_mode(
                    head.block, head.frame) is CellMode.SLC:
                return region.open_free.popleft()
        if not region.free_blocks:
            return None
        block = region.free_blocks.popleft()
        # Close the current open block before switching to the SLC one.
        if region.open_block is not None:
            region.lru[region.open_block] = None
            region.lru.move_to_end(region.open_block)
        if not self._open_block(region, block, slc=True):
            return None  # formatting failed; skip the promotion
        return region.open_free.popleft()

    # -- maintenance -----------------------------------------------------------------------

    def flush(self) -> List[int]:
        """Flush dirty pages to disk: returns every dirty LBA and marks it
        clean; the pages stay cached and readable (section 5.1: "The disk
        is eventually updated by flushing the write disk cache")."""
        flushed = sorted(set(self._dirty) | self._orphan_dirty)
        self._dirty.clear()
        self._orphan_dirty.clear()
        self.stats.flushed_pages += len(flushed)
        return flushed

    def is_dirty(self, lba: int) -> bool:
        return lba in self._dirty
