"""``repro.telemetry`` — in-process observability for the simulated stack.

The paper's evaluation lives on distributions over time: miss-rate and
wear curves across billions of accesses, throughput ceilings set by tail
storage latency.  This package turns the simulator's end-of-run counters
into that kind of evidence without perturbing the simulation:

* a typed :class:`~repro.telemetry.events.EventBus`
  (read/write/hit/miss/gc/erase/fault/retire/degrade);
* a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters,
  gauges, and fixed-bucket latency histograms with p50/p95/p99/max;
* windowed :class:`~repro.telemetry.timeseries.TraceSampler` snapshots
  (miss rate, live capacity, wear max/avg, retry counts per N requests);
* JSON and CSV exporters (:mod:`repro.telemetry.export`).

**Overhead contract.**  Every instrumented component holds a
``telemetry`` attribute that is ``None`` by default; each hot-path site
is guarded by a single attribute load and ``None`` check, so
un-instrumented runs execute the exact same simulation code and stay
bit-identical to pre-telemetry behaviour.  With a handle attached, each
hook is counter increments plus at most one histogram insert, and bus
events are only materialised when someone subscribed to that kind
(:meth:`EventBus.wants`).  An instrumented run must stay within 10% of
un-instrumented wall-clock (asserted in
``benchmarks/test_telemetry_overhead.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import Event, EventBus, EventKind
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_US,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)
from .timeseries import TimeSeries, TraceSampler

__all__ = [
    "Event",
    "EventBus",
    "EventKind",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
    "TimeSeries",
    "TraceSampler",
    "Telemetry",
]


class Telemetry:
    """The handle instrumented components talk to.

    One instance aggregates a whole run: attach it with
    :meth:`attach` (or pass it to :func:`repro.sim.engine.run_trace`,
    which attaches it for you), then read ``metrics``/``timeseries`` or
    export via :mod:`repro.telemetry.export` when the run finishes.
    """

    def __init__(self, sample_interval: int = 1000):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.timeseries: Dict[str, TimeSeries] = {}
        #: Requests between :class:`TraceSampler` snapshots.
        self.sample_interval = sample_interval
        registry = self.metrics
        # Hot instruments are bound once so hook calls skip the registry
        # dict lookup.
        self.read_latency = registry.histogram("request.read_latency_us")
        self.write_latency = registry.histogram("request.write_latency_us")
        self.flash_read_latency = registry.histogram(
            "flash.read_latency_us")
        self.flash_program_latency = registry.histogram(
            "flash.program_latency_us")
        self.disk_latency = registry.histogram("disk.access_latency_us")
        self.gc_pass_latency = registry.histogram("flash.gc_pass_us")
        self._c_read = registry.counter("request.reads")
        self._c_write = registry.counter("request.writes")
        self._c_pdc_hit = registry.counter("pdc.hits")
        self._c_pdc_miss = registry.counter("pdc.misses")
        self._c_disk_read = registry.counter("disk.reads")
        self._c_disk_write = registry.counter("disk.writes")
        self._c_nand_read = registry.counter("nand.reads")
        self._c_nand_program = registry.counter("nand.programs")
        self._c_nand_erase = registry.counter("nand.erases")
        self._c_hit = registry.counter("flash.hits")
        self._c_miss = registry.counter("flash.misses")
        self._c_cache_write = registry.counter("flash.writes")
        self._c_retry = registry.counter("flash.read_retries")
        self._c_uncorrectable = registry.counter("flash.uncorrectable_reads")
        self._c_gc_runs = registry.counter("flash.gc_runs")
        self._c_gc_moves = registry.counter("flash.gc_page_moves")
        self._c_reconfig_ecc = registry.counter("flash.reconfig.code_strength")
        self._c_reconfig_density = registry.counter("flash.reconfig.density")
        self._c_retired = registry.counter("flash.blocks_retired")
        self._c_degraded = registry.counter("flash.degraded_events")
        self._c_scrub_passes = registry.counter("flash.scrub_passes")
        self._c_scrub_rewrites = registry.counter("flash.scrub_page_rewrites")
        self.scrub_pass_latency = registry.histogram("flash.scrub_pass_us")

    # -- series ----------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """Get-or-create a named time-series."""
        existing = self.timeseries.get(name)
        if existing is None:
            existing = self.timeseries[name] = TimeSeries(name)
        return existing

    # -- merging (parallel sweep aggregation) ----------------------------------

    def merge(self, other: "Telemetry") -> None:
        """Fold another handle's observations into this one.

        Counters add, histograms merge bucket-wise, and time-series
        concatenate in call order — so merging the per-task handles of a
        parallel sweep (in task order) reproduces exactly the aggregate
        a serial run sharing one handle across those tasks would hold.
        Pre-bound instruments (``read_latency`` etc.) alias registry
        entries by name, so the registry merge updates them in place.
        """
        self.metrics.merge(other.metrics)
        for name, series in other.timeseries.items():
            self.series(name).extend(series)

    # -- bus plumbing ----------------------------------------------------------

    def _publish(self, kind: EventKind, source: str,
                 latency_us: float = 0.0, value: float = 0.0,
                 detail: str = "") -> None:
        bus = self.bus
        if bus.wants(kind):
            bus.publish(Event(kind, source, latency_us, value, detail))

    # The hooks below sit on the simulator's per-request and per-NAND-op
    # paths, where even a counter bump is a measurable share of the
    # simulated work.  Every hot counter duplicates a statistic the
    # simulator already maintains (``SystemStats``, ``PdcStats``,
    # ``DiskModel``, ``ControllerStats``, ``DeviceStats``), so the hooks
    # only feed the latency histograms (a buffered append) and publish
    # events when someone subscribed; the counters are reconstructed at
    # end of run by :meth:`harvest_system_counters` /
    # :meth:`harvest_cache_counters` (the overhead-contract benchmark
    # holds the total under 10%).

    # -- request level (hierarchy foreground path) -----------------------------
    # ``pdc_hit`` rides along on the request hooks instead of a separate
    # per-access PDC hook: the hierarchy already knows the lookup outcome,
    # and one hook call per request is half the hot-path cost of two.

    def request_read(self, latency_us: float, pdc_hit: bool) -> None:
        self.read_latency.observe(latency_us)
        if self.bus.active:
            self._publish(EventKind.READ, "system", latency_us,
                          value=float(pdc_hit))

    def request_write(self, latency_us: float, pdc_hit: bool) -> None:
        self.write_latency.observe(latency_us)
        if self.bus.active:
            self._publish(EventKind.WRITE, "system", latency_us,
                          value=float(pdc_hit))

    # -- disk ------------------------------------------------------------------

    def disk_read(self, latency_us: float) -> None:
        self.disk_latency.observe(latency_us)

    def disk_write(self, latency_us: float) -> None:
        self.disk_latency.observe(latency_us)

    # -- raw NAND operations ---------------------------------------------------

    def nand_erase(self, latency_us: float) -> None:
        if self.bus.active:
            self._publish(EventKind.ERASE, "nand", latency_us)

    def nand_fault(self, operation: str) -> None:
        self.metrics.counter(f"nand.faults.{operation}").inc()
        self._publish(EventKind.FAULT, "nand", detail=operation)

    # -- Flash controller ------------------------------------------------------

    def flash_read(self, latency_us: float, retries: int,
                   recovered: bool) -> None:
        self.flash_read_latency.observe(latency_us)
        if not recovered and self.bus.active:
            self._publish(EventKind.FAULT, "flash", latency_us,
                          detail="uncorrectable")

    def flash_program(self, latency_us: float) -> None:
        self.flash_program_latency.observe(latency_us)

    def reconfig(self, kind: str) -> None:
        (self._c_reconfig_ecc if kind == "code_strength"
         else self._c_reconfig_density).inc()

    def retire(self, block: int) -> None:
        self._c_retired.inc()
        self._publish(EventKind.RETIRE, "flash", value=float(block))

    # -- cluster repair --------------------------------------------------------
    # Cold paths (a handful of calls per run): a repaired shard coming
    # back into the ring, and its anti-entropy catch-up traffic.

    def rejoin(self, shard_id: int, at_us: float) -> None:
        self.metrics.counter("cluster.rejoins").inc()
        self._publish(EventKind.REJOIN, "cluster", latency_us=at_us,
                      value=float(shard_id))

    def sync_page(self, page: int, is_read: bool) -> None:
        self.metrics.counter("cluster.sync_reads" if is_read
                             else "cluster.sync_writes").inc()
        self._publish(EventKind.SYNC, "cluster", value=float(page),
                      detail="read" if is_read else "write")

    # -- Flash disk cache ------------------------------------------------------
    # The cache's hit/miss/write hooks exist for event subscribers; their
    # counters duplicate ``CacheStats`` exactly, so the call sites skip the
    # hook entirely while the bus is quiet and the run helpers square the
    # counters up afterwards via :meth:`harvest_cache_counters`.

    def cache_hit(self, latency_us: float) -> None:
        self._c_hit.value += 1
        self._publish(EventKind.HIT, "flash", latency_us)

    def cache_miss(self) -> None:
        self._c_miss.value += 1
        self._publish(EventKind.MISS, "flash")

    def cache_write(self) -> None:
        self._c_cache_write.value += 1

    def harvest_cache_counters(self, cache) -> None:
        """Fold a finished cache stack's totals into the counters.

        The hot hooks never bump counters (see the comment above the
        hook block); everything is reconstructed here from the
        statistics the simulator keeps anyway — additively, because one
        handle may observe several caches (the split-cache experiments).
        Call once per cache, after its run finishes;
        :func:`repro.sim.engine.run_trace` and the disk-trace replay do
        so automatically.
        """
        # Hit/miss/write hook call sites only fire for bus subscribers,
        # and the hooks count live in that case.
        if not self.bus.active:
            stats = cache.stats
            self._c_hit.value += stats.read_hits
            self._c_miss.value += stats.read_misses
            self._c_cache_write.value += stats.writes
        controller = cache.controller
        controller_stats = controller.stats
        self._c_retry.value += controller_stats.read_retries
        self._c_uncorrectable.value += controller_stats.uncorrectable_reads
        device_stats = controller.device.stats
        self._c_nand_read.value += device_stats.reads
        self._c_nand_program.value += device_stats.programs
        self._c_nand_erase.value += device_stats.erases

    def harvest_system_counters(self, system) -> None:
        """Fold a finished hierarchy's request/PDC/disk totals into the
        counters (the Flash layers go through
        :meth:`harvest_cache_counters`).  :func:`run_trace` calls this;
        only direct users of :meth:`attach` need to themselves."""
        stats = system.stats
        self._c_read.value += stats.reads
        self._c_write.value += stats.writes
        pdc = system.pdc.stats
        self._c_pdc_hit.value += pdc.read_hits + pdc.write_hits
        self._c_pdc_miss.value += pdc.read_misses + pdc.write_misses
        disk = system.disk
        self._c_disk_read.value += disk.reads
        self._c_disk_write.value += disk.writes

    def gc(self, elapsed_us: float, page_moves: int) -> None:
        self._c_gc_runs.inc()
        self._c_gc_moves.inc(page_moves)
        self.gc_pass_latency.observe(elapsed_us)
        self._publish(EventKind.GC, "flash", elapsed_us,
                      value=float(page_moves))

    def degrade(self) -> None:
        self._c_degraded.inc()
        self._publish(EventKind.DEGRADE, "flash")

    def scrub(self, elapsed_us: float, page_rewrites: int) -> None:
        """One background retention-scrub pass finished.  Cold path — a
        pass happens once per scrub interval, not per request."""
        self._c_scrub_passes.inc()
        self._c_scrub_rewrites.inc(page_rewrites)
        self.scrub_pass_latency.observe(elapsed_us)
        self._publish(EventKind.SCRUB, "flash", elapsed_us,
                      value=float(page_rewrites))

    # -- wiring ----------------------------------------------------------------

    def attach(self, system) -> None:
        """Point every instrumented component of ``system`` at this handle.

        Works for both hierarchies: the DRAM-only system instruments the
        request path (which carries the PDC outcome) and the disk; the
        Flash-backed system additionally instruments the cache,
        controller, and NAND device.
        """
        system.telemetry = self
        system.disk.telemetry = self
        flash = getattr(system, "flash", None)
        if flash is not None:
            self.attach_cache(flash)

    def attach_cache(self, cache) -> None:
        """Attach to a bare Flash disk cache stack (no hierarchy above),
        as the disk-trace replay experiments use."""
        cache.telemetry = self
        cache.controller.telemetry = self
        cache.controller.device.telemetry = self

    def detach(self, system) -> None:
        """Reverse :meth:`attach` (used by A/B overhead measurements)."""
        system.telemetry = None
        system.disk.telemetry = None
        flash = getattr(system, "flash", None)
        if flash is not None:
            flash.telemetry = None
            flash.controller.telemetry = None
            flash.controller.device.telemetry = None
