"""Windowed time-series sampling over a running simulation.

The paper's long studies are about how things *evolve* — miss rate as the
cache warms, live capacity as faults retire blocks, wear spreading across
the array.  A :class:`TraceSampler` snapshots those signals every N
requests (trace position is the x axis: simulated wall-clock would
compress the interesting late-trace region once the device slows down).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from . import Telemetry

__all__ = ["TimeSeries", "TraceSampler"]


class TimeSeries:
    """One named (x, y) sequence; x is trace position in requests."""

    __slots__ = ("name", "xs", "ys")

    def __init__(self, name: str):
        self.name = name
        self.xs: List[float] = []
        self.ys: List[float] = []

    def append(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def extend(self, other: "TimeSeries") -> None:
        """Concatenate ``other``'s points after this series' own.

        The parallel sweep merge appends per-task series in task order;
        x values are per-task trace positions, so a merged series reads
        as consecutive segments, one per task, exactly as a serial run
        appending into one shared series would have written them.
        """
        self.xs.extend(other.xs)
        self.ys.extend(other.ys)

    def __len__(self) -> int:
        return len(self.xs)

    @property
    def last(self) -> Optional[float]:
        return self.ys[-1] if self.ys else None

    def as_dict(self) -> Dict[str, List[float]]:
        return {"x": list(self.xs), "y": list(self.ys)}

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, points={len(self.xs)})"


class TraceSampler:
    """Per-N-requests snapshots of a hierarchy's health signals.

    Samples whatever the attached system exposes: PDC miss rate always;
    Flash miss rate, live capacity, wear max/avg, retry and uncorrectable
    counts when the system carries a Flash disk cache.  The sampler reads
    existing statistics — it never touches simulation state, so sampled
    and unsampled runs stay bit-identical.
    """

    def __init__(self, telemetry: "Telemetry", system,
                 interval: int = 1000):
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        self.telemetry = telemetry
        self.system = system
        self.interval = interval
        #: Next trace position that triggers a snapshot.  Public so the
        #: driving loop can compare against it inline instead of paying a
        #: :meth:`maybe_sample` call per record.
        self.next_at = interval
        self._last_position = -1
        self._flash = getattr(system, "flash", None)
        # Live capacity needs a full per-block scan; it only moves when a
        # capacity-changing action happened, so cache it keyed on the
        # counters those actions bump.
        self._capacity_key: Optional[tuple] = None
        self._capacity_value = 1.0

    def maybe_sample(self, position: int) -> None:
        """Snapshot when ``position`` (requests processed) crosses the
        next window edge.  Call once per processed record."""
        if position >= self.next_at:
            self.sample(position)
            # Multi-page records can jump several windows at once; land
            # the next edge strictly ahead of the current position.
            while self.next_at <= position:
                self.next_at += self.interval

    def finalize(self, position: int) -> None:
        """End-of-trace snapshot, skipped when ``position`` was already
        sampled (a trace length that is an exact multiple of the
        interval) so series never carry duplicate x values."""
        if position != self._last_position:
            self.sample(position)

    def sample(self, position: int) -> None:
        """Record one snapshot at trace position ``position``."""
        self._last_position = position
        series = self.telemetry.series
        pdc = self.system.pdc.stats
        series("pdc_miss_rate").append(position, pdc.miss_rate)
        flash = self._flash
        if flash is None:
            return
        stats = flash.stats
        series("flash_miss_rate").append(position, stats.read_miss_rate)
        series("live_capacity").append(position, self._live_capacity())
        controller = flash.controller
        series("read_retries").append(position,
                                      controller.stats.read_retries)
        series("uncorrectable_reads").append(
            position, controller.stats.uncorrectable_reads)
        series("retired_blocks").append(position,
                                        controller.stats.blocks_retired)
        wear_max, wear_avg = controller.device.wear_summary()
        series("wear_max").append(position, wear_max)
        series("wear_avg").append(position, wear_avg)

    def _live_capacity(self) -> float:
        """Cached :meth:`live_capacity_fraction`.

        The scan is O(blocks); recompute only when a capacity-changing
        action happened since the last sample: a retirement, a frame
        marked bad, or an erase (pended density changes take effect at
        erase time), or the degraded flag flipping.
        """
        flash = self._flash
        stats = flash.controller.stats
        key = (stats.blocks_retired, stats.frames_marked_bad,
               stats.erases, flash.degraded)
        if key != self._capacity_key:
            self._capacity_key = key
            self._capacity_value = flash.live_capacity_fraction()
        return self._capacity_value
