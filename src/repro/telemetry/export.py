"""Exporters: dump a :class:`~repro.telemetry.Telemetry` handle's contents.

Two formats:

* **JSON** — one self-describing document: counters, gauges, histogram
  digests (count/mean/min/max/p50/p95/p99) plus raw bucket rows, and
  every time-series as parallel ``x``/``y`` arrays.  This is the machine
  interface (plotting notebooks, CI artifacts, regression diffing).
* **CSV** — long-format rows for spreadsheet/gnuplot consumption:
  ``series,x,y`` for time-series and ``histogram,upper_edge_us,count``
  for bucket rows.

Path destinations are written atomically (tmp + ``os.replace`` via
:mod:`repro.atomicio`): a crash mid-export leaves either the previous
artifact or the new one, never a truncated file.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Dict, IO, Union

from ..atomicio import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Telemetry

__all__ = [
    "telemetry_to_dict",
    "to_json",
    "write_json",
    "series_to_csv",
    "histograms_to_csv",
    "write_csv",
]

FORMAT_VERSION = 1


def telemetry_to_dict(telemetry: "Telemetry") -> Dict:
    """Plain-data snapshot of every instrument and series."""
    payload = telemetry.metrics.as_dict()
    payload["version"] = FORMAT_VERSION
    payload["events_published"] = telemetry.bus.published
    payload["histogram_buckets"] = {
        name: [[edge, count] for edge, count in hist.bucket_rows()
               if edge != float("inf")] + [["+inf", hist.overflow]]
        for name, hist in sorted(telemetry.metrics.histograms.items())
    }
    payload["series"] = {
        name: series.as_dict()
        for name, series in sorted(telemetry.timeseries.items())
    }
    return payload


def to_json(telemetry: "Telemetry", indent: int = 2) -> str:
    return json.dumps(telemetry_to_dict(telemetry), indent=indent,
                      sort_keys=True)


def write_json(telemetry: "Telemetry",
               destination: Union[str, IO[str]]) -> None:
    """Write the JSON document to a path or an open text stream."""
    if isinstance(destination, str):
        atomic_write_text(destination, to_json(telemetry) + "\n")
    else:
        destination.write(to_json(telemetry))
        destination.write("\n")


def series_to_csv(telemetry: "Telemetry") -> str:
    """Every time-series in long format: ``series,x,y``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", "x", "y"])
    for name, series in sorted(telemetry.timeseries.items()):
        for x, y in zip(series.xs, series.ys):
            writer.writerow([name, x, y])
    return buffer.getvalue()


def histograms_to_csv(telemetry: "Telemetry") -> str:
    """Every histogram's buckets in long format:
    ``histogram,upper_edge_us,count``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["histogram", "upper_edge_us", "count"])
    for name, hist in sorted(telemetry.metrics.histograms.items()):
        for edge, count in hist.bucket_rows():
            writer.writerow([name, "+inf" if edge == float("inf") else edge,
                             count])
    return buffer.getvalue()


def write_csv(telemetry: "Telemetry",
              destination: Union[str, IO[str]]) -> None:
    """Write time-series then histogram sections to a path or stream."""
    content = series_to_csv(telemetry) + histograms_to_csv(telemetry)
    if isinstance(destination, str):
        atomic_write_text(destination, content)
    else:
        destination.write(content)
