"""Typed event bus for the observability layer.

Every interesting thing that happens inside the simulated hierarchy maps
to one :class:`EventKind`.  Producers (device, controller, cache, system)
publish through the :class:`Telemetry <repro.telemetry.Telemetry>` handle;
consumers subscribe per kind (or to everything) and receive immutable
:class:`Event` records.

The bus is deliberately synchronous and in-process: the simulator is
single-threaded and deterministic, and telemetry must never perturb it.
Publishing with no subscribers is a no-op the handle short-circuits
before an :class:`Event` is even constructed (see
:meth:`EventBus.wants`), which keeps the hot paths near-zero-overhead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["EventKind", "Event", "EventBus"]


class EventKind(enum.Enum):
    """The event taxonomy of the observability layer.

    ``READ``/``WRITE`` are *request-level* (what a client waits on);
    ``HIT``/``MISS`` are Flash disk-cache lookups; ``GC`` is one
    background compaction pass; ``ERASE`` is a NAND block erase;
    ``FAULT`` is any hardware fault surfacing (uncorrectable read,
    program/erase status failure); ``RETIRE`` is a block leaving service
    permanently; ``DEGRADE`` is the cache dropping to the DRAM+disk
    bypass; ``SCRUB`` is one background retention-scrub pass;
    ``REJOIN`` is a repaired cluster shard re-entering the ring; ``SYNC``
    is one anti-entropy catch-up page moving back to a rejoined shard.
    """

    READ = "read"
    WRITE = "write"
    HIT = "hit"
    MISS = "miss"
    GC = "gc"
    ERASE = "erase"
    FAULT = "fault"
    RETIRE = "retire"
    DEGRADE = "degrade"
    SCRUB = "scrub"
    REJOIN = "rejoin"
    SYNC = "sync"


@dataclass(frozen=True)
class Event:
    """One occurrence on the bus.

    ``source`` names the emitting layer (``system``, ``flash``, ``nand``,
    ``pdc``, ``disk``); ``latency_us`` carries the operation's simulated
    cost when it has one; ``value`` is a kind-specific magnitude (pages
    moved by a GC pass, block index of a retirement); ``detail`` is a
    short discriminator (``"program"`` vs ``"erase"`` for faults).
    """

    kind: EventKind
    source: str
    latency_us: float = 0.0
    value: float = 0.0
    detail: str = ""


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe dispatch, keyed by event kind."""

    def __init__(self) -> None:
        self._by_kind: Dict[EventKind, List[Subscriber]] = {}
        self._all: List[Subscriber] = []
        #: Total events delivered (across all subscribers' kinds).
        self.published = 0
        #: False until the first subscription: hot producers check this
        #: single attribute to skip event construction on a quiet bus.
        self.active = False

    def subscribe(self, callback: Subscriber,
                  kind: Optional[EventKind] = None) -> None:
        """Register ``callback`` for one kind, or every kind when ``None``."""
        if kind is None:
            self._all.append(callback)
        else:
            self._by_kind.setdefault(kind, []).append(callback)
        self.active = True

    def wants(self, kind: EventKind) -> bool:
        """True when publishing ``kind`` would reach at least one
        subscriber — producers check this before building an Event."""
        if self._all:
            return True
        subscribers = self._by_kind.get(kind)
        return bool(subscribers)

    def publish(self, event: Event) -> None:
        self.published += 1
        for callback in self._by_kind.get(event.kind, ()):  # noqa: B007
            callback(event)
        for callback in self._all:
            callback(event)
