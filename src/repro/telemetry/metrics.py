"""Metric primitives: counters, gauges, and fixed-bucket latency histograms.

The histogram is the workhorse: the paper's throughput story (Figure 10)
is set by *tail* storage latency, which an average cannot show.  A
:class:`LatencyHistogram` keeps a fixed geometric bucket ladder spanning
sub-microsecond DRAM hits to multi-millisecond disk seeks.  Observing a
sample only appends to a pending buffer — cheap enough for every request
of a multi-million-access trace — and the buffer is folded into the
buckets in bulk (vectorised when numpy is importable, a tight pure-Python
loop otherwise) the moment any statistic is read, so callers never see a
stale value.  Percentiles come out at report time by interpolating within
the owning bucket.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

try:  # Optional acceleration only; every path below has a fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Default bucket upper edges (microseconds): geometric 1-2-5 ladder from
#: 1us (DRAM) through 100ms (degenerate multi-retry disk paths).  Samples
#: above the last edge land in an unbounded overflow bucket.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class LatencyHistogram:
    """Fixed-bucket histogram with interpolated percentiles.

    Bucket ``i`` counts samples in ``(edges[i-1], edges[i]]`` (the first
    bucket starts at 0); samples above the last edge go to the overflow
    bucket.  Percentiles interpolate linearly inside the owning bucket and
    are clamped to the observed ``[min, max]``, which makes the
    single-sample and narrow-distribution cases exact instead of
    bucket-quantised.

    Internally :meth:`observe` buffers the raw value and every reader
    drains the buffer first (see the module docstring), so ``count``,
    ``counts`` and friends are plain properties rather than attributes.
    """

    __slots__ = ("name", "edges", "_counts", "_overflow", "_count",
                 "_total", "_min", "_max", "_pending", "_push")

    #: Fold the pending buffer into the buckets whenever it reaches this
    #: many samples, bounding memory on unbounded traces.
    _DRAIN_THRESHOLD = 65536

    def __init__(self, name: str,
                 edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US):
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges: List[float] = list(edges)
        self._counts: List[int] = [0] * len(self.edges)
        self._overflow = 0
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._pending: List[float] = []
        # Pre-bound append: observe() is the hottest method in the
        # telemetry layer, one bound-method call is all it can afford.
        self._push = self._pending.append

    def observe(self, value: float) -> None:
        self._push(value)
        if len(self._pending) >= self._DRAIN_THRESHOLD:
            self._drain()

    def _drain(self) -> None:
        """Fold buffered samples into the bucket counts."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self._push = self._pending.append
        self._count += len(pending)
        edges = self.edges
        size = len(edges)
        counts = self._counts
        if _np is not None and len(pending) >= 32:
            samples = _np.asarray(pending)
            self._total += float(samples.sum())
            low = float(samples.min())
            high = float(samples.max())
            per_bucket = _np.bincount(
                _np.searchsorted(edges, samples, side="left"),
                minlength=size + 1)
            for index in range(size):
                bucket = int(per_bucket[index])
                if bucket:
                    counts[index] += bucket
            self._overflow += int(per_bucket[size])
        else:
            find = bisect.bisect_left
            low = high = pending[0]
            total = 0.0
            overflow = 0
            for value in pending:
                total += value
                if value < low:
                    low = value
                elif value > high:
                    high = value
                index = find(edges, value)
                if index >= size:
                    overflow += 1
                else:
                    counts[index] += 1
            self._total += total
            self._overflow += overflow
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high

    # -- pickling (parallel sweep workers return histograms) ---------------------
    # The pending buffer holds a pre-bound ``list.append``; drain it and
    # drop both from the pickled state so the wire format is the folded
    # bucket counts only.

    def __getstate__(self) -> dict:
        self._drain()
        return {"name": self.name, "edges": self.edges,
                "counts": self._counts, "overflow": self._overflow,
                "count": self._count, "total": self._total,
                "min": self._min, "max": self._max}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.edges = state["edges"]
        self._counts = state["counts"]
        self._overflow = state["overflow"]
        self._count = state["count"]
        self._total = state["total"]
        self._min = state["min"]
        self._max = state["max"]
        self._pending = []
        self._push = self._pending.append

    # -- merging (parallel sweep aggregation) ------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram, bucket-wise.

        Merging per-worker histograms is exact — bucket counts, totals,
        and min/max add losslessly, so percentiles of the merged
        histogram equal those of a single histogram that observed every
        sample — provided both sides share one bucket ladder.
        """
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different bucket edges "
                f"({self.name!r} vs {other.name!r})")
        self._drain()
        other._drain()
        for index, bucket in enumerate(other._counts):
            self._counts[index] += bucket
        self._overflow += other._overflow
        self._count += other._count
        self._total += other._total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    # -- read side: every accessor drains first ---------------------------------

    @property
    def counts(self) -> List[int]:
        self._drain()
        return self._counts

    @property
    def overflow(self) -> int:
        self._drain()
        return self._overflow

    @property
    def count(self) -> int:
        self._drain()
        return self._count

    @property
    def total(self) -> float:
        self._drain()
        return self._total

    @property
    def min(self) -> float:
        self._drain()
        return self._min

    @property
    def max(self) -> float:
        self._drain()
        return self._max

    @property
    def mean(self) -> float:
        self._drain()
        return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]; 0.0 on an empty histogram."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        self._drain()
        if self._count == 0:
            return 0.0
        rank = p / 100.0 * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lower = self.edges[index - 1] if index else 0.0
            upper = self.edges[index]
            if cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, self._min), self._max)
            cumulative += bucket_count
        # Rank falls in the overflow bucket, which has no upper edge; the
        # observed max is the tightest honest answer.
        return self._max

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        """Scalar digest used by reports and the JSON exporter."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def bucket_rows(self) -> List[Tuple[float, int]]:
        """(upper edge, count) per bucket, overflow last with +inf edge."""
        rows = list(zip(self.edges, self.counts))
        rows.append((float("inf"), self.overflow))
        return rows

    def __repr__(self) -> str:
        return (f"LatencyHistogram({self.name}, n={self.count}, "
                f"p50={self.p50:.1f}, p99={self.p99:.1f})")


class MetricsRegistry:
    """Get-or-create home for every named instrument."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  edges: Optional[Sequence[float]] = None
                  ) -> LatencyHistogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = LatencyHistogram(
                name, edges or DEFAULT_LATENCY_BUCKETS_US)
        return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (parallel sweep merge).

        Counters add; histograms merge bucket-wise (see
        :meth:`LatencyHistogram.merge`); gauges are last-write
        instantaneous values, so the incoming reading wins — callers
        merging in task order get the final task's gauge, matching what
        a serial run sharing one registry would have left behind.
        """
        for name, counter in other.counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other.gauges.items():
            self.gauge(name).value = gauge.value
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.edges).merge(histogram)

    def as_dict(self) -> Dict[str, Dict]:
        """Plain-data snapshot (the JSON exporter's payload)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self.histograms.items())},
        }
