"""Atomic artifact writes: temp file in the same directory + ``os.replace``.

Every JSON/CSV/markdown artifact the tooling writes (telemetry dumps,
sweep documents, lint reports, baselines) must be readable or absent —
never truncated.  A crash mid-``write()`` with a bare ``open(path, "w")``
leaves a torn file that a later ``--resume`` or CI diff step would read
as corrupt data, so artifact writes go through this module instead: the
content lands in ``<path>.tmp`` beside the destination (same filesystem,
so the final rename cannot cross a device boundary), is flushed and
fsync'd, and only then renamed over the destination with ``os.replace``,
which POSIX and Windows both guarantee to be atomic.

simlint rule SIM009 enforces the discipline: a bare ``open(..., "w")``
or ``Path.write_text`` in orchestration code is a lint error pointing
here.  This module itself is the sanctioned implementation and is exempt
from the rule.
"""

from __future__ import annotations

import os
from typing import Union

__all__ = ["atomic_write_text", "atomic_write_bytes"]

_PathLike = Union[str, "os.PathLike[str]"]


def _tmp_name(path: _PathLike) -> str:
    # Same directory as the destination so os.replace stays on one
    # filesystem; pid-suffixed so two processes writing the same
    # artifact cannot clobber each other's temp file.
    return f"{os.fspath(path)}.tmp.{os.getpid()}"


def atomic_write_text(path: _PathLike, content: str,
                      encoding: str = "utf-8") -> None:
    """Write *content* to *path* atomically (all of it, or none of it)."""
    tmp = _tmp_name(path)
    try:
        with open(tmp, "w", encoding=encoding) as stream:
            stream.write(content)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            os.unlink(tmp)


def atomic_write_bytes(path: _PathLike, content: bytes) -> None:
    """Binary twin of :func:`atomic_write_text`."""
    tmp = _tmp_name(path)
    try:
        with open(tmp, "wb") as stream:
            stream.write(content)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            os.unlink(tmp)
