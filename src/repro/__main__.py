"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``            list the available figure runners
``fig1b`` .. ``fig16``     print one figure's rows (same output as the
                           ``repro.experiments.*`` module mains)
``cluster``                serve one sharded cluster scenario: open-loop
                           traffic, consistent-hash routing with
                           replicated keys (``--replicas``), admission
                           shedding, scripted/organic failover with
                           survivor cascades (``--cascade``) and shard
                           repair (``--rejoin-at-ms``), and a
                           deterministic JSONL/CSV telemetry feed
                           (``--feed``, ``--csv``, ``--json``)
``faults``                 fault-injection / graceful-degradation sweep
                           (``--telemetry-out`` dumps the degradation
                           timeline as JSON)
``report``                 run the whole evaluation, print markdown
                           (``--workers N`` fans each section's grid
                           out across processes)
``sweep``                  run figure grids through the parallel sweep
                           runner and emit one aggregated JSON document
                           (``--workers N``, ``--figures``, ``--out``;
                           ``--journal``/``--resume`` checkpoint the run
                           so it survives crashes, ``--timeout`` /
                           ``--retries`` bound and retry stuck tasks)
``lint [paths...]``        run simlint, the AST-based invariant linter
                           (``--format json``, ``--baseline``,
                           ``--list-rules``; see DESIGN.md section 10)
``profile <trace.spc>``    characterise a (UMass SPC) disk trace
``run <trace.spc>``        replay a trace through the Flash hierarchy,
                           optionally with injected faults
                           (``--fault-rate`` / ``--fault-seed``) and/or
                           a telemetry JSON dump (``--telemetry-out``)
``stats <trace.spc>``      replay with full telemetry: latency
                           percentiles, counters, and time-series, with
                           optional JSON (``--json``) / CSV (``--csv``)
                           exports
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    fault_degradation,
    fig1b_gc,
    fig4_split,
    fig6_ecc,
    fig7_density,
    fig9_power,
    fig10_ecc_throughput,
    fig11_reconfig,
    fig12_lifetime,
    fig13_error_regimes,
    fig14_concurrency,
    fig15_cluster,
    fig16_availability,
)
from .experiments.report import ReportScale, generate_report
from .workloads.analysis import profile_trace
from .workloads.trace import records_from_spc_file

_FIGURES = {
    "fig1b": fig1b_gc.main,
    "fig4": fig4_split.main,
    "fig6": fig6_ecc.main,
    "fig7": fig7_density.main,
    "fig9": fig9_power.main,
    "fig10": fig10_ecc_throughput.main,
    "fig11": fig11_reconfig.main,
    "fig12": fig12_lifetime.main,
    "fig13": fig13_error_regimes.main,
    "fig14": fig14_concurrency.main,
    "fig15": fig15_cluster.main,
    "fig16": fig16_availability.main,
    "faults": fault_degradation.main,
}


def _add_reliability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reliability-rate", type=float, default=0.0,
        help="base raw bit error rate of the error-process model "
             "(0 disables; see ReliabilityConfig.uniform for the "
             "derived retention/disturb/interference rates)")
    parser.add_argument(
        "--reliability-seed", type=int, default=0,
        help="seed of the error-process model's RNG streams")
    parser.add_argument(
        "--scrub-interval", type=float, default=0.0, metavar="US",
        help="device time (us) between background retention-scrub "
             "passes (0 disables; needs --reliability-rate > 0)")


def _add_concurrency_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--queue-depth", type=int, default=1,
        help="outstanding-request window size (default 1; any value "
             "above 1 replays timing through the event-driven engine)")
    parser.add_argument(
        "--channels", type=int, default=1,
        help="NAND channels in the device fabric (default 1)")
    parser.add_argument(
        "--planes", type=int, default=1,
        help="planes per channel (default 1)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving NAND Flash Based Disk "
                    "Caches' (ISCA 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list figure runners")
    for name in _FIGURES:
        figure = sub.add_parser(name, help=f"regenerate {name}")
        if name == "faults":
            figure.add_argument(
                "--telemetry-out", default=None, metavar="PATH",
                help="write the degradation-timeline telemetry (time-"
                     "series + histograms) as JSON")

    report = sub.add_parser("report", help="run the full evaluation")
    report.add_argument("--scale", choices=("quick", "default", "full"),
                        default="default")
    report.add_argument("--sections", nargs="*", default=None,
                        help="subset of sections (e.g. fig4 fig12)")
    report.add_argument("--workers", type=int, default=1,
                        help="process-pool size for each section's grid "
                             "(default 1 = serial; results are identical "
                             "at any worker count)")

    sweep = sub.add_parser(
        "sweep", help="run figure grids through the parallel sweep "
                      "runner and emit aggregated JSON")
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool size (default 1 = serial; the "
                            "figure series are identical at any worker "
                            "count)")
    sweep.add_argument("--figures", nargs="*", default=None,
                       help="subset of figure grids (e.g. fig6 fig12); "
                            "default: all")
    sweep.add_argument("--scale", choices=("quick", "default", "full"),
                       default="default")
    sweep.add_argument("--out", default=None, metavar="PATH",
                       help="write the aggregated JSON document here "
                            "(default: stdout)")
    sweep.add_argument("--journal", default=None, metavar="PATH",
                       help="record finished tasks in an append-only "
                            "JSONL journal so an interrupted sweep can "
                            "be resumed")
    sweep.add_argument("--resume", default=None, metavar="PATH",
                       help="resume from an existing journal: completed "
                            "tasks are replayed, the rest re-run, and "
                            "the output is byte-identical to an "
                            "uninterrupted run (implies --journal PATH)")
    sweep.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-task deadline; an overrunning task's "
                            "worker is killed and the task retried or "
                            "failed (needs --workers >= 2)")
    sweep.add_argument("--retries", type=int, default=0,
                       help="per-task retry budget for transient "
                            "failures (timeouts, worker crashes, "
                            "changing exceptions); default 0")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-task progress lines")

    lint = sub.add_parser(
        "lint", help="run simlint, the determinism/spawn-safety/unit "
                     "invariant linter")
    from .analysis.cli import add_lint_arguments
    add_lint_arguments(lint)

    profile = sub.add_parser("profile", help="characterise an SPC trace")
    profile.add_argument("path")
    profile.add_argument("--limit", type=int, default=None,
                         help="read at most N records")

    run = sub.add_parser(
        "run", help="replay an SPC trace through the Flash hierarchy")
    run.add_argument("path")
    run.add_argument("--limit", type=int, default=None,
                     help="replay at most N records")
    run.add_argument("--dram-mb", type=int, default=64,
                     help="DRAM size in MB (default 64)")
    run.add_argument("--flash-mb", type=int, default=256,
                     help="Flash size in MB (default 256)")
    run.add_argument("--fault-rate", type=float, default=0.0,
                     help="uniform fault-injection rate (0 disables; see "
                          "FaultConfig.uniform for the derived per-class "
                          "rates)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the fault injector's RNG streams")
    _add_reliability_arguments(run)
    _add_concurrency_arguments(run)
    run.add_argument("--telemetry-out", default=None, metavar="PATH",
                     help="enable telemetry and write the JSON metrics "
                          "report (histograms + time-series) here")
    run.add_argument("--telemetry-interval", type=int, default=1000,
                     help="requests between time-series samples "
                          "(default 1000)")

    stats = sub.add_parser(
        "stats", help="replay an SPC trace with full telemetry and "
                      "print latency percentiles, counters, and "
                      "time-series")
    stats.add_argument("path")
    stats.add_argument("--limit", type=int, default=None,
                       help="replay at most N records")
    stats.add_argument("--dram-mb", type=int, default=64,
                       help="DRAM size in MB (default 64)")
    stats.add_argument("--flash-mb", type=int, default=256,
                       help="Flash size in MB (default 256)")
    stats.add_argument("--fault-rate", type=float, default=0.0,
                       help="uniform fault-injection rate (0 disables)")
    stats.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault injector's RNG streams")
    _add_reliability_arguments(stats)
    _add_concurrency_arguments(stats)
    stats.add_argument("--interval", type=int, default=1000,
                       help="requests between time-series samples "
                            "(default 1000)")
    stats.add_argument("--json", default=None, metavar="PATH",
                       help="write the telemetry report as JSON")
    stats.add_argument("--csv", default=None, metavar="PATH",
                       help="write time-series + histogram buckets as CSV")

    cluster = sub.add_parser(
        "cluster", help="serve a sharded Flash-cache cluster scenario "
                        "with open-loop traffic and failover")
    cluster.add_argument("--shards", type=int, default=3,
                         help="shard fleet size (default 3)")
    cluster.add_argument("--pattern", default="steady",
                         choices=("steady", "diurnal", "flash_crowd",
                                  "drain"),
                         help="arrival-intensity profile (default steady)")
    cluster.add_argument("--rate", type=float, default=4000.0,
                         metavar="RPS",
                         help="peak cluster-wide arrival rate "
                              "(default 4000 req/s)")
    cluster.add_argument("--duration", type=float, default=1.0,
                         metavar="S",
                         help="simulated traffic window (default 1.0 s)")
    cluster.add_argument("--workload", default="specweb99",
                         help="key-popularity model behind the arrivals "
                              "(default specweb99)")
    cluster.add_argument("--footprint-pages", type=int, default=16384,
                         help="distinct pages in the key space "
                              "(default 16384)")
    cluster.add_argument("--queue-depth", type=int, default=8,
                         help="per-shard outstanding-request window "
                              "(default 8)")
    cluster.add_argument("--channels", type=int, default=2,
                         help="NAND channels per shard (default 2)")
    cluster.add_argument("--planes", type=int, default=2,
                         help="planes per channel (default 2)")
    cluster.add_argument("--shed-queue", type=int, default=64,
                         help="host wait-queue length beyond the window "
                              "before requests shed (default 64)")
    cluster.add_argument("--kill-shard", type=int, default=None,
                         metavar="ID",
                         help="kill this shard mid-run (in-flight "
                              "requests are lost, traffic re-routes)")
    cluster.add_argument("--kill-at-ms", type=float, default=None,
                         help="kill instant in simulated ms (default: "
                              "mid-run)")
    cluster.add_argument("--replicas", type=int, default=1,
                         help="replication factor: each key lives on "
                              "its first R distinct ring successors; "
                              "reads hit the first live replica, writes "
                              "fan out to all (default 1)")
    cluster.add_argument("--cascade", action="append", default=None,
                         metavar="SHARD@MS",
                         help="additional scripted kill (repeatable): "
                              "e.g. --cascade 2@200 kills shard 2 at "
                              "200 ms — a survivor cascade")
    cluster.add_argument("--rejoin-at-ms", type=float, default=None,
                         help="re-admit the repaired --kill-shard at "
                              "this instant (simulated ms); triggers "
                              "the background catch-up sync of its "
                              "moved keys")
    cluster.add_argument("--aged-shard", type=int, default=None,
                         metavar="ID",
                         help="attach the fault/reliability ladder to "
                              "this shard; it retires organically if "
                              "graceful degradation trips")
    cluster.add_argument("--aged-fault-rate", type=float, default=0.0,
                         help="uniform fault-injection rate on the aged "
                              "shard (0 disables)")
    cluster.add_argument("--aged-reliability-rate", type=float,
                         default=0.0,
                         help="base raw bit error rate on the aged "
                              "shard (0 disables)")
    cluster.add_argument("--bucket-ms", type=float, default=50.0,
                         help="feed time-bucket width (default 50 ms)")
    cluster.add_argument("--workers", type=int, default=1,
                         help="process-pool size for the shard fan-out "
                              "(default 1 = serial; results are "
                              "byte-identical at any worker count)")
    cluster.add_argument("--seed", type=int, default=42,
                         help="root seed of every derived RNG stream "
                              "(default 42)")
    cluster.add_argument("--feed", default=None, metavar="PATH",
                         help="write the JSONL telemetry feed here")
    cluster.add_argument("--csv", default=None, metavar="PATH",
                         help="write the time-bucketed feed rows as CSV")
    cluster.add_argument("--json", default=None, metavar="PATH",
                         help="write the aggregated result document as "
                              "JSON")
    cluster.add_argument("--quiet", action="store_true",
                         help="suppress live orchestration events")

    bench = sub.add_parser(
        "bench", help="benchmark the simulator itself: requests/sec and "
                      "per-subsystem profile shares, written to "
                      "BENCH_<date>.json")
    bench.add_argument("--num-records", type=int, default=40_000,
                       help="trace records in the benchmark workload "
                            "(default 40000)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="output path (default BENCH_<date>.json in "
                            "the current directory); same-day reruns "
                            "append to the file's runs list")
    bench.add_argument("--force", action="store_true",
                       help="start the output file fresh, discarding "
                            "existing runs (also required to replace a "
                            "file that is not a bench document)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "experiments":
        for name in _FIGURES:
            print(name)
        return 0
    if args.command == "faults":
        fault_degradation.main(telemetry_out=args.telemetry_out)
        return 0
    if args.command in _FIGURES:
        _FIGURES[args.command]()
        return 0
    if args.command == "report":
        scale = _SCALES[args.scale]()
        print(generate_report(scale=scale, sections=args.sections,
                              workers=args.workers))
        return 0
    if args.command == "sweep":
        return _sweep_command(args)
    if args.command == "cluster":
        return _cluster_command(args)
    if args.command == "lint":
        from .analysis.cli import run_lint_command
        return run_lint_command(args)
    if args.command == "profile":
        records = records_from_spc_file(args.path, limit=args.limit)
        print(profile_trace(records).summary())
        return 0
    if args.command == "run":
        return _run_trace_command(args)
    if args.command == "stats":
        return _stats_command(args)
    if args.command == "bench":
        from .bench import run_bench_command
        return run_bench_command(args)
    return 1


_SCALES = {"quick": ReportScale.quick,
           "default": ReportScale,
           "full": ReportScale.full}


def _sweep_command(args: argparse.Namespace) -> int:
    import json

    from .experiments.sweeps import run_sweep

    progress = None
    if not args.quiet:
        def progress(result, done, total):
            status = "ok" if result.ok else "FAILED"
            print(f"[{done}/{total}] {result.key}: {status} "
                  f"({result.elapsed_s:.1f}s)", file=sys.stderr)

    journal_path = args.journal
    resume = False
    if args.resume is not None:
        if journal_path is not None and journal_path != args.resume:
            print("error: --journal and --resume name different files",
                  file=sys.stderr)
            return 2
        journal_path, resume = args.resume, True

    try:
        document = run_sweep(figures=args.figures,
                             scale=_SCALES[args.scale](),
                             workers=args.workers,
                             progress=progress,
                             journal_path=journal_path,
                             resume=resume,
                             timeout_s=args.timeout,
                             retries=args.retries)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps(document, indent=2, sort_keys=True)
    if args.out is not None:
        from .atomicio import atomic_write_text

        atomic_write_text(args.out, payload + "\n")
        meta = document["meta"]
        print(f"sweep: {meta['tasks']} tasks, {meta['workers']} workers, "
              f"{meta['resumed_tasks']} resumed, "
              f"{meta['elapsed_s']}s -> {args.out}", file=sys.stderr)
    else:
        print(payload)
    errors = document["meta"]["errors"]
    return 1 if errors else 0


def _cluster_command(args: argparse.Namespace) -> int:
    import json

    from .cluster import (
        ClusterScenario,
        serve,
        write_feed_csv,
        write_feed_jsonl,
    )

    def parse_cascade(specs):
        cascade = []
        for spec in specs or ():
            shard_text, sep, at_text = spec.partition("@")
            try:
                if not sep:
                    raise ValueError(spec)
                cascade.append((int(shard_text),
                                float(at_text) * 1000.0))
            except ValueError:
                raise ValueError(f"bad --cascade {spec!r}; expected "
                                 f"SHARD@MS (e.g. 2@200)") from None
        return tuple(cascade)

    try:
        scenario = ClusterScenario(
            shards=args.shards, pattern=args.pattern, rate_rps=args.rate,
            duration_s=args.duration, workload=args.workload,
            footprint_pages=args.footprint_pages,
            queue_depth=args.queue_depth, channels=args.channels,
            planes=args.planes, shed_queue=args.shed_queue,
            replicas=args.replicas,
            kill_shard=args.kill_shard,
            kill_at_us=(args.kill_at_ms * 1000.0
                        if args.kill_at_ms is not None else None),
            cascade=parse_cascade(args.cascade),
            rejoin_at_us=(args.rejoin_at_ms * 1000.0
                          if args.rejoin_at_ms is not None else None),
            aged_shard=args.aged_shard,
            aged_fault_rate=args.aged_fault_rate,
            aged_reliability_rate=args.aged_reliability_rate,
            bucket_ms=args.bucket_ms, seed=args.seed)
        on_event = None
        if not args.quiet:
            def on_event(event):
                if event["kind"] == "stage":
                    shards = ",".join(str(s) for s in event["shards"])
                    print(f"stage {event['stage']}: shards [{shards}]",
                          file=sys.stderr)
                else:
                    status = "ok" if event["ok"] else "FAILED"
                    print(f"[{event['done']}/{event['total']}] "
                          f"{event['key']}: {status}", file=sys.stderr)
        result = serve(scenario, workers=args.workers, on_event=on_event)
    except (KeyError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"requests:        {result.requests}")
    print(f"planned ops:     {result.arrivals}")
    print(f"completed:       {result.completed}")
    print(f"shed:            {result.shed} "
          f"({result.shed_fraction:.3%})")
    print(f"lost:            {result.lost} "
          f"(reads={result.lost_reads} writes={result.lost_writes})")
    print(f"redirected:      {result.redirected}")
    if result.sync_arrived:
        print(f"sync:            {result.sync_completed}/"
              f"{result.sync_arrived} catch-up ops "
              f"(lost={result.sync_lost} skipped={result.sync_skipped})")
    print(f"span:            {result.span_us / 1000.0:.1f} ms")
    print(f"throughput:      {result.throughput_rps:.0f} req/s")
    print(f"response us:     p50={result.response.p50:.1f} "
          f"p95={result.response.p95:.1f} p99={result.response.p99:.1f}")
    print(f"queue delay us:  mean={result.queue_delay.mean:.1f} "
          f"p99={result.queue_delay.p99:.1f}")
    for shard in result.shards:
        retired = (f" retired@{shard['retired_at_us'] / 1000.0:.0f}ms"
                   if shard["retired_at_us"] is not None else "")
        if shard.get("rejoined_at_us") is not None:
            retired += (f" rejoined@"
                        f"{shard['rejoined_at_us'] / 1000.0:.0f}ms")
        print(f"  shard {shard['shard_id']}: "
              f"{shard['completed']}/{shard['arrivals']} served, "
              f"{shard['shed']} shed, {shard['lost']} lost, "
              f"{shard['redirected']} redirected, "
              f"p99={shard['response_p99_us']:.1f}us, "
              f"miss={shard['flash_miss_rate']:.3f}{retired}")
    if args.feed is not None:
        write_feed_jsonl(result, args.feed)
        print(f"feed JSONL:      {args.feed}")
    if args.csv is not None:
        write_feed_csv(result, args.csv)
        print(f"feed CSV:        {args.csv}")
    if args.json is not None:
        from .atomicio import atomic_write_text

        atomic_write_text(args.json,
                          json.dumps(result.as_dict(), indent=2,
                                     sort_keys=True) + "\n")
        print(f"result JSON:     {args.json}")
    return 0


def _build_system_and_records(args: argparse.Namespace):
    from .core.hierarchy import build_flash_system
    from .faults.injector import FaultConfig
    from .reliability import ReliabilityConfig, ScrubConfig

    fault_config = None
    if args.fault_rate > 0.0:
        fault_config = FaultConfig.uniform(args.fault_rate,
                                           seed=args.fault_seed)
    reliability_config = None
    if args.reliability_rate > 0.0:
        reliability_config = ReliabilityConfig.uniform(
            args.reliability_rate, seed=args.reliability_seed)
    scrub_config = None
    if args.scrub_interval > 0.0:
        if reliability_config is None:
            raise SystemExit("error: --scrub-interval needs "
                             "--reliability-rate > 0")
        scrub_config = ScrubConfig(interval_us=args.scrub_interval,
                                   min_age_us=args.scrub_interval)
    system = build_flash_system(
        dram_bytes=args.dram_mb << 20,
        flash_bytes=args.flash_mb << 20,
        fault_config=fault_config,
        reliability_config=reliability_config,
        scrub_config=scrub_config,
    )
    records = records_from_spc_file(args.path, limit=args.limit)
    return system, records, fault_config


def _print_reliability_sections(report) -> None:
    """Fault-injection, error-model, and scrub summaries (anything that
    is None — model off, no scrubber — prints nothing)."""
    faults = report.faults
    if faults is not None:
        print("injected faults")
        print(f"  read-disturb bursts:     {faults.read_disturbs}")
        print(f"  disturbed reads:         {faults.disturbed_reads}")
        print(f"  program faults:          {faults.program_faults}")
        print(f"  erase faults:            {faults.erase_faults}")
        print(f"  infant-mortality blocks: {faults.dead_blocks}")
    reliability = report.reliability
    if reliability is not None:
        controller = report.controller
        print("error model")
        print(f"  modelled reads:          {reliability.modelled_reads}")
        print(f"  raw error bits:          {reliability.error_bits}")
        print(f"  bits/read:               {reliability.bits_per_read:.3f}")
        print(f"  saturated reads:         {reliability.saturated_reads}")
        if controller is not None and controller.reads:
            cells = (2048 + 64) * 8
            uber = (controller.uncorrectable_reads
                    / (controller.reads * cells))
            print(f"  uncorrectable reads:     "
                  f"{controller.uncorrectable_reads}")
            print(f"  UBER:                    {uber:.3e}")
    scrub = report.scrub
    if scrub is not None:
        print("scrub")
        print(f"  passes:                  {scrub.passes}")
        print(f"  pages scanned:           {scrub.pages_scanned}")
        print(f"  scrub reads:             {scrub.scrub_reads}")
        print(f"  page rewrites:           {scrub.page_rewrites}")
        print(f"  uncorrectable found:     {scrub.uncorrectable_found}")
        print(f"  busy time:               {scrub.busy_us:.0f} us")


def _print_queueing_section(report) -> None:
    """Concurrency block: the service/queue-delay split and channel
    utilization (prints nothing on the serial compatibility path)."""
    queueing = report.queueing
    if queueing is None:
        return
    print("queueing")
    print(f"  window / fabric:         qd={queueing.queue_depth} "
          f"ch={queueing.channels} planes={queueing.planes}")
    print(f"  mean queue delay:        "
          f"{queueing.mean_queue_delay_us:.1f} us")
    print(f"  queue delay us:          "
          f"p50={report.queue_delay_p50:.1f} "
          f"p95={report.queue_delay_p95:.1f} "
          f"p99={report.queue_delay_p99:.1f}")
    print(f"  service latency us:      "
          f"p50={report.service_latency_p50:.1f} "
          f"p95={report.service_latency_p95:.1f} "
          f"p99={report.service_latency_p99:.1f}")
    utilization = ", ".join(f"{u:.2f}"
                            for u in queueing.channel_utilization())
    print(f"  channel utilization:     [{utilization}]")
    print(f"  channel stalls:          {queueing.channel_stalls}")


def _run_with_concurrency(args: argparse.Namespace, system, records,
                          telemetry):
    """Dispatch run/stats replay through the right engine."""
    from .sim.concurrent import run_trace_concurrent

    return run_trace_concurrent(system, records,
                                queue_depth=args.queue_depth,
                                channels=args.channels,
                                planes=args.planes,
                                telemetry=telemetry)


def _print_latency_percentiles(report) -> None:
    print(f"read latency us: p50={report.read_latency_p50:.1f} "
          f"p95={report.read_latency_p95:.1f} "
          f"p99={report.read_latency_p99:.1f}")
    print(f"write latency us: p50={report.write_latency_p50:.1f} "
          f"p95={report.write_latency_p95:.1f} "
          f"p99={report.write_latency_p99:.1f}")


def _run_trace_command(args: argparse.Namespace) -> int:
    from .telemetry import Telemetry

    system, records, fault_config = _build_system_and_records(args)
    telemetry = None
    if args.telemetry_out is not None:
        telemetry = Telemetry(sample_interval=args.telemetry_interval)
    report = _run_with_concurrency(args, system, records, telemetry)
    print(f"requests:        {report.requests}")
    print(f"avg latency:     {report.average_latency_us:.1f} us")
    print(f"throughput:      {report.throughput_rps:.0f} req/s")
    print(f"flash miss rate: {report.flash_miss_rate:.3%}")
    print(f"disk reads:      {report.disk_reads}")
    print(f"disk writes:     {report.disk_writes}")
    if fault_config is not None:
        flash = report.flash
        faults = report.faults
        assert flash is not None
        print(f"injected faults: {faults.total if faults else 0}")
        print(f"recovered:       {flash.recovered_faults}")
        print(f"lost (dirty):    {flash.unrecovered_faults}")
        print(f"program remaps:  {flash.remapped_programs}")
        print(f"retired blocks:  {flash.retired_blocks}")
        print(f"live capacity:   {report.flash_live_capacity:.3f}")
        print(f"degraded:        {report.flash_degraded}")
    _print_queueing_section(report)
    _print_reliability_sections(report)
    if telemetry is not None:
        from .telemetry.export import write_json

        _print_latency_percentiles(report)
        write_json(telemetry, args.telemetry_out)
        print(f"telemetry JSON:  {args.telemetry_out}")
    return 0


def _stats_command(args: argparse.Namespace) -> int:
    from .telemetry import Telemetry
    from .telemetry.export import write_csv, write_json

    system, records, _ = _build_system_and_records(args)
    telemetry = Telemetry(sample_interval=args.interval)
    report = _run_with_concurrency(args, system, records, telemetry)

    print(f"requests:        {report.requests} "
          f"({report.reads} reads, {report.writes} writes)")
    print(f"avg latency:     {report.average_latency_us:.1f} us")
    print(f"flash miss rate: {report.flash_miss_rate:.3%}")
    _print_latency_percentiles(report)
    print()
    _print_queueing_section(report)
    _print_reliability_sections(report)
    print("histograms")
    for name, hist in sorted(telemetry.metrics.histograms.items()):
        if hist.count == 0:
            continue
        digest = hist.summary()
        print(f"  {name:<28} n={digest['count']:<8} "
              f"mean={digest['mean']:9.1f} p50={digest['p50']:9.1f} "
              f"p95={digest['p95']:9.1f} p99={digest['p99']:9.1f} "
              f"max={digest['max']:9.1f}")
    print()
    print("counters")
    for name, counter in sorted(telemetry.metrics.counters.items()):
        if counter.value:
            print(f"  {name:<28} {counter.value}")
    print()
    print("time-series (last sample)")
    for name, series in sorted(telemetry.timeseries.items()):
        print(f"  {name:<28} points={len(series):<5} last={series.last}")
    if args.json is not None:
        write_json(telemetry, args.json)
        print(f"\ntelemetry JSON written to {args.json}")
    if args.csv is not None:
        write_csv(telemetry, args.csv)
        print(f"telemetry CSV written to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
