"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``            list the available figure runners
``fig1b`` .. ``fig12``     print one figure's rows (same output as the
                           ``repro.experiments.*`` module mains)
``faults``                 fault-injection / graceful-degradation sweep
``report``                 run the whole evaluation, print markdown
``profile <trace.spc>``    characterise a (UMass SPC) disk trace
``run <trace.spc>``        replay a trace through the Flash hierarchy,
                           optionally with injected faults
                           (``--fault-rate`` / ``--fault-seed``)
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    fault_degradation,
    fig1b_gc,
    fig4_split,
    fig6_ecc,
    fig7_density,
    fig9_power,
    fig10_ecc_throughput,
    fig11_reconfig,
    fig12_lifetime,
)
from .experiments.report import ReportScale, generate_report
from .workloads.analysis import profile_trace
from .workloads.trace import records_from_spc_file

_FIGURES = {
    "fig1b": fig1b_gc.main,
    "fig4": fig4_split.main,
    "fig6": fig6_ecc.main,
    "fig7": fig7_density.main,
    "fig9": fig9_power.main,
    "fig10": fig10_ecc_throughput.main,
    "fig11": fig11_reconfig.main,
    "fig12": fig12_lifetime.main,
    "faults": fault_degradation.main,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving NAND Flash Based Disk "
                    "Caches' (ISCA 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list figure runners")
    for name in _FIGURES:
        sub.add_parser(name, help=f"regenerate {name}")

    report = sub.add_parser("report", help="run the full evaluation")
    report.add_argument("--scale", choices=("quick", "default", "full"),
                        default="default")
    report.add_argument("--sections", nargs="*", default=None,
                        help="subset of sections (e.g. fig4 fig12)")

    profile = sub.add_parser("profile", help="characterise an SPC trace")
    profile.add_argument("path")
    profile.add_argument("--limit", type=int, default=None,
                         help="read at most N records")

    run = sub.add_parser(
        "run", help="replay an SPC trace through the Flash hierarchy")
    run.add_argument("path")
    run.add_argument("--limit", type=int, default=None,
                     help="replay at most N records")
    run.add_argument("--dram-mb", type=int, default=64,
                     help="DRAM size in MB (default 64)")
    run.add_argument("--flash-mb", type=int, default=256,
                     help="Flash size in MB (default 256)")
    run.add_argument("--fault-rate", type=float, default=0.0,
                     help="uniform fault-injection rate (0 disables; see "
                          "FaultConfig.uniform for the derived per-class "
                          "rates)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the fault injector's RNG streams")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "experiments":
        for name in _FIGURES:
            print(name)
        return 0
    if args.command in _FIGURES:
        _FIGURES[args.command]()
        return 0
    if args.command == "report":
        scale = {"quick": ReportScale.quick(),
                 "default": ReportScale(),
                 "full": ReportScale.full()}[args.scale]
        print(generate_report(scale=scale, sections=args.sections))
        return 0
    if args.command == "profile":
        records = records_from_spc_file(args.path, limit=args.limit)
        print(profile_trace(records).summary())
        return 0
    if args.command == "run":
        return _run_trace_command(args)
    return 1


def _run_trace_command(args: argparse.Namespace) -> int:
    from .core.hierarchy import build_flash_system
    from .faults.injector import FaultConfig
    from .sim.engine import run_trace

    fault_config = None
    if args.fault_rate > 0.0:
        fault_config = FaultConfig.uniform(args.fault_rate,
                                           seed=args.fault_seed)
    system = build_flash_system(
        dram_bytes=args.dram_mb << 20,
        flash_bytes=args.flash_mb << 20,
        fault_config=fault_config,
    )
    records = records_from_spc_file(args.path, limit=args.limit)
    report = run_trace(system, records)
    print(f"requests:        {report.requests}")
    print(f"avg latency:     {report.average_latency_us:.1f} us")
    print(f"throughput:      {report.throughput_rps:.0f} req/s")
    print(f"flash miss rate: {report.flash_miss_rate:.3%}")
    print(f"disk reads:      {report.disk_reads}")
    print(f"disk writes:     {report.disk_writes}")
    if fault_config is not None:
        flash = report.flash
        faults = report.faults
        assert flash is not None
        print(f"injected faults: {faults.total if faults else 0}")
        print(f"recovered:       {flash.recovered_faults}")
        print(f"lost (dirty):    {flash.unrecovered_faults}")
        print(f"program remaps:  {flash.remapped_programs}")
        print(f"retired blocks:  {flash.retired_blocks}")
        print(f"live capacity:   {report.flash_live_capacity:.3f}")
        print(f"degraded:        {report.flash_degraded}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
