"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``            list the available figure runners
``fig1b`` .. ``fig12``     print one figure's rows (same output as the
                           ``repro.experiments.*`` module mains)
``report``                 run the whole evaluation, print markdown
``profile <trace.spc>``    characterise a (UMass SPC) disk trace
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    fig1b_gc,
    fig4_split,
    fig6_ecc,
    fig7_density,
    fig9_power,
    fig10_ecc_throughput,
    fig11_reconfig,
    fig12_lifetime,
)
from .experiments.report import ReportScale, generate_report
from .workloads.analysis import profile_trace
from .workloads.trace import records_from_spc_file

_FIGURES = {
    "fig1b": fig1b_gc.main,
    "fig4": fig4_split.main,
    "fig6": fig6_ecc.main,
    "fig7": fig7_density.main,
    "fig9": fig9_power.main,
    "fig10": fig10_ecc_throughput.main,
    "fig11": fig11_reconfig.main,
    "fig12": fig12_lifetime.main,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving NAND Flash Based Disk "
                    "Caches' (ISCA 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list figure runners")
    for name in _FIGURES:
        sub.add_parser(name, help=f"regenerate {name}")

    report = sub.add_parser("report", help="run the full evaluation")
    report.add_argument("--scale", choices=("quick", "default", "full"),
                        default="default")
    report.add_argument("--sections", nargs="*", default=None,
                        help="subset of sections (e.g. fig4 fig12)")

    profile = sub.add_parser("profile", help="characterise an SPC trace")
    profile.add_argument("path")
    profile.add_argument("--limit", type=int, default=None,
                         help="read at most N records")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "experiments":
        for name in _FIGURES:
            print(name)
        return 0
    if args.command in _FIGURES:
        _FIGURES[args.command]()
        return 0
    if args.command == "report":
        scale = {"quick": ReportScale.quick(),
                 "default": ReportScale(),
                 "full": ReportScale.full()}[args.scale]
        print(generate_report(scale=scale, sections=args.sections))
        return 0
    if args.command == "profile":
        records = records_from_spc_file(args.path, limit=args.limit)
        print(profile_trace(records).summary())
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
