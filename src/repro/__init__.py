"""repro — a full reproduction of "Improving NAND Flash Based Disk Caches"
(Kgil, Roberts, Mudge; ISCA 2008).

The package implements the paper's complete system stack in Python:

* :mod:`repro.ecc` — GF(2^m) arithmetic, a functional variable-strength
  BCH codec, CRC32, and the hardware-accelerator latency/area model.
* :mod:`repro.flash` — the dual-mode (SLC/MLC) NAND device simulator with
  erase-before-write semantics, the exponential wear-out model, and the
  Table 1–3 constants.
* :mod:`repro.dram`, :mod:`repro.disk` — the DDR2 and hard-drive models
  bounding the memory hierarchy.
* :mod:`repro.core` — the contribution: the split read/write Flash disk
  cache, its four management tables, the programmable Flash memory
  controller (variable ECC + density control), the SLC/MLC partition
  optimizer, and the full platform hierarchies of Figure 2.
* :mod:`repro.workloads` — the Table 4 benchmark suite (micro generators,
  statistically matched macro generators, and a UMass SPC trace reader).
* :mod:`repro.sim` — the trace engine, server throughput model, and the
  accelerated aging simulator behind Figures 11/12.
* :mod:`repro.experiments` — one runner per paper table and figure.

Quickstart::

    from repro import build_flash_system, build_workload, run_trace

    system = build_flash_system(dram_bytes=8 << 20, flash_bytes=64 << 20)
    trace = build_workload("dbt2", num_records=100_000,
                           footprint_pages=65_536)
    report = run_trace(system, trace)
    print(report.flash_miss_rate, report.power.total_w)
"""

from .core import (
    CacheError,
    CacheCapacityError,
    CacheDegradedError,
    FlashDiskCache,
    FlashCacheConfig,
    ProgrammableFlashController,
    FixedEccController,
    ControllerConfig,
    DramOnlySystem,
    FlashBackedSystem,
    SystemConfig,
    build_flash_system,
    DensityPartitionOptimizer,
)
from .ecc import BCHCode, BCHLatencyModel, Crc32, design_code_for_page
from .flash import (
    CellMode,
    FlashDevice,
    FlashGeometry,
    PageAddress,
    CellLifetimeModel,
    WearModelConfig,
)
from .faults import FaultConfig, FaultInjector, FaultStats
from .sim import run_trace, run_trace_concurrent, ServerModel, \
    simulate_lifetime, lifetime_ratio
from .workloads import TraceRecord, build_workload, read_spc
from .power import system_power_breakdown

__version__ = "1.0.0"

__all__ = [
    "CacheError",
    "CacheCapacityError",
    "CacheDegradedError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FlashDiskCache",
    "FlashCacheConfig",
    "ProgrammableFlashController",
    "FixedEccController",
    "ControllerConfig",
    "DramOnlySystem",
    "FlashBackedSystem",
    "SystemConfig",
    "build_flash_system",
    "DensityPartitionOptimizer",
    "BCHCode",
    "BCHLatencyModel",
    "Crc32",
    "design_code_for_page",
    "CellMode",
    "FlashDevice",
    "FlashGeometry",
    "PageAddress",
    "CellLifetimeModel",
    "WearModelConfig",
    "run_trace",
    "run_trace_concurrent",
    "ServerModel",
    "simulate_lifetime",
    "lifetime_ratio",
    "TraceRecord",
    "build_workload",
    "read_spc",
    "system_power_breakdown",
    "__version__",
]
