"""Deterministic fault injection for robustness and degradation studies.

Plug a :class:`FaultInjector` into a :class:`~repro.flash.device.FlashDevice`
(or pass a :class:`FaultConfig` to
:func:`~repro.core.hierarchy.build_flash_system`) to subject the whole
stack to transient read-disturb bursts, program/erase status failures,
and infant-mortality block deaths — all seeded and reproducible.
"""

from .injector import FaultConfig, FaultInjector, FaultStats

__all__ = ["FaultConfig", "FaultInjector", "FaultStats"]
