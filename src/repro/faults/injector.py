"""Deterministic fault injection for the NAND device (robustness studies).

The paper's controller exists because NAND fails in service: cells wear
out, reads disturb neighbours, programs and erases report status failures,
and some blocks die young ("infant mortality").  The wear model in
:mod:`repro.flash.wear` covers the slow, monotonic part of that story;
this module covers the *event* faults, so the layers above the device —
controller retry ladders, cache remapping, capacity degradation — can be
exercised deterministically.

Four fault classes, all seeded and reproducible:

* **read-disturb bursts** — a read occasionally starts a burst of
  transient raw bit errors on its frame that persists for the next few
  reads (until the implied refresh/rewrite), modelling read-disturb and
  retention hiccups.  Transient means a re-sense can see fewer errors,
  which is what makes the controller's read-retry ladder worthwhile.
* **program failures** — a program operation reports a status failure;
  the page frame must be treated as bad and the data placed elsewhere.
* **erase failures** — an erase reports a status failure; real firmware
  retires the block on the spot.
* **infant mortality** — a whole block is congenitally bad.  Membership
  is decided per block from the seed alone (order-independent), so the
  same configuration always kills the same blocks.

Determinism contract: every fault stream has its own :class:`random.Random`
derived from the configured seed, so e.g. program traffic never perturbs
the read-disturb stream.  Two runs with the same config, workload, and
seed make identical fault decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional

from ..parallel import derive_seed

__all__ = ["FaultConfig", "FaultStats", "FaultInjector"]


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates and shapes; all rates default to zero (no injection)."""

    #: Per read: probability that this read starts a read-disturb burst on
    #: its frame.
    read_disturb_rate: float = 0.0
    #: Raw bit errors a burst adds to each affected read.
    read_disturb_bits: int = 24
    #: How many subsequent reads of the frame the burst persists for.
    #: A re-sense during the burst redraws a (geometrically decaying)
    #: error count, so retries can genuinely recover.
    read_disturb_span: int = 3
    #: Per program: probability of a program-status failure.
    program_fail_rate: float = 0.0
    #: Per erase: probability of an erase-status failure.
    erase_fail_rate: float = 0.0
    #: Per block: probability the block is congenitally dead.
    infant_mortality_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("read_disturb_rate", "program_fail_rate",
                     "erase_fail_rate", "infant_mortality_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.read_disturb_bits < 1:
            raise ValueError("read_disturb_bits must be positive")
        if self.read_disturb_span < 0:
            raise ValueError("read_disturb_span must be non-negative")

    @property
    def any_enabled(self) -> bool:
        return (self.read_disturb_rate > 0.0
                or self.program_fail_rate > 0.0
                or self.erase_fail_rate > 0.0
                or self.infant_mortality_rate > 0.0)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultConfig":
        """One knob for sweeps: transient read faults at ``rate``, hard
        program/erase faults an order of magnitude rarer, infant deaths
        rarer still (hard faults are rarer than disturbs in practice)."""
        return cls(
            read_disturb_rate=rate,
            program_fail_rate=rate / 10.0,
            erase_fail_rate=rate / 20.0,
            infant_mortality_rate=min(rate / 5.0, 1.0),
            seed=seed,
        )


@dataclass
class FaultStats:
    """Counts of injected fault events (not of their downstream handling)."""

    read_disturbs: int = 0       # bursts started
    disturbed_reads: int = 0     # reads that saw burst errors
    program_faults: int = 0
    erase_faults: int = 0
    dead_blocks: int = 0         # infant-mortality blocks actually touched

    @property
    def total(self) -> int:
        return (self.read_disturbs + self.program_faults
                + self.erase_faults + self.dead_blocks)


class FaultInjector:
    """Seeded, deterministic fault source queried by :class:`FlashDevice`.

    The device consults the injector on every read/program/erase; the
    injector answers from independent per-stream RNGs and keeps the burst
    and infant-mortality state.
    """

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()
        self.stats = FaultStats()
        seed = self.config.seed
        # Independent streams: faults of one kind never perturb another.
        # Seeds are derived (not bit-shifted) so the streams share no
        # structure across seeds or with other derive_seed consumers.
        self._read_rng = Random(derive_seed(seed, "faults:read-disturb"))
        self._program_rng = Random(derive_seed(seed, "faults:program"))
        self._erase_rng = Random(derive_seed(seed, "faults:erase"))
        # (block, frame) -> remaining burst reads.
        self._bursts: Dict[tuple[int, int], int] = {}
        self._dead: Dict[int, bool] = {}

    # -- infant mortality -----------------------------------------------------

    def block_dead(self, block: int) -> bool:
        """Whether ``block`` died in infancy.

        The fate is a pure function of (seed, block) — independent of
        query order — so a sweep that touches blocks in a different order
        still kills the same ones.
        """
        rate = self.config.infant_mortality_rate
        if rate <= 0.0:
            return False
        cached = self._dead.get(block)
        if cached is None:
            block_seed = derive_seed(self.config.seed,
                                     f"faults:infant:{block}")
            cached = Random(block_seed).random() < rate
            self._dead[block] = cached
            if cached:
                self.stats.dead_blocks += 1
        return cached

    # -- transient read faults ------------------------------------------------

    def read_fault_bits(self, block: int, frame: int) -> int:
        """Extra raw bit errors this read observes on ``(block, frame)``."""
        cfg = self.config
        if cfg.read_disturb_rate <= 0.0:
            return 0
        key = (block, frame)
        remaining = self._bursts.get(key, 0)
        if remaining <= 0:
            if self._read_rng.random() >= cfg.read_disturb_rate:
                return 0
            self.stats.read_disturbs += 1
            remaining = cfg.read_disturb_span + 1
        remaining -= 1
        if remaining > 0:
            self._bursts[key] = remaining
        else:
            self._bursts.pop(key, None)
        self.stats.disturbed_reads += 1
        # The burst decays: each successive (re-)sense of the frame sees a
        # shrinking error count, so a retry ladder can ride it out.
        decay = cfg.read_disturb_span + 1 - remaining
        return max(1, cfg.read_disturb_bits >> (decay - 1))

    # -- hard operation faults ------------------------------------------------

    def program_fault(self, block: int, frame: int) -> bool:
        if self.config.program_fail_rate <= 0.0:
            return False
        if self._program_rng.random() < self.config.program_fail_rate:
            self.stats.program_faults += 1
            return True
        return False

    def erase_fault(self, block: int) -> bool:
        if self.config.erase_fail_rate <= 0.0:
            return False
        if self._erase_rng.random() < self.config.erase_fail_rate:
            self.stats.erase_faults += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (f"FaultInjector(read_disturb={c.read_disturb_rate}, "
                f"program={c.program_fail_rate}, erase={c.erase_fail_rate}, "
                f"infant={c.infant_mortality_rate}, seed={c.seed})")
